//! A small self-contained CDCL SAT solver.
//!
//! Standard modern architecture, sized for the miters this workspace
//! produces (tens of thousands of variables): two-watched-literal unit
//! propagation, first-UIP conflict analysis with clause learning,
//! VSIDS-style decaying variable activities on an order heap, phase
//! saving, and Luby-sequence restarts. Queries run under *assumptions*
//! (forced first decisions), which is how the sweeper asks "can these
//! two cones differ?" incrementally against one growing clause
//! database.
//!
//! No external dependencies, no unsafe code. A per-call conflict
//! budget turns pathological queries into an explicit
//! [`SolveResult::Budget`] instead of a hang.

/// A solver literal: `var * 2 + phase` (phase 1 = negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SLit(u32);

impl SLit {
    /// Positive literal of a variable.
    #[must_use]
    pub fn pos(var: u32) -> SLit {
        SLit(var << 1)
    }

    /// Builds a literal with an explicit phase.
    #[must_use]
    pub fn new(var: u32, negated: bool) -> SLit {
        SLit(var << 1 | u32::from(negated))
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is negated.
    #[must_use]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> SLit {
        SLit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment exists (model readable via
    /// [`Solver::value`]).
    Sat,
    /// No satisfying assignment under the given assumptions.
    Unsat,
    /// The conflict budget ran out before an answer.
    Budget,
}

const NO_REASON: u32 = u32::MAX;

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct Solver {
    /// All clauses (original and learnt) in one arena.
    clauses: Vec<Vec<SLit>>,
    /// `watches[lit.index()]` = clause indices woken when `lit` becomes
    /// true (i.e. clauses holding `!lit` in a watch slot).
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: 0 unassigned, 1 true, -1 false.
    assign: Vec<i8>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Antecedent clause per variable (`NO_REASON` for decisions).
    reason: Vec<u32>,
    trail: Vec<SLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activity, bump amount, and the order heap over it.
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<u32>,
    heap_pos: Vec<i32>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Scratch marker for conflict analysis.
    seen: Vec<bool>,
    /// Model captured at the last `Sat` answer.
    model: Vec<bool>,
    /// Total conflicts over the solver's lifetime.
    pub conflicts: u64,
    /// Total solve calls.
    pub solve_calls: u64,
    /// The problem is unsatisfiable regardless of assumptions.
    root_unsat: bool,
}

impl Solver {
    /// A fresh, empty solver.
    #[must_use]
    pub fn new() -> Solver {
        Solver { var_inc: 1.0, ..Solver::default() }
    }

    /// Allocates a new variable.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.model.push(false);
        self.heap_pos.push(-1);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original plus learnt).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    fn lit_value(&self, lit: SLit) -> i8 {
        let v = self.assign[lit.var() as usize];
        if lit.is_negated() {
            -v
        } else {
            v
        }
    }

    /// The model value of a literal after a [`SolveResult::Sat`] answer.
    #[must_use]
    pub fn value(&self, lit: SLit) -> bool {
        self.model[lit.var() as usize] != lit.is_negated()
    }

    /// Adds a clause (at decision level 0; the trail is already there
    /// between solve calls). Returns `false` if the addition makes the
    /// problem trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[SLit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "clauses are added between solves");
        if self.root_unsat {
            return false;
        }
        // Simplify against the level-0 trail; detect tautologies.
        let mut clause: Vec<SLit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.lit_value(l) > 0 || clause.contains(&l.negate()) {
                return true; // already satisfied or tautological
            }
            if self.lit_value(l) < 0 || clause.contains(&l) {
                continue; // falsified at root or duplicate
            }
            clause.push(l);
        }
        match clause.len() {
            0 => {
                self.root_unsat = true;
                false
            }
            1 => {
                self.enqueue(clause[0], NO_REASON);
                if self.propagate().is_some() {
                    self.root_unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach(clause);
                true
            }
        }
    }

    fn attach(&mut self, clause: Vec<SLit>) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[clause[0].negate().index()].push(idx);
        self.watches[clause[1].negate().index()].push(idx);
        self.clauses.push(clause);
        idx
    }

    fn enqueue(&mut self, lit: SLit, reason: u32) {
        let v = lit.var() as usize;
        debug_assert_eq!(self.assign[v], 0);
        self.assign[v] = if lit.is_negated() { -1 } else { 1 };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.phase[v] = !lit.is_negated();
        self.trail.push(lit);
    }

    /// Unit propagation; returns a conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let mut watchers = std::mem::take(&mut self.watches[lit.index()]);
            let mut i = 0;
            'next_clause: while i < watchers.len() {
                let ci = watchers[i] as usize;
                // Normalize: the falsified watch goes to slot 1.
                if self.clauses[ci][0].negate() == lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1].negate(), lit);
                if self.lit_value(self.clauses[ci][0]) > 0 {
                    i += 1; // satisfied; keep watching
                    continue;
                }
                for k in 2..self.clauses[ci].len() {
                    if self.lit_value(self.clauses[ci][k]) >= 0 {
                        self.clauses[ci].swap(1, k);
                        let w = self.clauses[ci][1].negate().index();
                        self.watches[w].push(ci as u32);
                        watchers.swap_remove(i);
                        continue 'next_clause;
                    }
                }
                // Unit or conflicting.
                let first = self.clauses[ci][0];
                if self.lit_value(first) < 0 {
                    self.watches[lit.index()] = watchers;
                    self.qhead = self.trail.len();
                    return Some(ci as u32);
                }
                self.enqueue(first, ci as u32);
                i += 1;
            }
            self.watches[lit.index()] = watchers;
        }
        None
    }

    // --- activity order heap (binary max-heap with position index) ---

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] < self.activity[b as usize]
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[parent], self.heap[i]) {
                self.heap.swap(parent, i);
                self.heap_pos[self.heap[i] as usize] = i as i32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap_pos[self.heap[i] as usize] = i as i32;
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[best], self.heap[l]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[best], self.heap[r]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(best, i);
            self.heap_pos[self.heap[i] as usize] = i as i32;
            i = best;
        }
        self.heap_pos[self.heap[i] as usize] = i as i32;
    }

    fn heap_insert(&mut self, v: u32) {
        if self.heap_pos[v as usize] >= 0 {
            return;
        }
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.heap_pos[top as usize] = -1;
        if top != last {
            self.heap[0] = last;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, var: u32) {
        let a = &mut self.activity[var as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.heap_pos[var as usize];
        if pos >= 0 {
            self.heap_sift_up(pos as usize);
        }
    }

    // --- conflict analysis ---

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal in slot 0, a backtrack-level literal in slot 1) and the
    /// backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<SLit>, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<SLit> = vec![SLit::pos(0)]; // slot 0 patched below
        let mut counter = 0usize;
        let mut trail_pos = self.trail.len();
        let mut first = true;
        let uip = loop {
            // Resolve on the conflict/reason clause. For reason clauses
            // slot 0 is the literal being resolved on — skip it.
            let clause = self.clauses[confl as usize].clone();
            for &l in &clause[usize::from(!first)..] {
                let v = l.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(l.var());
                    if self.level[v] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(l);
                    }
                }
            }
            first = false;
            // Next marked literal on the trail, scanning backwards.
            let resolve_on = loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if self.seen[l.var() as usize] {
                    self.seen[l.var() as usize] = false;
                    counter -= 1;
                    break l;
                }
            };
            if counter == 0 {
                break resolve_on.negate();
            }
            confl = self.reason[resolve_on.var() as usize];
            debug_assert_ne!(confl, NO_REASON, "non-UIP literal has an antecedent");
        };
        learnt[0] = uip;
        for &l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Backtrack to the highest level among the other literals and
        // keep one literal of that level in watch slot 1.
        let bt = learnt[1..].iter().map(|l| self.level[l.var() as usize]).max().unwrap_or(0);
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] == bt)
                .expect("a literal at the backtrack level exists")
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, bt)
    }

    fn backtrack_to(&mut self, target: u32) {
        while self.trail_lim.len() as u32 > target {
            let lim = self.trail_lim.pop().expect("above target level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail reaches lim");
                let v = l.var() as usize;
                self.assign[v] = 0;
                self.reason[v] = NO_REASON;
                self.heap_insert(l.var());
            }
        }
        self.qhead = self.trail.len();
    }

    fn record_learnt(&mut self, learnt: Vec<SLit>) {
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.enqueue(asserting, NO_REASON);
        } else {
            let idx = self.attach(learnt);
            self.enqueue(asserting, idx);
        }
    }

    fn decide(&mut self) -> Option<SLit> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize] == 0 {
                return Some(SLit::new(v, !self.phase[v as usize]));
            }
        }
        None
    }

    /// Solves under the given assumptions with a conflict budget.
    ///
    /// Assumptions are decided (in order) before any free decision; a
    /// conflict that depends only on assumptions yields `Unsat`.
    pub fn solve(&mut self, assumptions: &[SLit], budget: u64) -> SolveResult {
        self.solve_calls += 1;
        if self.root_unsat {
            return SolveResult::Unsat;
        }
        debug_assert!(self.trail_lim.is_empty());
        if self.propagate().is_some() {
            self.root_unsat = true;
            return SolveResult::Unsat;
        }
        let mut conflicts_here = 0u64;
        let mut restart_idx = 0u32;
        let mut restart_left = 128 * luby(restart_idx);
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                restart_left = restart_left.saturating_sub(1);
                if self.trail_lim.is_empty() {
                    self.root_unsat = true;
                    return SolveResult::Unsat;
                }
                if self.trail_lim.len() <= assumptions.len() {
                    // Only assumptions (and their consequences) are on
                    // the trail: the query is unsatisfiable.
                    self.backtrack_to(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                self.record_learnt(learnt);
                self.var_inc /= 0.95;
                if conflicts_here > budget {
                    self.backtrack_to(0);
                    return SolveResult::Budget;
                }
                if restart_left == 0 {
                    restart_idx += 1;
                    restart_left = 128 * luby(restart_idx);
                    self.backtrack_to(0);
                }
                continue;
            }
            // Decision: assumptions first, then activity order.
            let dl = self.trail_lim.len();
            if dl < assumptions.len() {
                let a = assumptions[dl];
                match self.lit_value(a) {
                    -1 => {
                        self.backtrack_to(0);
                        return SolveResult::Unsat;
                    }
                    1 => {
                        // Already implied: open an empty level so the
                        // level/assumption indices stay aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, NO_REASON);
                    }
                }
                continue;
            }
            match self.decide() {
                Some(lit) => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(lit, NO_REASON);
                }
                None => {
                    // Full assignment: capture the model, then leave the
                    // solver at level 0 so clauses can be added next.
                    for v in 0..self.assign.len() {
                        self.model[v] = self.assign[v] > 0;
                    }
                    self.backtrack_to(0);
                    return SolveResult::Sat;
                }
            }
        }
    }
}

/// The Luby restart sequence for 0-based `i`: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u32) -> u64 {
    let mut i = u64::from(i) + 1;
    loop {
        if (i + 1).is_power_of_two() {
            return (i + 1) >> 1;
        }
        // Recurse on i minus the largest full block (2^k - 1 <= i).
        let k = 63 - u64::from((i + 1).leading_zeros());
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_unsat_and_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // (a | b) & (!a | b) & (!b | c)
        assert!(s.add_clause(&[SLit::pos(a), SLit::pos(b)]));
        assert!(s.add_clause(&[SLit::new(a, true), SLit::pos(b)]));
        assert!(s.add_clause(&[SLit::new(b, true), SLit::pos(c)]));
        assert_eq!(s.solve(&[], 10_000), SolveResult::Sat);
        assert!(s.value(SLit::pos(b)), "b is forced");
        assert!(s.value(SLit::pos(c)), "c follows from b");
        // Assuming !b is inconsistent; the query is Unsat but the
        // problem survives.
        assert_eq!(s.solve(&[SLit::new(b, true)], 10_000), SolveResult::Unsat);
        assert_eq!(s.solve(&[], 10_000), SolveResult::Sat);
        // Permanently adding !b makes it root-unsat.
        assert!(!s.add_clause(&[SLit::new(b, true)]));
        assert_eq!(s.solve(&[], 10_000), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Variable p*2+h: pigeon p sits in hole h.
        let mut s = Solver::new();
        let v: Vec<u32> = (0..6).map(|_| s.new_var()).collect();
        for p in 0..3 {
            s.add_clause(&[SLit::pos(v[p * 2]), SLit::pos(v[p * 2 + 1])]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[SLit::new(v[p1 * 2 + h], true), SLit::new(v[p2 * 2 + h], true)]);
                }
            }
        }
        assert_eq!(s.solve(&[], 100_000), SolveResult::Unsat);
    }

    #[test]
    fn xor_miter_is_unsat_only_when_asserted() {
        // Tseitin-encode y1 = a^b and y2 = b^a, miter m = y1^y2.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let encode_xor = |s: &mut Solver, p: u32, q: u32| -> u32 {
            let y = s.new_var();
            let (y, p, q) = (SLit::pos(y), SLit::pos(p), SLit::pos(q));
            s.add_clause(&[y.negate(), p, q]);
            s.add_clause(&[y.negate(), p.negate(), q.negate()]);
            s.add_clause(&[y, p.negate(), q]);
            s.add_clause(&[y, p, q.negate()]);
            y.var()
        };
        let y1 = encode_xor(&mut s, a, b);
        let y2 = encode_xor(&mut s, b, a);
        let m = encode_xor(&mut s, y1, y2);
        assert_eq!(s.solve(&[SLit::pos(m)], 100_000), SolveResult::Unsat);
        assert_eq!(s.solve(&[SLit::new(m, true)], 100_000), SolveResult::Sat);
    }

    #[test]
    fn budget_exhaustion_reports_budget() {
        // A harder pigeonhole instance (7 pigeons, 6 holes) with a
        // budget of one conflict cannot finish.
        let mut s = Solver::new();
        let n = 7usize;
        let holes = 6usize;
        let v: Vec<u32> = (0..n * holes).map(|_| s.new_var()).collect();
        for p in 0..n {
            let clause: Vec<SLit> = (0..holes).map(|h| SLit::pos(v[p * holes + h])).collect();
            s.add_clause(&clause);
        }
        for h in 0..holes {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    s.add_clause(&[
                        SLit::new(v[p1 * holes + h], true),
                        SLit::new(v[p2 * holes + h], true),
                    ]);
                }
            }
        }
        assert_eq!(s.solve(&[], 1), SolveResult::Budget);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
