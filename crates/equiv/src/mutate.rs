//! Mutation campaign: does the checker kill planted bugs that sampled
//! simulation can miss?
//!
//! Reuses the three lint mutation kinds ([`dwt_lint::Mutation`]) and
//! adds four equivalence-specific ones: miswired adder/register
//! operand bits (classic netlist editing bugs), voter bypass, and
//! parity-detector knockout. The last three are the interesting cases
//! — a bypassed voter or a dead detector leaves the *fault-free*
//! machine bit-exact, so no amount of random simulation (or plain
//! equivalence checking) flags them; only the integrity obligations in
//! [`crate::cases`] do.
//!
//! Every functional kill must also replay concretely on both `Engine`
//! backends ([`crate::replay`]), which is what turns an abstract SAT
//! model into a regression test.

use dwt_arch::datapath::Hardening;
use dwt_arch::designs::Design;
use dwt_lint::Mutation;
use dwt_rtl::cell::{tables, Cell, CellKind};
use dwt_rtl::net::{Bus, NetId};
use dwt_rtl::netlist::Netlist;

use crate::cases::hardening_integrity;
use crate::replay::replay_counterexample;
use crate::seq::{prove, simulate_only, EquivOptions, Verdict};
use crate::EquivError;

/// A mutation kind usable by the equivalence campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivMutation {
    /// One of the lint suite's planted bug classes.
    Lint(Mutation),
    /// Swap two adjacent (distinct) bits of an adder operand.
    MiswireAdder,
    /// Swap two adjacent (distinct) bits of a register's D input.
    MiswireRegister,
    /// Replace a TMR majority voter with a buffer of its first input.
    BypassVoter,
    /// Knock a parity detector down to constant 0.
    BypassDetector,
}

impl EquivMutation {
    /// All campaign mutation kinds.
    #[must_use]
    pub fn all() -> Vec<EquivMutation> {
        let mut kinds: Vec<EquivMutation> =
            Mutation::all().into_iter().map(EquivMutation::Lint).collect();
        kinds.extend([
            EquivMutation::MiswireAdder,
            EquivMutation::MiswireRegister,
            EquivMutation::BypassVoter,
            EquivMutation::BypassDetector,
        ]);
        kinds
    }

    /// CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EquivMutation::Lint(m) => m.name(),
            EquivMutation::MiswireAdder => "miswire-adder",
            EquivMutation::MiswireRegister => "miswire-register",
            EquivMutation::BypassVoter => "bypass-voter",
            EquivMutation::BypassDetector => "bypass-detector",
        }
    }

    /// Default planted-bug location, shared with the lint gate where
    /// the kinds overlap.
    #[must_use]
    pub fn default_target(self) -> &'static str {
        match self {
            EquivMutation::Lint(m) => m.default_target(),
            EquivMutation::MiswireAdder => "alpha_pair",
            EquivMutation::MiswireRegister => "r_in_even",
            EquivMutation::BypassVoter => "_vote",
            EquivMutation::BypassDetector => "_perr",
        }
    }

    /// Applies the mutation to the first matching cell. `None` when no
    /// cell matches (e.g. voter bypass on an unhardened design).
    #[must_use]
    pub fn apply(self, netlist: &Netlist, target: &str) -> Option<Netlist> {
        match self {
            EquivMutation::Lint(m) => m.apply(netlist, target),
            EquivMutation::MiswireAdder => miswire_adder(netlist, target),
            EquivMutation::MiswireRegister => miswire_register(netlist, target),
            EquivMutation::BypassVoter => bypass_voter(netlist, target),
            EquivMutation::BypassDetector => bypass_detector(netlist, target),
        }
    }
}

fn rebuild(netlist: &Netlist, cells: Vec<Cell>) -> Netlist {
    Netlist::assemble_unchecked(cells, netlist.net_count() as u32, netlist.ports().clone())
}

/// Swaps the first adjacent pair of distinct bits in a bus, if any.
fn swap_adjacent(bus: &Bus) -> Option<Bus> {
    let mut bits: Vec<NetId> = bus.bits().to_vec();
    let i = (0..bits.len().saturating_sub(1)).find(|&i| bits[i] != bits[i + 1])?;
    bits.swap(i, i + 1);
    Bus::new(bits).ok()
}

/// Swaps two adjacent bits of the `a` operand of the first matching
/// behavioral adder/subtractor.
#[must_use]
pub fn miswire_adder(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist.cells().iter().position(|c| {
        c.name.contains(target)
            && matches!(c.kind, CellKind::CarryAdd { .. } | CellKind::CarrySub { .. })
    })?;
    let mut cells = netlist.cells().to_vec();
    let kind = match cells[idx].kind.clone() {
        CellKind::CarryAdd { a, b, out } => CellKind::CarryAdd { a: swap_adjacent(&a)?, b, out },
        CellKind::CarrySub { a, b, out } => CellKind::CarrySub { a: swap_adjacent(&a)?, b, out },
        _ => unreachable!(),
    };
    cells[idx].kind = kind;
    Some(rebuild(netlist, cells))
}

/// Swaps two adjacent bits of the D input of the first matching
/// register.
#[must_use]
pub fn miswire_register(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist
        .cells()
        .iter()
        .position(|c| c.name.contains(target) && matches!(c.kind, CellKind::Register { .. }))?;
    let mut cells = netlist.cells().to_vec();
    let CellKind::Register { d, q } = cells[idx].kind.clone() else { unreachable!() };
    cells[idx].kind = CellKind::Register { d: swap_adjacent(&d)?, q };
    Some(rebuild(netlist, cells))
}

/// Replaces the first matching voter LUT with a buffer of its first
/// input — functionally invisible while all replicas agree.
#[must_use]
pub fn bypass_voter(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist
        .cells()
        .iter()
        .position(|c| c.name.contains(target) && matches!(c.kind, CellKind::Lut { .. }))?;
    let mut cells = netlist.cells().to_vec();
    let CellKind::Lut { inputs, output, .. } = cells[idx].kind.clone() else { unreachable!() };
    cells[idx].kind = CellKind::Lut { inputs: vec![*inputs.first()?], table: tables::BUF1, output };
    Some(rebuild(netlist, cells))
}

/// Knocks the first matching parity detector down to constant 0 —
/// fault detection silently dies, data path untouched.
#[must_use]
pub fn bypass_detector(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist
        .cells()
        .iter()
        .position(|c| c.name.contains(target) && matches!(c.kind, CellKind::Lut { .. }))?;
    let mut cells = netlist.cells().to_vec();
    let CellKind::Lut { inputs, output, .. } = cells[idx].kind.clone() else { unreachable!() };
    cells[idx].kind = CellKind::Lut { inputs: vec![*inputs.first()?], table: 0, output };
    Some(rebuild(netlist, cells))
}

/// How one mutant died (or didn't).
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// `design/hardening/mutation` id.
    pub mutant: String,
    /// Whether the mutation found a cell to hit.
    pub applied: bool,
    /// Whether the checker killed it.
    pub killed: bool,
    /// What killed it: `simulation`, `sat`, or `integrity`.
    pub killed_by: Option<&'static str>,
    /// Whether 96 cycles of random product simulation alone would have
    /// caught it (the sampled-simulation baseline).
    pub sim_caught: bool,
    /// For functional kills: whether the counterexample replayed
    /// concretely on both `Engine` backends.
    pub confirmed: bool,
    /// Human-readable summary.
    pub detail: String,
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-mutant outcomes.
    pub outcomes: Vec<MutantOutcome>,
    /// Mutants that found a cell to hit.
    pub applied: usize,
    /// Killed mutants.
    pub killed: usize,
    /// Kills invisible to the sampled-simulation baseline.
    pub sat_only_kills: usize,
}

impl CampaignReport {
    /// Killed / applied, in percent.
    #[must_use]
    pub fn kill_rate(&self) -> f64 {
        if self.applied == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            100.0 * self.killed as f64 / self.applied as f64
        }
    }
}

/// The campaign matrix for one design: which mutations run against
/// which hardening variant.
fn mutation_plan(hardening: Hardening) -> Vec<EquivMutation> {
    match hardening {
        Hardening::None => vec![
            EquivMutation::Lint(Mutation::BypassRegister),
            EquivMutation::Lint(Mutation::ShrinkAdder),
            EquivMutation::Lint(Mutation::DisconnectNet),
            EquivMutation::MiswireAdder,
            EquivMutation::MiswireRegister,
        ],
        // Replica miswires are masked by the voters — fault-free
        // equivalent, killable only through the integrity obligations.
        Hardening::Tmr => vec![EquivMutation::BypassVoter, EquivMutation::MiswireRegister],
        Hardening::Parity => {
            vec![EquivMutation::BypassDetector, EquivMutation::Lint(Mutation::BypassRegister)]
        }
    }
}

fn check_mutant(
    reference: &Netlist,
    mutant: &Netlist,
    hardening: Hardening,
    opts: &EquivOptions,
) -> Result<(bool, Option<&'static str>, bool, bool, String), EquivError> {
    let sim_caught = simulate_only(reference, mutant, opts)?.is_some();
    // Integrity obligations on the mutant (voter/parity cones).
    let violations = hardening_integrity(mutant, hardening, opts)?;
    if !violations.is_empty() {
        return Ok((
            true,
            Some("integrity"),
            sim_caught,
            false,
            format!("integrity: {}", violations.join("; ")),
        ));
    }
    match prove(reference, mutant, opts)? {
        Verdict::Inequivalent(cex) => {
            let (confirmed, detail) = match replay_counterexample(reference, mutant, &cex) {
                Ok(report) => (
                    report.confirmed(),
                    format!(
                        "`{}` splits at frame {} ({} vs {}), {} inputs zeroed",
                        report.minimized.port,
                        report.minimized.frame,
                        report.minimized.got.0,
                        report.minimized.got.1,
                        report.zeroed_inputs
                    ),
                ),
                // Pathological mutants (e.g. a bypassed register closing
                // a combinational loop) can refuse to settle; the
                // divergence itself is still a kill, just not a
                // replayable one.
                Err(EquivError::Engine(e)) => (false, format!("replay diverged: {e}")),
                Err(other) => return Err(other),
            };
            let killed_by = if sim_caught { "simulation" } else { "sat" };
            Ok((true, Some(killed_by), sim_caught, confirmed, detail))
        }
        Verdict::Equivalent(_) => {
            Ok((false, None, sim_caught, false, "survived: still equivalent".to_owned()))
        }
        Verdict::Unknown(reason) => {
            Ok((false, None, sim_caught, false, format!("survived: {reason}")))
        }
    }
}

/// Runs the mutation campaign over the given designs.
///
/// For every design × hardening in the plan, plants each mutation at
/// its default target in the (hardened) netlist and checks the mutant
/// against the unmutated reference with the full pipeline: integrity
/// obligations first, then sequential equivalence, then concrete
/// replay of any disproof.
///
/// # Errors
///
/// Build and lowering failures propagate; verdicts (including
/// `Unknown`) are recorded per mutant instead of failing the campaign.
pub fn run_campaign(designs: &[Design], opts: &EquivOptions) -> Result<CampaignReport, EquivError> {
    let mut outcomes = Vec::new();
    for &design in designs {
        for hardening in [Hardening::None, Hardening::Tmr, Hardening::Parity] {
            let reference = design.build_hardened(hardening)?.netlist;
            let opts = EquivOptions { ignore_outputs: opts.ignore_outputs.clone(), ..opts.clone() };
            for mutation in mutation_plan(hardening) {
                let id = format!(
                    "{}/{:?}/{}",
                    design.name().to_lowercase().replace(' ', "-"),
                    hardening,
                    mutation.name()
                );
                let Some(mutant) = mutation.apply(&reference, mutation.default_target()) else {
                    outcomes.push(MutantOutcome {
                        mutant: id,
                        applied: false,
                        killed: false,
                        killed_by: None,
                        sim_caught: false,
                        confirmed: false,
                        detail: "no matching cell".to_owned(),
                    });
                    continue;
                };
                let (killed, killed_by, sim_caught, confirmed, detail) =
                    check_mutant(&reference, &mutant, hardening, &opts)?;
                outcomes.push(MutantOutcome {
                    mutant: id,
                    applied: true,
                    killed,
                    killed_by,
                    sim_caught,
                    confirmed,
                    detail,
                });
            }
        }
    }
    let applied = outcomes.iter().filter(|o| o.applied).count();
    let killed = outcomes.iter().filter(|o| o.killed).count();
    let sat_only_kills = outcomes.iter().filter(|o| o.killed && !o.sim_caught).count();
    Ok(CampaignReport { outcomes, applied, killed, sat_only_kills })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miswire_adder_produces_a_killable_mutant() {
        let reference = Design::D2.build().expect("build").netlist;
        let mutant = EquivMutation::MiswireAdder
            .apply(&reference, "alpha_pair")
            .expect("alpha adder exists");
        let verdict = prove(&reference, &mutant, &EquivOptions::default()).expect("checkable");
        assert!(
            matches!(verdict, Verdict::Inequivalent(_)),
            "miswired operand bits must change behavior: {verdict:?}"
        );
    }

    #[test]
    fn voter_bypass_is_invisible_to_equivalence_but_killed_by_integrity() {
        let reference = Design::D2.build_hardened(Hardening::Tmr).expect("build").netlist;
        let mutant = EquivMutation::BypassVoter.apply(&reference, "_vote").expect("voters exist");
        let opts = EquivOptions::default();
        // The fault-free machines agree — sampled simulation sees
        // nothing.
        assert!(
            simulate_only(&reference, &mutant, &opts).expect("simulates").is_none(),
            "a bypassed voter is functionally invisible while replicas agree"
        );
        let violations = hardening_integrity(&mutant, Hardening::Tmr, &opts).expect("checkable");
        assert!(!violations.is_empty(), "integrity obligations must object");
    }

    #[test]
    fn campaign_on_design2_kills_everything() {
        let report = run_campaign(&[Design::D2], &EquivOptions::default()).expect("campaign runs");
        assert!(report.applied >= 8, "plan should find its targets");
        for o in &report.outcomes {
            assert!(o.applied, "{}: target missing", o.mutant);
            assert!(o.killed, "{} survived: {}", o.mutant, o.detail);
        }
        assert!(
            report.sat_only_kills >= 2,
            "voter/detector kills must be invisible to sampled simulation"
        );
        assert!(report.kill_rate() >= 95.0);
    }
}
