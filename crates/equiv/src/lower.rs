//! Lowering a validated netlist into one combinational AIG frame.
//!
//! A *frame* is the netlist's combinational transition function: given
//! literals for every input-port bit and every register output (state)
//! bit, it computes literals for every net — and from those, the
//! next-state (register D) literals and the output-port literals. The
//! sequential checkers in [`crate::seq`] compose frames: one shared
//! frame for product simulation, or an unrolled chain of them for
//! bounded model checking.
//!
//! Undriven nets lower to constant false. This matches both `Engine`
//! backends, which leave unassigned storage zeroed — important because
//! mutated netlists (built via `assemble_unchecked`) routinely contain
//! disconnected nets, and the counterexamples we extract must replay
//! concretely on those engines.

use std::collections::BTreeMap;

use dwt_rtl::cell::CellKind;
use dwt_rtl::net::NetId;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::aig::{Aig, Lit};
use crate::EquivError;

/// A lowered combinational frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Literal per net (indexed by `NetId::index()`).
    pub nets: Vec<Lit>,
    /// Next-state literals per register, in `Netlist::registers()` order.
    pub reg_next: Vec<Vec<Lit>>,
    /// Current-state literals per register (as passed in), same order.
    pub reg_state: Vec<Vec<Lit>>,
    /// Output-port literals, LSB first.
    pub outputs: BTreeMap<String, Vec<Lit>>,
}

/// Lowers one combinational frame of `netlist` into `aig`.
///
/// `inputs` maps each input-port name to its bit literals (LSB first,
/// exactly port width). `reg_state` provides the register-output
/// literals in `Netlist::registers()` order; pass literals from
/// [`zero_state`] for a reset frame.
///
/// # Errors
///
/// Rejects RAM cells (outside the equivalence fragment) and
/// mis-shaped input/state vectors.
pub fn lower_frame(
    aig: &mut Aig,
    netlist: &Netlist,
    inputs: &BTreeMap<String, Vec<Lit>>,
    reg_state: &[Vec<Lit>],
) -> Result<Frame, EquivError> {
    let mut nets: Vec<Option<Lit>> = vec![None; netlist.net_count()];
    for port in netlist.ports().values() {
        if port.direction != PortDirection::Input {
            continue;
        }
        let lits = inputs.get(&port.name).ok_or_else(|| {
            EquivError::Shape(format!("no literals for input port `{}`", port.name))
        })?;
        if lits.len() != port.bus.width() {
            return Err(EquivError::Shape(format!(
                "input port `{}` is {} bits, got {} literals",
                port.name,
                port.bus.width(),
                lits.len()
            )));
        }
        for (net, &lit) in port.bus.bits().iter().zip(lits) {
            nets[net.index()] = Some(lit);
        }
    }
    let registers = netlist.registers();
    if reg_state.len() != registers.len() {
        return Err(EquivError::Shape(format!(
            "netlist has {} registers, got {} state vectors",
            registers.len(),
            reg_state.len()
        )));
    }
    for (&reg_id, state) in registers.iter().zip(reg_state) {
        let CellKind::Register { q, .. } = &netlist.cell(reg_id).kind else {
            unreachable!("registers() lists only Register cells");
        };
        if state.len() != q.width() {
            return Err(EquivError::Shape(format!(
                "register `{}` is {} bits, got {} state literals",
                netlist.cell(reg_id).name,
                q.width(),
                state.len()
            )));
        }
        for (net, &lit) in q.bits().iter().zip(state) {
            nets[net.index()] = Some(lit);
        }
    }

    // Evaluate combinational cells in topological order. Undriven
    // combinational inputs read as constant false (engine semantics).
    let net_lit =
        |nets: &[Option<Lit>], id: NetId| -> Lit { nets[id.index()].unwrap_or(Lit::FALSE) };
    for &cell_id in netlist.topo_order() {
        let cell = netlist.cell(cell_id);
        match &cell.kind {
            CellKind::Register { .. } => {}
            CellKind::Constant { value, out } => {
                for (i, net) in out.bits().iter().enumerate() {
                    let bit = (*value >> i) & 1 != 0;
                    nets[net.index()] = Some(if bit { Lit::TRUE } else { Lit::FALSE });
                }
            }
            CellKind::Lut { inputs, table, output } => {
                let sels: Vec<Lit> = inputs.iter().map(|&n| net_lit(&nets, n)).collect();
                nets[output.index()] = Some(lower_lut(aig, &sels, *table));
            }
            CellKind::FullAdder { a, b, cin, sum, cout, invert_b } => {
                let la = net_lit(&nets, *a);
                let lb = net_lit(&nets, *b).xor_sign(*invert_b);
                let lc = net_lit(&nets, *cin);
                let s = aig.xor(la, lb);
                let s = aig.xor(s, lc);
                let c = aig.maj(la, lb, lc);
                nets[sum.index()] = Some(s);
                nets[cout.index()] = Some(c);
            }
            CellKind::CarryAdd { a, b, out } | CellKind::CarrySub { a, b, out } => {
                let subtract = matches!(cell.kind, CellKind::CarrySub { .. });
                let mut carry = if subtract { Lit::TRUE } else { Lit::FALSE };
                for i in 0..out.width() {
                    let la = net_lit(&nets, a.bit(i));
                    let lb = net_lit(&nets, b.bit(i)).xor_sign(subtract);
                    let s = aig.xor(la, lb);
                    let s = aig.xor(s, carry);
                    carry = aig.maj(la, lb, carry);
                    nets[out.bit(i).index()] = Some(s);
                }
            }
            CellKind::Ram { .. } => {
                return Err(EquivError::Unsupported(format!(
                    "cell `{}`: RAM cells are outside the equivalence fragment",
                    cell.name
                )));
            }
        }
    }

    let resolved: Vec<Lit> = nets.iter().map(|n| n.unwrap_or(Lit::FALSE)).collect();
    let mut reg_next = Vec::with_capacity(registers.len());
    for &reg_id in registers {
        let CellKind::Register { d, .. } = &netlist.cell(reg_id).kind else {
            unreachable!("registers() lists only Register cells");
        };
        reg_next.push(d.bits().iter().map(|n| resolved[n.index()]).collect());
    }
    let mut outputs = BTreeMap::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            outputs.insert(
                port.name.clone(),
                port.bus.bits().iter().map(|n| resolved[n.index()]).collect(),
            );
        }
    }
    Ok(Frame { nets: resolved, reg_next, reg_state: reg_state.to_vec(), outputs })
}

/// Lowers a LUT as a sum of minterms over its selector literals.
///
/// Going through [`Aig::and`]/[`Aig::or`] keeps all folding active: a
/// majority LUT whose three inputs collapse to one literal reduces to
/// that literal, constant selectors prune half the table per level, and
/// structurally repeated LUTs strash to a single cone.
fn lower_lut(aig: &mut Aig, sels: &[Lit], table: u16) -> Lit {
    let mut acc = Lit::FALSE;
    for m in 0..(1u16 << sels.len()) {
        if table & (1 << m) == 0 {
            continue;
        }
        let mut term = Lit::TRUE;
        for (i, &sel) in sels.iter().enumerate() {
            let phase = (m >> i) & 1 != 0;
            term = aig.and(term, sel.xor_sign(!phase));
        }
        acc = aig.or(acc, term);
    }
    acc
}

/// Fresh input literals for every input port of a netlist, keyed by
/// port name (LSB first). Port iteration is name-ordered, so two
/// netlists with identical port signatures allocate identically.
pub fn fresh_inputs(aig: &mut Aig, netlist: &Netlist) -> BTreeMap<String, Vec<Lit>> {
    let mut map = BTreeMap::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            map.insert(port.name.clone(), (0..port.bus.width()).map(|_| aig.input()).collect());
        }
    }
    map
}

/// All-false (power-on reset) state literals for every register.
#[must_use]
pub fn zero_state(netlist: &Netlist) -> Vec<Vec<Lit>> {
    netlist
        .registers()
        .iter()
        .map(|&id| {
            let CellKind::Register { q, .. } = &netlist.cell(id).kind else {
                unreachable!("registers() lists only Register cells");
            };
            vec![Lit::FALSE; q.width()]
        })
        .collect()
}

/// Fresh (symbolic) state literals for every register.
pub fn fresh_state(aig: &mut Aig, netlist: &Netlist) -> Vec<Vec<Lit>> {
    netlist
        .registers()
        .iter()
        .map(|&id| {
            let CellKind::Register { q, .. } = &netlist.cell(id).kind else {
                unreachable!("registers() lists only Register cells");
            };
            (0..q.width()).map(|_| aig.input()).collect()
        })
        .collect()
}

/// Register names in `Netlist::registers()` order — the handle the
/// sequential checker uses for correspondence diagnostics.
#[must_use]
pub fn register_names(netlist: &Netlist) -> Vec<String> {
    netlist.registers().iter().map(|&id| netlist.cell(id).name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt_rtl::builder::NetlistBuilder;
    use dwt_rtl::sim::Simulator;

    /// A small two-stage pipeline: out = reg(reg(a + x)) - a.
    fn sample_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.input("a", 6).expect("input a");
        let x = b.input("x", 6).expect("input x");
        let sum = b.carry_add("sum", &a, &x, 7).expect("adder");
        let r1 = b.register("r1", &sum).expect("r1");
        let r2 = b.register("r2", &r1).expect("r2");
        let diff = b.carry_sub("diff", &r2, &a, 8).expect("subtractor");
        b.output("out", &diff).expect("output");
        b.finish().expect("valid netlist")
    }

    #[test]
    fn frame_matches_simulator_combinationally() {
        let netlist = sample_netlist();
        let mut aig = Aig::new();
        let inputs = fresh_inputs(&mut aig, &netlist);
        let state = zero_state(&netlist);
        let frame = lower_frame(&mut aig, &netlist, &inputs, &state).expect("lowers");

        // Drive the AIG and a freshly-reset Simulator with the same
        // inputs and compare the settled output bit-exactly. 64 lanes
        // of the AIG word evaluation are exercised one at a time.
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..32 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let va = ((seed >> 10) as i64 & 0x3f) << 58 >> 58; // sign-extend 6 bits
            let vx = ((seed >> 33) as i64 & 0x3f) << 58 >> 58;
            let mut words = Vec::new();
            for (name, lits) in &inputs {
                let v = if name == "a" { va } else { vx };
                for i in 0..lits.len() {
                    words.push(if (v >> i) & 1 != 0 { !0u64 } else { 0 });
                }
            }
            let evald = aig.eval(&words);
            let out_lits = &frame.outputs["out"];
            let mut got = 0i64;
            for (i, &l) in out_lits.iter().enumerate() {
                if Aig::lit_word(&evald, l) & 1 != 0 {
                    got |= 1 << i;
                }
            }
            let shift = 64 - out_lits.len();
            let got = (got << shift) >> shift;

            let mut sim = Simulator::new(netlist.clone()).expect("simulates");
            sim.set_input("a", va).expect("input a");
            sim.set_input("x", vx).expect("input x");
            sim.settle();
            let want = sim.peek("out").expect("output");
            assert_eq!(got, want, "a={va} x={vx}");
        }
    }

    #[test]
    fn lut_lowering_covers_all_tables() {
        // Exhaustively check 3-input LUT lowering against direct table
        // lookup for a spread of tables.
        for table in [0u16, 0xff, 0b1001_0110, 0b1110_1000, 0b0101_1010, 0x42] {
            let mut g = Aig::new();
            let sels = [g.input(), g.input(), g.input()];
            let out = lower_lut(&mut g, &sels, table);
            for m in 0u16..8 {
                let words: Vec<u64> =
                    (0..3).map(|i| if (m >> i) & 1 != 0 { !0 } else { 0 }).collect();
                let evald = g.eval(&words);
                let got = Aig::lit_word(&evald, out) & 1 != 0;
                assert_eq!(got, table & (1 << m) != 0, "table={table:#x} m={m}");
            }
        }
    }

    #[test]
    fn reg_next_tracks_d_cone() {
        let netlist = sample_netlist();
        let mut aig = Aig::new();
        let inputs = fresh_inputs(&mut aig, &netlist);
        let state = fresh_state(&mut aig, &netlist);
        let frame = lower_frame(&mut aig, &netlist, &inputs, &state).expect("lowers");
        assert_eq!(frame.reg_next.len(), 2);
        let names = register_names(&netlist);
        let r1 = names.iter().position(|n| n == "r1").expect("r1 exists");
        let r2 = names.iter().position(|n| n == "r2").expect("r2 exists");
        // r2's next state is exactly r1's current state literals.
        assert_eq!(frame.reg_next[r2], frame.reg_state[r1]);
    }
}
