//! Concrete replay of SAT counterexamples on both `Engine` backends.
//!
//! A disproof from [`crate::seq::prove`] is an abstract input sequence.
//! This module closes the loop with the rest of the workspace: it
//! drives the sequence through the event-driven [`Simulator`] *and* the
//! [`CompiledEngine`] op-program interpreter (the existing differential
//! pair), confirms the two netlists really diverge on silicon-faithful
//! semantics, and then greedily zeroes inputs to leave a minimized
//! directed test — the artifact a regression suite wants to keep.

use std::collections::BTreeMap;

use dwt_rtl::compile::CompiledEngine;
use dwt_rtl::engine::Engine;
use dwt_rtl::netlist::Netlist;
use dwt_rtl::sim::Simulator;

use crate::seq::CounterExample;
use crate::EquivError;

/// A replayed, confirmed, minimized counterexample.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// `(A, B)` values at the mismatch frame on the event-driven
    /// backend, when it reproduced there.
    pub event: Option<(i64, i64)>,
    /// Same on the compiled backend.
    pub compiled: Option<(i64, i64)>,
    /// The minimized directed test (still a confirmed mismatch).
    pub minimized: CounterExample,
    /// Input values zeroed by minimization.
    pub zeroed_inputs: usize,
}

impl ReplayReport {
    /// True when both backends reproduced the mismatch.
    #[must_use]
    pub fn confirmed(&self) -> bool {
        self.event.is_some() && self.compiled.is_some()
    }
}

/// Drives `frames` through an engine and samples `port` every frame.
///
/// Frame protocol (matching the AIG convention `out_t = f(x_t, q_t)`,
/// `q_{t+1} = g(x_t, q_t)`): stage inputs, settle, sample, tick.
fn drive<E: Engine>(
    netlist: &Netlist,
    frames: &[BTreeMap<String, i64>],
    port: &str,
) -> Result<Vec<i64>, EquivError> {
    let mut engine =
        E::from_netlist(netlist.clone()).map_err(|e| EquivError::Engine(e.to_string()))?;
    let mut samples = Vec::with_capacity(frames.len());
    for frame in frames {
        for (name, &value) in frame {
            engine.set_input(name, value).map_err(|e| EquivError::Engine(e.to_string()))?;
        }
        engine.try_settle().map_err(|e| EquivError::Engine(e.to_string()))?;
        samples.push(engine.peek(port).map_err(|e| EquivError::Engine(e.to_string()))?);
        engine.try_tick().map_err(|e| EquivError::Engine(e.to_string()))?;
    }
    Ok(samples)
}

/// Runs a candidate input sequence on one backend pair and returns the
/// first frame where the two netlists split on `port`.
fn first_split<E: Engine>(
    a: &Netlist,
    b: &Netlist,
    frames: &[BTreeMap<String, i64>],
    port: &str,
) -> Result<Option<(usize, i64, i64)>, EquivError> {
    let va = drive::<E>(a, frames, port)?;
    let vb = drive::<E>(b, frames, port)?;
    Ok(va.iter().zip(&vb).enumerate().find(|(_, (x, y))| x != y).map(|(i, (&x, &y))| (i, x, y)))
}

/// Replays a counterexample on both backends and minimizes it.
///
/// The returned report says, per backend, whether the mismatch
/// reproduced concretely; [`ReplayReport::confirmed`] is the gate the
/// campaign and CI use. Minimization greedily zeroes input values
/// (checking against the event-driven backend) while the mismatch on
/// the same port persists, then re-confirms the smaller test on both
/// backends.
///
/// # Errors
///
/// Engine construction/stepping failures (e.g. simulation divergence
/// on a pathological mutant) surface as [`EquivError::Engine`].
pub fn replay_counterexample(
    a: &Netlist,
    b: &Netlist,
    cex: &CounterExample,
) -> Result<ReplayReport, EquivError> {
    let mut frames = cex.frames.clone();
    frames.truncate(cex.frame + 1);

    // Greedy minimization: zero any input value whose removal keeps
    // the mismatch alive (possibly at an earlier frame).
    let mut zeroed = 0usize;
    let keys: Vec<(usize, String)> = frames
        .iter()
        .enumerate()
        .flat_map(|(i, f)| f.keys().map(move |k| (i, k.clone())))
        .collect();
    for (i, key) in keys {
        if frames[i][&key] == 0 {
            continue;
        }
        let saved = frames[i][&key];
        *frames[i].get_mut(&key).expect("key exists") = 0;
        match first_split::<Simulator>(a, b, &frames, &cex.port) {
            Ok(Some(_)) => zeroed += 1,
            _ => *frames[i].get_mut(&key).expect("key exists") = saved,
        }
    }
    // Drop trailing frames past the (possibly earlier) mismatch.
    let event_split = first_split::<Simulator>(a, b, &frames, &cex.port)?;
    if let Some((frame, _, _)) = event_split {
        frames.truncate(frame + 1);
    }
    let compiled_split = first_split::<CompiledEngine>(a, b, &frames, &cex.port)?;

    let minimized = match event_split {
        Some((frame, va, vb)) => {
            CounterExample { frames: frames.clone(), port: cex.port.clone(), frame, got: (va, vb) }
        }
        None => cex.clone(),
    };
    Ok(ReplayReport {
        event: event_split.map(|(_, va, vb)| (va, vb)),
        compiled: compiled_split.map(|(_, va, vb)| (va, vb)),
        minimized,
        zeroed_inputs: zeroed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{prove, EquivOptions, Verdict};
    use dwt_rtl::builder::NetlistBuilder;

    fn adder(width: usize, bump: i64) -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", width).expect("input");
        let y = b.input("y", width).expect("input");
        let sum = b.carry_add("sum", &x, &y, width + 1).expect("adder");
        let sum = if bump != 0 {
            let c = b.constant(bump, 3).expect("constant");
            b.carry_add("bump", &sum, &c, width + 1).expect("adder")
        } else {
            sum
        };
        let r = b.register("r", &sum).expect("register");
        b.output("out", &r).expect("output");
        b.finish().expect("valid")
    }

    #[test]
    fn disproof_replays_and_minimizes_on_both_backends() {
        let a = adder(8, 0);
        let b = adder(8, 1);
        let verdict = prove(&a, &b, &EquivOptions::default()).expect("checkable");
        let Verdict::Inequivalent(cex) = verdict else {
            panic!("expected disproof");
        };
        let report = replay_counterexample(&a, &b, &cex).expect("replays");
        assert!(report.confirmed(), "mismatch must reproduce on both backends");
        let (va, vb) = report.event.expect("event mismatch");
        assert_eq!(vb - va, 1, "B is the off-by-one design");
        assert_eq!(report.event, report.compiled);
        // Minimization keeps a valid mismatch and the off-by-one
        // splits even on all-zero inputs, so everything zeroes out.
        assert!(report.minimized.frames.len() <= cex.frames.len());
        let all_zero = report.minimized.frames.iter().all(|f| f.values().all(|&v| v == 0));
        assert!(all_zero, "0 + 0 != 0 + 0 + 1 already distinguishes the designs");
    }
}
