//! And-inverter graph with structural hashing and constant folding.
//!
//! Every function is expressed over two-input AND nodes and literal
//! inversion. [`Aig::and`] folds constants and idempotent/contradictory
//! operand pairs, then strashes: a structurally identical node is never
//! created twice, so syntactically identical cones (the common case
//! when comparing a netlist against its own compiled form, or TMR
//! replicas against each other) collapse to the *same literal* before
//! any SAT query is posed.
//!
//! The graph also evaluates itself over `u64` words ([`Aig::eval`]),
//! one bit per parallel pattern — the signature engine behind both
//! SAT sweeping candidate detection and the fast sequential
//! disproof-by-simulation pass.

use std::collections::HashMap;
use std::ops::Not;

/// A literal: an AIG variable with an optional inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a variable index and phase.
    #[must_use]
    pub fn new(var: u32, negated: bool) -> Lit {
        Lit(var << 1 | u32::from(negated))
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal inverts its variable.
    #[must_use]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// This literal with the given extra inversion applied.
    #[must_use]
    pub fn xor_sign(self, negate: bool) -> Lit {
        Lit(self.0 ^ u32::from(negate))
    }

    /// The raw code (`var * 2 + phase`), used as a hash key.
    #[must_use]
    pub fn code(self) -> u32 {
        self.0
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// Variable 0: the constant-false source.
    Const,
    /// A free input (cut point): primary input bit or register state bit.
    Input,
    /// Conjunction of two literals over earlier variables.
    And(Lit, Lit),
}

/// The and-inverter graph.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<u32>,
    strash: HashMap<(u32, u32), u32>,
}

impl Aig {
    /// An empty graph holding only the constant node.
    #[must_use]
    pub fn new() -> Aig {
        Aig { nodes: vec![Node::Const], inputs: Vec::new(), strash: HashMap::new() }
    }

    /// Number of variables (constant + inputs + AND nodes).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes.
    #[must_use]
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::And(..))).count()
    }

    /// The variables that are inputs, in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// The node behind a variable.
    #[must_use]
    pub fn node(&self, var: u32) -> Node {
        self.nodes[var as usize]
    }

    /// Creates a fresh input and returns its positive literal.
    pub fn input(&mut self) -> Lit {
        let var = self.nodes.len() as u32;
        self.nodes.push(Node::Input);
        self.inputs.push(var);
        Lit::new(var, false)
    }

    /// `a AND b`, with constant folding, trivial-pair reduction and
    /// structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE || a == b {
            return b;
        }
        if b == Lit::TRUE {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if let Some(&var) = self.strash.get(&(x.code(), y.code())) {
            return Lit::new(var, false);
        }
        let var = self.nodes.len() as u32;
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x.code(), y.code()), var);
        Lit::new(var, false)
    }

    /// `a OR b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n = self.and(a, !b);
        let m = self.and(!a, b);
        self.or(n, m)
    }

    /// `if sel { a } else { b }`.
    pub fn mux(&mut self, sel: Lit, a: Lit, b: Lit) -> Lit {
        let t = self.and(sel, a);
        let e = self.and(!sel, b);
        self.or(t, e)
    }

    /// Three-input majority (the full-adder carry).
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// OR over a slice of literals.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        lits.iter().fold(Lit::FALSE, |acc, &l| self.or(acc, l))
    }

    /// Evaluates every variable over 64-bit pattern words.
    ///
    /// `input_words[i]` is the word for the `i`-th input (in
    /// [`Aig::inputs`] order; missing entries read as zero). Returns a
    /// word per variable.
    #[must_use]
    pub fn eval(&self, input_words: &[u64]) -> Vec<u64> {
        let mut words = vec![0u64; self.nodes.len()];
        let mut next_input = 0usize;
        for (v, node) in self.nodes.iter().enumerate() {
            words[v] = match *node {
                Node::Const => 0,
                Node::Input => {
                    let w = input_words.get(next_input).copied().unwrap_or(0);
                    next_input += 1;
                    w
                }
                Node::And(a, b) => {
                    let wa = words[a.var() as usize] ^ if a.is_negated() { !0 } else { 0 };
                    let wb = words[b.var() as usize] ^ if b.is_negated() { !0 } else { 0 };
                    wa & wb
                }
            };
        }
        words
    }

    /// The word value of a literal given an [`Aig::eval`] result.
    #[must_use]
    pub fn lit_word(words: &[u64], lit: Lit) -> u64 {
        words[lit.var() as usize] ^ if lit.is_negated() { !0 } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_and_strashing() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::TRUE, b), b);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        let n1 = g.and(a, b);
        let n2 = g.and(b, a);
        assert_eq!(n1, n2, "strashing must canonicalize operand order");
        assert_eq!(g.num_ands(), 1);
        // Majority of three copies of one literal collapses to it.
        assert_eq!(g.maj(a, a, a), a);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let x = g.xor(a, b);
        let m = g.maj(a, b, c);
        let s = g.mux(c, a, b);
        let wa = 0b1100u64;
        let wb = 0b1010u64;
        let wc = 0b1111u64;
        let words = g.eval(&[wa, wb, wc]);
        assert_eq!(Aig::lit_word(&words, x) & 0xf, (wa ^ wb) & 0xf);
        assert_eq!(Aig::lit_word(&words, m) & 0xf, ((wa & wb) | (wa & wc) | (wb & wc)) & 0xf);
        assert_eq!(Aig::lit_word(&words, s) & 0xf, ((wc & wa) | (!wc & wb)) & 0xf);
    }
}
