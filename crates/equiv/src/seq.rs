//! Sequential equivalence checking over two netlists.
//!
//! The pipeline, in order of increasing cost:
//!
//! 1. **Product simulation** — both machines run from power-on reset
//!    (all registers zero, like both `Engine` backends) under shared
//!    random inputs, 64 lanes at a time on the AIG word evaluator. Any
//!    lane that splits a compared output is an immediate, concrete
//!    counterexample. The same run collects per-register-bit value
//!    streams, which become the *register correspondence* candidates.
//! 2. **Van Eijk induction** — state bits with identical streams form
//!    candidate classes (constant-zero joins as a virtual member).
//!    Under the hypothesis that each class is equal, SAT sweeping
//!    proves every class is preserved by one transition and every
//!    compared output pair agrees. Counterexamples to induction refine
//!    the classes and the loop retries; because both machines reset to
//!    all-zero, the hypothesis holds at cycle 0, so a closed induction
//!    step is a complete proof. Retimed pipelines (the Table 3 depth
//!    variants) land here: extra balancing registers either join a
//!    shifted class or stay unconstrained singletons.
//! 3. **Bounded model checking** — when induction cannot close, frames
//!    are unrolled from the concrete reset state. A satisfiable miter
//!    is a sound counterexample (replayable on both engines); an
//!    unsatisfiable prefix feeds the base case of **k-induction** on
//!    the output property, which handles designs whose alignment needs
//!    more than one step of history.
//!
//! Anything still open after that is reported as [`Verdict::Unknown`]
//! with the reason — never as a silent pass.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::aig::{Aig, Lit};
use crate::lower::{fresh_inputs, fresh_state, lower_frame, zero_state, Frame};
use crate::sweep::{Prove, Sweeper};
use crate::EquivError;

/// Knobs for [`prove`].
#[derive(Debug, Clone)]
pub struct EquivOptions {
    /// Cycles of 64-lane random product simulation.
    pub sim_cycles: usize,
    /// Frames of bounded model checking from reset (also the base-case
    /// depth available to k-induction).
    pub bmc_depth: usize,
    /// Maximum induction depth for the k-induction fallback.
    pub max_k: usize,
    /// RNG seed for simulation patterns.
    pub seed: u64,
    /// CDCL conflict budget per SAT query.
    pub conflict_budget: u64,
    /// Output ports excluded from comparison (e.g. `fault_detect` when
    /// comparing a hardened design against its base).
    pub ignore_outputs: Vec<String>,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            sim_cycles: 96,
            bmc_depth: 12,
            max_k: 3,
            seed: 0x44_57_54_05, // "DWT" '05
            conflict_budget: 400_000,
            ignore_outputs: Vec::new(),
        }
    }
}

/// How an equivalence was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Register-correspondence induction closed in one step.
    Induction,
    /// k-induction on the output property (with a BMC base case).
    KInduction(usize),
}

/// Statistics carried by a successful proof.
#[derive(Debug, Clone)]
pub struct Proof {
    /// The closing technique.
    pub method: Method,
    /// Correspondence classes in the final partition (induction only).
    pub classes: usize,
    /// SAT variables allocated across the proof.
    pub sat_vars: usize,
    /// CDCL conflicts spent.
    pub conflicts: u64,
    /// SAT queries issued.
    pub solve_calls: u64,
}

/// A concrete distinguishing run, replayable on both engines.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// Input values per frame (port name → signed value), frame 0 first.
    pub frames: Vec<BTreeMap<String, i64>>,
    /// The output port that splits.
    pub port: String,
    /// The frame (0-based) at which it splits.
    pub frame: usize,
    /// The two observed values (netlist A, netlist B).
    pub got: (i64, i64),
}

/// Outcome of an equivalence query.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The designs agree on every compared output in every reachable
    /// state.
    Equivalent(Proof),
    /// A distinguishing input sequence exists.
    Inequivalent(CounterExample),
    /// Neither proved nor disproved within the configured budgets.
    Unknown(String),
}

impl Verdict {
    /// Whether this verdict is [`Verdict::Equivalent`].
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent(_))
    }
}

/// Tiny deterministic generator (no external RNG dependencies).
#[derive(Debug, Clone)]
pub(crate) struct Lcg(pub u64);

impl Lcg {
    pub(crate) fn next_u64(&mut self) -> u64 {
        // splitmix64: full-width output, good lane independence.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub(crate) fn sign_extend(value: i64, width: usize) -> i64 {
    let shift = 64 - width as u32;
    (value << shift) >> shift
}

/// The shared symbolic product machine of two netlists.
struct Product {
    aig: Aig,
    /// Shared input literals and their `(port, bit)` positions in
    /// `aig.inputs()` order (positions `0..input_order.len()`).
    inputs: BTreeMap<String, Vec<Lit>>,
    input_order: Vec<(String, usize)>,
    /// Symbolic state literals, flattened A-then-B; positions
    /// `input_order.len()..` in `aig.inputs()` order.
    state_lits: Vec<Lit>,
    next_lits: Vec<Lit>,
    frame_a: Frame,
    frame_b: Frame,
    /// Compared output ports with widths.
    compared: Vec<(String, usize)>,
}

fn compared_outputs(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
) -> Result<Vec<(String, usize)>, EquivError> {
    // Input interfaces must be identical.
    let sig = |n: &Netlist, dir| -> Vec<(String, usize)> {
        n.ports()
            .values()
            .filter(|p| p.direction == dir)
            .map(|p| (p.name.clone(), p.bus.width()))
            .collect()
    };
    let ia = sig(a, PortDirection::Input);
    let ib = sig(b, PortDirection::Input);
    if ia != ib {
        return Err(EquivError::Shape(format!("input interfaces differ: {ia:?} vs {ib:?}")));
    }
    let oa = sig(a, PortDirection::Output);
    let ob = sig(b, PortDirection::Output);
    let mut compared = Vec::new();
    for (name, wa) in &oa {
        if opts.ignore_outputs.iter().any(|i| i == name) {
            continue;
        }
        if let Some((_, wb)) = ob.iter().find(|(n, _)| n == name) {
            if wa != wb {
                return Err(EquivError::Shape(format!(
                    "output `{name}` is {wa} bits in A but {wb} bits in B"
                )));
            }
            compared.push((name.clone(), *wa));
        }
    }
    if compared.is_empty() {
        return Err(EquivError::Shape("no common output ports to compare".to_owned()));
    }
    Ok(compared)
}

fn build_product(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> Result<Product, EquivError> {
    let compared = compared_outputs(a, b, opts)?;
    let mut aig = Aig::new();
    let inputs = fresh_inputs(&mut aig, a);
    let mut input_order = Vec::new();
    for (name, lits) in &inputs {
        for bit in 0..lits.len() {
            input_order.push((name.clone(), bit));
        }
    }
    let state_a = fresh_state(&mut aig, a);
    let state_b = fresh_state(&mut aig, b);
    let frame_a = lower_frame(&mut aig, a, &inputs, &state_a)?;
    let frame_b = lower_frame(&mut aig, b, &inputs, &state_b)?;
    let state_lits: Vec<Lit> = state_a.iter().chain(&state_b).flatten().copied().collect();
    let next_lits: Vec<Lit> =
        frame_a.reg_next.iter().chain(&frame_b.reg_next).flatten().copied().collect();
    Ok(Product { aig, inputs, input_order, state_lits, next_lits, frame_a, frame_b, compared })
}

/// One simulated product run: either a concrete counterexample or the
/// per-state-bit value streams for correspondence.
enum SimOutcome {
    Mismatch(CounterExample),
    Streams(Vec<Vec<u64>>),
}

fn simulate_product(product: &Product, opts: &EquivOptions) -> SimOutcome {
    let n_in = product.input_order.len();
    let n_state = product.state_lits.len();
    let mut rng = Lcg(opts.seed);
    let mut state_words = vec![0u64; n_state];
    let mut streams: Vec<Vec<u64>> = vec![Vec::new(); n_state];
    let mut history: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..opts.sim_cycles.max(1) {
        let in_words: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();
        let mut words = in_words.clone();
        words.extend_from_slice(&state_words);
        history.push(in_words);
        // Record the state *entering* this cycle into the streams.
        for (stream, &w) in streams.iter_mut().zip(&state_words) {
            stream.push(w);
        }
        let evald = product.aig.eval(&words);
        // Output comparison across all 64 lanes.
        for (port, width) in &product.compared {
            let mut diff = 0u64;
            for i in 0..*width {
                let la = product.frame_a.outputs[port][i];
                let lb = product.frame_b.outputs[port][i];
                diff |= Aig::lit_word(&evald, la) ^ Aig::lit_word(&evald, lb);
            }
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let cex = extract_sim_cex(product, &history, &evald, port, *width, cycle, lane);
                return SimOutcome::Mismatch(cex);
            }
        }
        for (i, &next) in product.next_lits.iter().enumerate() {
            state_words[i] = Aig::lit_word(&evald, next);
        }
    }
    SimOutcome::Streams(streams)
}

fn extract_sim_cex(
    product: &Product,
    history: &[Vec<u64>],
    evald: &[u64],
    port: &str,
    width: usize,
    cycle: usize,
    lane: u32,
) -> CounterExample {
    let frames = history.iter().map(|in_words| lane_inputs(product, in_words, lane)).collect();
    let (mut va, mut vb) = (0i64, 0i64);
    for i in 0..width {
        let la = product.frame_a.outputs[port][i];
        let lb = product.frame_b.outputs[port][i];
        if (Aig::lit_word(evald, la) >> lane) & 1 != 0 {
            va |= 1 << i;
        }
        if (Aig::lit_word(evald, lb) >> lane) & 1 != 0 {
            vb |= 1 << i;
        }
    }
    CounterExample {
        frames,
        port: port.to_owned(),
        frame: cycle,
        got: (sign_extend(va, width), sign_extend(vb, width)),
    }
}

fn lane_inputs(product: &Product, in_words: &[u64], lane: u32) -> BTreeMap<String, i64> {
    let mut values: BTreeMap<String, i64> = BTreeMap::new();
    for (pos, (port, bit)) in product.input_order.iter().enumerate() {
        if (in_words[pos] >> lane) & 1 != 0 {
            *values.entry(port.clone()).or_insert(0) |= 1 << bit;
        } else {
            values.entry(port.clone()).or_insert(0);
        }
    }
    for (port, lits) in &product.inputs {
        let v = values.entry(port.clone()).or_insert(0);
        *v = sign_extend(*v, lits.len());
    }
    values
}

/// Candidate correspondence classes: state-bit indices grouped by
/// identical value streams. Index `usize::MAX` stands for constant 0.
fn partition(streams: &[Vec<u64>]) -> Vec<Vec<usize>> {
    let mut by_sig: BTreeMap<&[u64], Vec<usize>> = BTreeMap::new();
    for (i, sig) in streams.iter().enumerate() {
        by_sig.entry(sig.as_slice()).or_default().push(i);
    }
    let zero_len = streams.first().map_or(0, Vec::len);
    let zeros = vec![0u64; zero_len];
    let mut classes = Vec::new();
    for (sig, members) in by_sig {
        let mut class = members;
        if sig == zeros.as_slice() {
            class.insert(0, usize::MAX); // virtual constant-0 member
        }
        if class.len() > 1 {
            classes.push(class);
        }
    }
    classes
}

struct InductionFailure {
    /// Next-state patterns (one bit per state literal) from refuted
    /// obligations that split at least one class. Empty means the
    /// counterexamples refine nothing — induction cannot close.
    patterns: Vec<Vec<u64>>,
}

/// SAT sweeping proper: prove and merge internal AIG nodes that share
/// simulation signatures, in topological order.
///
/// Signatures are computed consistently with the class hypotheses
/// (class members share one random word, the constant class reads 0),
/// so every candidate respects what the solver already assumes. Each
/// successful proof records the equality as clauses, which makes the
/// supports of later candidates — and ultimately the induction
/// obligations themselves — collapse under unit propagation. This is
/// what keeps miters over structurally different implementations (a
/// behavioral carry chain vs. its LUT-expanded compiled form, a
/// shift-add tree vs. a Horner multiplier) within a small conflict
/// budget.
fn sweep_internal(
    product: &mut Product,
    sweeper: &mut Sweeper,
    classes: &[Vec<usize>],
    opts: &EquivOptions,
) {
    const ROUNDS: usize = 8;
    let n_in = product.input_order.len();
    let n_inputs_total = product.aig.inputs().len();
    let mut rng = Lcg(opts.seed ^ 0x5357_4545_5021_3730);
    let mut sigs: Vec<[u64; ROUNDS]> = vec![[0; ROUNDS]; product.aig.num_vars()];
    for round in 0..ROUNDS {
        let mut words: Vec<u64> = (0..n_inputs_total).map(|_| rng.next_u64()).collect();
        for class in classes {
            let repr_word = if class[0] == usize::MAX { 0 } else { words[n_in + class[0]] };
            for &m in class {
                if m != usize::MAX {
                    words[n_in + m] = repr_word;
                }
            }
        }
        let evald = product.aig.eval(&words);
        for (sig, w) in sigs.iter_mut().zip(&evald) {
            sig[round] = *w;
        }
    }
    // Topological merge pass: a node joins the first earlier node with
    // the same canonical signature when SAT confirms the equality.
    // (Complemented matches canonicalize on the low signature bit, so
    // `n == !m` merges too. Variable 0 is the constant, so nodes that
    // simulate constant merge against FALSE.)
    let mut repr_by_sig: HashMap<[u64; ROUNDS], Lit> = HashMap::new();
    let per_pair = opts.conflict_budget.min(20_000);
    for v in 0..product.aig.num_vars() as u32 {
        let mut lit = Lit::new(v, false);
        let mut sig = sigs[v as usize];
        if sig[0] & 1 == 1 {
            for w in &mut sig {
                *w = !*w;
            }
            lit = !lit;
        }
        match repr_by_sig.entry(sig) {
            Entry::Vacant(e) => {
                e.insert(lit);
            }
            Entry::Occupied(e) => {
                let repr = *e.get();
                if repr != lit
                    && sweeper.prove_equal(&mut product.aig, repr, lit, per_pair) == Prove::Proved
                {
                    sweeper.assume_equal(&product.aig, repr, lit);
                }
            }
        }
    }
}

/// One Van Eijk induction attempt over the given classes.
fn try_induction(
    product: &mut Product,
    classes: &[Vec<usize>],
    opts: &EquivOptions,
) -> Result<Result<Proof, InductionFailure>, EquivError> {
    let mut sweeper = Sweeper::new();
    let lit_of = |idx: usize| -> Lit {
        if idx == usize::MAX {
            Lit::FALSE
        } else {
            product.state_lits[idx]
        }
    };
    // Hypotheses: every class member equals its representative.
    for class in classes {
        let repr = lit_of(class[0]);
        for &m in &class[1..] {
            sweeper.assume_equal(&product.aig, repr, lit_of(m));
        }
    }
    // Merge internal equivalences bottom-up so the obligations below
    // land on an already-swept graph.
    sweep_internal(product, &mut sweeper, classes, opts);
    // Obligations: classes are preserved by one transition…
    let mut obligations: Vec<(Lit, Lit)> = Vec::new();
    for class in classes {
        let repr_next =
            if class[0] == usize::MAX { Lit::FALSE } else { product.next_lits[class[0]] };
        for &m in &class[1..] {
            let m_next = if m == usize::MAX { Lit::FALSE } else { product.next_lits[m] };
            obligations.push((repr_next, m_next));
        }
    }
    // …and every compared output bit agrees.
    for (port, width) in &product.compared {
        for i in 0..*width {
            obligations.push((product.frame_a.outputs[port][i], product.frame_b.outputs[port][i]));
        }
    }
    // Prove every obligation, batching refutations: each spurious
    // class merge yields a next-state pattern, and splitting them all
    // at once converges in a handful of attempts instead of one
    // re-proof per merge.
    let mut patterns: Vec<Vec<u64>> = Vec::new();
    let mut refuted = 0usize;
    for (p, q) in obligations {
        match sweeper.prove_equal(&mut product.aig, p, q, opts.conflict_budget) {
            Prove::Proved => {}
            Prove::Budget => {
                return Err(EquivError::Budget(format!(
                    "induction query exceeded {} conflicts",
                    opts.conflict_budget
                )));
            }
            Prove::Refuted => {
                // The hypotheses are hard clauses, so the model's
                // *current* state satisfies every class by
                // construction — the distinguishing information is in
                // its successor: evaluate the next-state cones and
                // keep the pattern if it splits any class.
                let model = sweeper.input_model(&product.aig);
                let words: Vec<u64> = model.iter().map(|&b| u64::from(b)).collect();
                let evald = product.aig.eval(&words);
                let pattern: Vec<u64> =
                    product.next_lits.iter().map(|&l| Aig::lit_word(&evald, l) & 1).collect();
                let splits = classes.iter().any(|class| {
                    let val = |idx: usize| -> u64 {
                        if idx == usize::MAX {
                            0
                        } else {
                            pattern[idx]
                        }
                    };
                    let first = val(class[0]);
                    class[1..].iter().any(|&m| val(m) != first)
                });
                refuted += 1;
                if splits {
                    patterns.push(pattern);
                }
            }
        }
    }
    if refuted > 0 {
        return Ok(Err(InductionFailure { patterns }));
    }
    Ok(Ok(Proof {
        method: Method::Induction,
        classes: classes.len(),
        sat_vars: sweeper.solver.num_vars(),
        conflicts: sweeper.solver.conflicts,
        solve_calls: sweeper.solver.solve_calls,
    }))
}

/// One compared output port in one unrolled frame: name plus both
/// machines' bit literals, kept for counterexample extraction.
type FrameOuts = Vec<(String, Vec<Lit>, Vec<Lit>)>;

/// BMC unrolling context shared by disproof and the k-induction base.
struct Unrolled {
    aig: Aig,
    sweeper: Sweeper,
    /// Per frame: `(port, bit)`-ordered input literals.
    frame_inputs: Vec<BTreeMap<String, Vec<Lit>>>,
    /// Per frame: the output miter literal.
    miters: Vec<Lit>,
    /// Per frame: compared output literals for cex extraction.
    outs: Vec<FrameOuts>,
}

fn unroll_frame(
    unrolled: &mut Unrolled,
    a: &Netlist,
    b: &Netlist,
    compared: &[(String, usize)],
    state_a: &mut Vec<Vec<Lit>>,
    state_b: &mut Vec<Vec<Lit>>,
) -> Result<(), EquivError> {
    let inputs = fresh_inputs(&mut unrolled.aig, a);
    let fa = lower_frame(&mut unrolled.aig, a, &inputs, state_a)?;
    let fb = lower_frame(&mut unrolled.aig, b, &inputs, state_b)?;
    let mut xors = Vec::new();
    let mut outs = Vec::new();
    for (port, width) in compared {
        let la = fa.outputs[port].clone();
        let lb = fb.outputs[port].clone();
        for i in 0..*width {
            let x = unrolled.aig.xor(la[i], lb[i]);
            xors.push(x);
        }
        outs.push((port.clone(), la, lb));
    }
    let miter = unrolled.aig.or_many(&xors);
    unrolled.frame_inputs.push(inputs);
    unrolled.miters.push(miter);
    unrolled.outs.push(outs);
    *state_a = fa.reg_next;
    *state_b = fb.reg_next;
    Ok(())
}

fn extract_bmc_cex(unrolled: &Unrolled, frame: usize) -> CounterExample {
    let model = unrolled.sweeper.input_model(&unrolled.aig);
    let value_of = |lit: Lit| -> bool {
        // Inputs carry their model bit; anything else evaluates below.
        let pos =
            unrolled.aig.inputs().iter().position(|&v| v == lit.var()).expect("input literal");
        model[pos] != lit.is_negated()
    };
    let mut frames = Vec::new();
    for inputs in unrolled.frame_inputs.iter().take(frame + 1) {
        let mut values = BTreeMap::new();
        for (port, lits) in inputs {
            let mut v = 0i64;
            for (i, &l) in lits.iter().enumerate() {
                if value_of(l) {
                    v |= 1 << i;
                }
            }
            values.insert(port.clone(), sign_extend(v, lits.len()));
        }
        frames.push(values);
    }
    // Evaluate the whole unrolling under the model to read the outputs.
    let words: Vec<u64> = model.iter().map(|&b| u64::from(b)).collect();
    let evald = unrolled.aig.eval(&words);
    let (port, got) = unrolled.outs[frame]
        .iter()
        .find_map(|(port, la, lb)| {
            let mut va = 0i64;
            let mut vb = 0i64;
            let mut differ = false;
            for i in 0..la.len() {
                let ba = Aig::lit_word(&evald, la[i]) & 1 != 0;
                let bb = Aig::lit_word(&evald, lb[i]) & 1 != 0;
                if ba {
                    va |= 1 << i;
                }
                if bb {
                    vb |= 1 << i;
                }
                differ |= ba != bb;
            }
            differ.then(|| (port.clone(), (sign_extend(va, la.len()), sign_extend(vb, la.len()))))
        })
        .expect("a satisfied miter names a differing port");
    CounterExample { frames, port, frame, got }
}

/// BMC from reset. `Ok(None)` = all frames hold; `Ok(Some(cex))` =
/// concrete disproof at some frame.
fn bmc(
    a: &Netlist,
    b: &Netlist,
    compared: &[(String, usize)],
    opts: &EquivOptions,
) -> Result<Option<CounterExample>, EquivError> {
    let mut unrolled = Unrolled {
        aig: Aig::new(),
        sweeper: Sweeper::new(),
        frame_inputs: Vec::new(),
        miters: Vec::new(),
        outs: Vec::new(),
    };
    let mut state_a = zero_state(a);
    let mut state_b = zero_state(b);
    for frame in 0..opts.bmc_depth {
        unroll_frame(&mut unrolled, a, b, compared, &mut state_a, &mut state_b)?;
        let miter = unrolled.miters[frame];
        match unrolled.sweeper.satisfiable(&unrolled.aig, miter, opts.conflict_budget) {
            Prove::Proved => return Ok(Some(extract_bmc_cex(&unrolled, frame))),
            Prove::Refuted => {
                // Proved unreachable: pin it for the later frames.
                unrolled.sweeper.assert_true(&unrolled.aig, !miter);
            }
            Prove::Budget => {
                return Err(EquivError::Budget(format!(
                    "BMC frame {frame} exceeded {} conflicts",
                    opts.conflict_budget
                )));
            }
        }
    }
    Ok(None)
}

/// k-induction on the output property from a symbolic start state.
/// Sound only when BMC has already covered `k` base frames.
fn k_induction(
    a: &Netlist,
    b: &Netlist,
    compared: &[(String, usize)],
    opts: &EquivOptions,
) -> Result<Option<(usize, Proof)>, EquivError> {
    for k in 1..=opts.max_k.min(opts.bmc_depth) {
        let mut unrolled = Unrolled {
            aig: Aig::new(),
            sweeper: Sweeper::new(),
            frame_inputs: Vec::new(),
            miters: Vec::new(),
            outs: Vec::new(),
        };
        let mut state_a = fresh_state(&mut unrolled.aig, a);
        let mut state_b = fresh_state(&mut unrolled.aig, b);
        for _ in 0..=k {
            unroll_frame(&mut unrolled, a, b, compared, &mut state_a, &mut state_b)?;
        }
        for t in 0..k {
            let m = unrolled.miters[t];
            unrolled.sweeper.assert_true(&unrolled.aig, !m);
        }
        let goal = unrolled.miters[k];
        match unrolled.sweeper.prove_false(&unrolled.aig, goal, opts.conflict_budget) {
            Prove::Proved => {
                return Ok(Some((
                    k,
                    Proof {
                        method: Method::KInduction(k),
                        classes: 0,
                        sat_vars: unrolled.sweeper.solver.num_vars(),
                        conflicts: unrolled.sweeper.solver.conflicts,
                        solve_calls: unrolled.sweeper.solver.solve_calls,
                    },
                )));
            }
            Prove::Refuted => continue,
            Prove::Budget => {
                return Err(EquivError::Budget(format!(
                    "{k}-induction exceeded {} conflicts",
                    opts.conflict_budget
                )));
            }
        }
    }
    Ok(None)
}

/// Random product simulation alone — the sampled-simulation baseline
/// the mutation campaign measures SAT sweeping against.
///
/// # Errors
///
/// Same structural errors as [`prove`].
pub fn simulate_only(
    a: &Netlist,
    b: &Netlist,
    opts: &EquivOptions,
) -> Result<Option<CounterExample>, EquivError> {
    let product = build_product(a, b, opts)?;
    match simulate_product(&product, opts) {
        SimOutcome::Mismatch(cex) => Ok(Some(cex)),
        SimOutcome::Streams(_) => Ok(None),
    }
}

/// Prints prover progress to stderr when `DWT_EQUIV_DEBUG` is set.
fn debug_log(msg: impl FnOnce() -> String) {
    if std::env::var_os("DWT_EQUIV_DEBUG").is_some() {
        eprintln!("{}", msg());
    }
}

/// Proves or disproves sequential equivalence of two netlists.
///
/// Inputs must have identical interfaces; outputs are compared on the
/// name intersection minus [`EquivOptions::ignore_outputs`]. Both
/// machines start from the all-zero power-on state, exactly like the
/// `Engine` backends.
///
/// # Errors
///
/// Structural problems ([`EquivError::Shape`], RAM cells) are errors;
/// exhausted budgets inside the fallback chain degrade to
/// [`Verdict::Unknown`] instead.
pub fn prove(a: &Netlist, b: &Netlist, opts: &EquivOptions) -> Result<Verdict, EquivError> {
    let mut product = build_product(a, b, opts)?;
    let mut streams = match simulate_product(&product, opts) {
        SimOutcome::Mismatch(cex) => return Ok(Verdict::Inequivalent(cex)),
        SimOutcome::Streams(streams) => streams,
    };

    // Van Eijk induction with counterexample-guided refinement.
    let mut refinements = 0usize;
    let max_refinements = product.state_lits.len() + 8;
    loop {
        let classes = partition(&streams);
        debug_log(|| {
            format!("induction attempt: {} classes, refinement {refinements}", classes.len())
        });
        match try_induction(&mut product, &classes, opts) {
            Ok(Ok(proof)) => return Ok(Verdict::Equivalent(proof)),
            Ok(Err(failure)) => {
                debug_log(|| {
                    format!("  induction failed: {} splitting patterns", failure.patterns.len())
                });
                if failure.patterns.is_empty() || refinements >= max_refinements {
                    break; // cannot refine further: fall through to BMC
                }
                refinements += failure.patterns.len();
                for pattern in &failure.patterns {
                    for (stream, bit) in streams.iter_mut().zip(pattern) {
                        stream.push(*bit);
                    }
                }
            }
            Err(EquivError::Budget(reason)) => {
                debug_log(|| format!("  induction budget: {reason}"));
                break;
            }
            Err(other) => return Err(other),
        }
    }

    match bmc(a, b, &product.compared, opts) {
        Ok(Some(cex)) => return Ok(Verdict::Inequivalent(cex)),
        Ok(None) => {}
        Err(EquivError::Budget(reason)) => return Ok(Verdict::Unknown(reason)),
        Err(other) => return Err(other),
    }
    match k_induction(a, b, &product.compared, opts) {
        Ok(Some((_, proof))) => Ok(Verdict::Equivalent(proof)),
        Ok(None) => Ok(Verdict::Unknown(format!(
            "induction did not close and no counterexample within {} BMC frames",
            opts.bmc_depth
        ))),
        Err(EquivError::Budget(reason)) => Ok(Verdict::Unknown(reason)),
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt_rtl::builder::NetlistBuilder;

    fn behavioral_pipe() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).expect("input");
        let y = b.input("y", 8).expect("input");
        let sum = b.carry_add("sum", &x, &y, 9).expect("adder");
        let r = b.register("r", &sum).expect("register");
        b.output("out", &r).expect("output");
        b.finish().expect("valid")
    }

    fn structural_pipe() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).expect("input");
        let y = b.input("y", 8).expect("input");
        let sum = b.ripple_add("sum", &x, &y, 9).expect("adder");
        let r = b.register("r", &sum).expect("register");
        b.output("out", &r).expect("output");
        b.finish().expect("valid")
    }

    fn off_by_one_pipe() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).expect("input");
        let y = b.input("y", 8).expect("input");
        let one = b.constant(1, 2).expect("constant");
        let sum = b.carry_add("sum", &x, &y, 9).expect("adder");
        let sum = b.carry_add("bump", &sum, &one, 9).expect("adder");
        let r = b.register("r", &sum).expect("register");
        b.output("out", &r).expect("output");
        b.finish().expect("valid")
    }

    #[test]
    fn behavioral_vs_structural_adder_pipeline() {
        let verdict = prove(&behavioral_pipe(), &structural_pipe(), &EquivOptions::default())
            .expect("checkable");
        assert!(verdict.is_equivalent(), "got {verdict:?}");
    }

    #[test]
    fn off_by_one_is_inequivalent_with_concrete_cex() {
        let verdict = prove(&behavioral_pipe(), &off_by_one_pipe(), &EquivOptions::default())
            .expect("checkable");
        let Verdict::Inequivalent(cex) = verdict else {
            panic!("expected a counterexample, got {verdict:?}");
        };
        assert!(!cex.frames.is_empty());
        assert_eq!(cex.port, "out");
        assert_ne!(cex.got.0, cex.got.1);
    }

    #[test]
    fn retimed_pipeline_depths_are_equivalent_when_padded() {
        // Same function, but B carries one extra register on the whole
        // path — a genuine latency difference, which must be reported
        // as inequivalent…
        let deeper = {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).expect("input");
            let y = b.input("y", 8).expect("input");
            let sum = b.carry_add("sum", &x, &y, 9).expect("adder");
            let r = b.register("r", &sum).expect("register");
            let r2 = b.register("r2", &r).expect("register");
            b.output("out", &r2).expect("output");
            b.finish().expect("valid")
        };
        let verdict =
            prove(&behavioral_pipe(), &deeper, &EquivOptions::default()).expect("checkable");
        assert!(
            matches!(verdict, Verdict::Inequivalent(_)),
            "latency mismatch must not be waved through: {verdict:?}"
        );
        // …whereas moving a register across the adder (retiming, same
        // latency) stays equivalent.
        let retimed = {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).expect("input");
            let y = b.input("y", 8).expect("input");
            let rx = b.register("rx", &x).expect("register");
            let ry = b.register("ry", &y).expect("register");
            let sum = b.carry_add("sum", &rx, &ry, 9).expect("adder");
            b.output("out", &sum).expect("output");
            b.finish().expect("valid")
        };
        let verdict =
            prove(&behavioral_pipe(), &retimed, &EquivOptions::default()).expect("checkable");
        assert!(verdict.is_equivalent(), "retiming must be accepted: {verdict:?}");
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).expect("input");
        b.output("out", &x).expect("output");
        let tiny = b.finish().expect("valid");
        let err = prove(&behavioral_pipe(), &tiny, &EquivOptions::default());
        assert!(matches!(err, Err(EquivError::Shape(_))));
    }
}
