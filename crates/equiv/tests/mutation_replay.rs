//! Property: every counterexample the SAT checker produces is real.
//!
//! A seeded miswire mutation (adder operand or register D input, any
//! design, any eligible cell) must be declared inequivalent, and the
//! counterexample must replay concretely — same port, same frame-level
//! divergence — on BOTH `Engine` backends, after minimization. This is
//! the contract that lets CI attach a directed test to every formal
//! disproof instead of an abstract SAT model.
//!
//! The second half is the inverse demonstration: a magic-constant bug
//! that 96 cycles of random simulation essentially never excites, but
//! the SAT disproof finds immediately. Together they pin down why the
//! equivalence gate exists alongside the sampled-simulation gates.

use proptest::prelude::*;

use dwt_arch::designs::Design;
use dwt_equiv::mutate::{miswire_adder, miswire_register};
use dwt_equiv::seq::{prove, simulate_only, EquivOptions, Verdict};
use dwt_equiv::{opts_for, replay_counterexample};
use dwt_rtl::builder::NetlistBuilder;
use dwt_rtl::cell::{tables, CellKind};
use dwt_rtl::net::Bus;
use dwt_rtl::netlist::Netlist;

/// Cell names in `netlist` that the miswire accepts: behavioral
/// adders/subtractors or registers, whichever `registers` selects.
fn eligible_targets(netlist: &Netlist, registers: bool) -> Vec<String> {
    netlist
        .cells()
        .iter()
        .filter(|c| match &c.kind {
            CellKind::Register { .. } => registers,
            CellKind::CarryAdd { .. } | CellKind::CarrySub { .. } => !registers,
            _ => false,
        })
        .map(|c| c.name.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded miswire => Inequivalent, and the cex replays on both
    /// backends.
    #[test]
    fn miswire_counterexamples_replay_on_both_backends(
        design_idx in 0usize..5,
        use_registers in any::<bool>(),
        pick in 0usize..64,
    ) {
        let design = Design::all()[design_idx];
        let built = design.build().expect("design builds");
        // Fully LUT-mapped designs have no behavioral adders to
        // miswire; fall back to their registers.
        let mut use_registers = use_registers;
        let mut targets = eligible_targets(&built.netlist, use_registers);
        if targets.is_empty() {
            use_registers = true;
            targets = eligible_targets(&built.netlist, true);
        }
        prop_assert!(!targets.is_empty(), "design has no miswire targets");
        let target = &targets[pick % targets.len()];

        let mutant = if use_registers {
            miswire_register(&built.netlist, target)
        } else {
            miswire_adder(&built.netlist, target)
        };
        // Some cells have no two adjacent distinct bits to swap (e.g.
        // replicated constant nets); that mutation simply isn't
        // expressible there and the case is vacuous.
        let Some(mutant) = mutant else { return Ok(()) };

        let opts = opts_for(&built.netlist);
        let verdict = prove(&built.netlist, &mutant, &opts).expect("prover runs");
        let Verdict::Inequivalent(cex) = verdict else {
            // A bit swap can be functionally dead (bits provably equal
            // on that net, e.g. inside a saturated slice). Accept a
            // proof of equivalence, but never an Unknown.
            prop_assert!(
                matches!(verdict, Verdict::Equivalent(_)),
                "miswire of {target} ended {verdict:?}"
            );
            return Ok(());
        };

        let report = replay_counterexample(&built.netlist, &mutant, &cex)
            .expect("replay runs");
        prop_assert!(
            report.confirmed(),
            "cex on {target} did not replay: event={:?} compiled={:?}",
            report.event,
            report.compiled
        );
        prop_assert!(report.minimized.frames.len() <= cex.frames.len());
    }
}

/// Two copies of `x + 1` over a 16-bit input; the second flips the
/// output LSB exactly when `x` equals a magic constant.
fn magic_pair(magic: u16) -> (Netlist, Netlist) {
    let golden = {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 16).expect("input");
        let one = b.constant(1, 16).expect("constant");
        let sum = b.carry_add("inc", &x, &one, 17).expect("adder");
        b.output("out", &sum).expect("output");
        b.finish().expect("valid")
    };
    let buggy = {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 16).expect("input");
        let one = b.constant(1, 16).expect("constant");
        let sum = b.carry_add("inc", &x, &one, 17).expect("adder");
        // eq = AND over per-bit "x[i] == magic[i]".
        let mut eq = if magic & 1 != 0 {
            b.lut("m0", &[x.bit(0)], tables::BUF1).expect("lut")
        } else {
            b.lut("m0", &[x.bit(0)], tables::NOT1).expect("lut")
        };
        for i in 1..16 {
            let bit = if magic >> i & 1 != 0 {
                b.lut(&format!("m{i}"), &[x.bit(i)], tables::BUF1).expect("lut")
            } else {
                b.lut(&format!("m{i}"), &[x.bit(i)], tables::NOT1).expect("lut")
            };
            eq = b.lut(&format!("eq{i}"), &[eq, bit], tables::AND2).expect("lut");
        }
        let lsb = b.lut("bug", &[sum.bit(0), eq], tables::XOR2).expect("lut");
        let mut bits = sum.bits().to_vec();
        bits[0] = lsb;
        let out = Bus::new(bits).expect("bus");
        b.output("out", &out).expect("output");
        b.finish().expect("valid")
    };
    (golden, buggy)
}

/// The reason the gate is SAT-based: random sampling at the campaign's
/// budget misses a 1-in-65536 trigger, the solver does not.
#[test]
fn sat_finds_magic_constant_bug_that_sampling_misses() {
    let (golden, buggy) = magic_pair(0xB00C);
    let opts = EquivOptions { bmc_depth: 2, max_k: 1, ..EquivOptions::default() };

    // Sampled simulation (the lint/verify gates' method) sees nothing.
    let sampled = simulate_only(&golden, &buggy, &opts).expect("simulation runs");
    assert!(sampled.is_none(), "96 random cycles should miss a 1/65536 trigger");

    // The checker proper refutes equivalence with the exact trigger.
    let verdict = prove(&golden, &buggy, &opts).expect("prover runs");
    let Verdict::Inequivalent(cex) = verdict else {
        panic!("expected a disproof, got {verdict:?}");
    };
    let frame = &cex.frames[cex.frame];
    assert_eq!(frame["x"] as u16, 0xB00C, "cex must hit the magic constant");

    // And the disproof turns into a concrete directed test.
    let report = replay_counterexample(&golden, &buggy, &cex).expect("replay runs");
    assert!(report.confirmed());
}
