//! Fault models for soft-error (SEU) injection campaigns.
//!
//! A [`FaultSpec`] names a disturbance in netlist terms — a net held at
//! a logic level, a flip-flop whose captured bit flips on one clock
//! edge, or a memory word whose stored bit is upset — and
//! [`Simulator::inject`](crate::sim::Simulator::inject) arms it on a
//! running simulation. The models follow the usual radiation-effects
//! taxonomy: stuck-ats stand in for hard defects, transient register
//! and RAM flips for single-event upsets.
//!
//! Faults are resolved by *name* so campaign drivers can enumerate
//! targets from [`Netlist::cells`](crate::netlist::Netlist::cells) and
//! ports without touching simulator internals, and a resolved fault is
//! deterministic: the same spec on the same netlist always disturbs the
//! same bit.

use std::fmt;

use crate::cell::CellKind;
use crate::error::{Error, Result};
use crate::net::NetId;
use crate::netlist::{CellId, Netlist};

/// One injectable disturbance, addressed by port/cell name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Permanently forces one bit of a named net (a port, or the output
    /// bus of a named cell) to a fixed level.
    StuckAt {
        /// Port name, or name of the cell whose output bus is targeted.
        net: String,
        /// Bit position within the bus (LSB = 0).
        bit: usize,
        /// The forced level: `false` = stuck-at-0, `true` = stuck-at-1.
        value: bool,
    },
    /// Flips the bit a named register captures on one specific clock
    /// edge (the tick whose zero-based index equals `cycle`); the
    /// corrupted value propagates until overwritten by the next capture.
    BitFlip {
        /// Name of the register cell.
        register: String,
        /// Bit position within the register (LSB = 0).
        bit: usize,
        /// Zero-based tick index at which the upset strikes.
        cycle: u64,
    },
    /// Flips one stored bit of a named RAM word at the start of one
    /// clock cycle (the memory-cell analogue of [`FaultSpec::BitFlip`]).
    RamUpset {
        /// Name of the RAM cell.
        ram: String,
        /// Word address within the RAM.
        addr: usize,
        /// Bit position within the word (LSB = 0).
        bit: usize,
        /// Zero-based tick index at which the upset strikes.
        cycle: u64,
    },
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::StuckAt { net, bit, value } => {
                write!(f, "stuck-at-{} {net}[{bit}]", u8::from(*value))
            }
            FaultSpec::BitFlip { register, bit, cycle } => {
                write!(f, "bit-flip {register}[{bit}]@{cycle}")
            }
            FaultSpec::RamUpset { ram, addr, bit, cycle } => {
                write!(f, "ram-upset {ram}[{addr}].{bit}@{cycle}")
            }
        }
    }
}

/// A [`FaultSpec`] resolved against one concrete netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedFault {
    /// Force `net` to `value` forever.
    Stuck {
        /// The physical net.
        net: NetId,
        /// The forced level.
        value: bool,
    },
    /// Invert bit `bit` of what `register` captures at tick `cycle`.
    Flip {
        /// The register cell.
        register: CellId,
        /// Bit position.
        bit: usize,
        /// Tick index.
        cycle: u64,
    },
    /// XOR bit `bit` of word `addr` in `cell` at the start of `cycle`.
    Ram {
        /// The RAM cell.
        cell: CellId,
        /// Word address.
        addr: usize,
        /// Bit position.
        bit: usize,
        /// Tick index.
        cycle: u64,
    },
}

fn fault_error(target: &str, detail: String) -> Error {
    Error::FaultTarget { target: target.to_owned(), detail }
}

/// The nets of a named bus: a port of either direction, or the output
/// bus of a named cell.
fn lookup_nets(netlist: &Netlist, name: &str) -> Result<Vec<NetId>> {
    if let Ok(port) = netlist.port(name) {
        return Ok(port.bus.bits().to_vec());
    }
    netlist
        .cells()
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.kind.output_nets())
        .ok_or_else(|| fault_error(name, "no port or cell with this name".into()))
}

fn find_cell(
    netlist: &Netlist,
    name: &str,
    wanted: &str,
    matches: impl Fn(&CellKind) -> bool,
) -> Result<CellId> {
    netlist
        .cells()
        .iter()
        .position(|c| c.name == name && matches(&c.kind))
        .map(|i| CellId(i as u32))
        .ok_or_else(|| fault_error(name, format!("no {wanted} cell with this name")))
}

/// Resolves a spec against a netlist, validating names and bounds.
pub(crate) fn resolve(netlist: &Netlist, spec: &FaultSpec) -> Result<ResolvedFault> {
    match spec {
        FaultSpec::StuckAt { net, bit, value } => {
            let nets = lookup_nets(netlist, net)?;
            let id = *nets.get(*bit).ok_or_else(|| {
                fault_error(net, format!("bit {bit} out of range (width {})", nets.len()))
            })?;
            Ok(ResolvedFault::Stuck { net: id, value: *value })
        }
        FaultSpec::BitFlip { register, bit, cycle } => {
            let id = find_cell(netlist, register, "register", |k| {
                matches!(k, CellKind::Register { .. })
            })?;
            let width = match &netlist.cell(id).kind {
                CellKind::Register { q, .. } => q.width(),
                _ => unreachable!("matched a register"),
            };
            if *bit >= width {
                return Err(fault_error(
                    register,
                    format!("bit {bit} out of range (width {width})"),
                ));
            }
            Ok(ResolvedFault::Flip { register: id, bit: *bit, cycle: *cycle })
        }
        FaultSpec::RamUpset { ram, addr, bit, cycle } => {
            let id = find_cell(netlist, ram, "ram", |k| matches!(k, CellKind::Ram { .. }))?;
            let (words, width) = match &netlist.cell(id).kind {
                CellKind::Ram { words, rdata, .. } => (*words, rdata.width()),
                _ => unreachable!("matched a ram"),
            };
            if *addr >= words {
                return Err(fault_error(
                    ram,
                    format!("address {addr} out of range ({words} words)"),
                ));
            }
            if *bit >= width {
                return Err(fault_error(ram, format!("bit {bit} out of range (width {width})")));
            }
            Ok(ResolvedFault::Ram { cell: id, addr: *addr, bit: *bit, cycle: *cycle })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s = b.carry_add("s", &x, &x, 9).unwrap();
        let q = b.register("q", &s).unwrap();
        let addr = b.constant(0, 2).unwrap();
        let gnd = b.gnd().unwrap();
        let rd = b.ram("m", 4, 9, &addr, &addr, &q, gnd).unwrap();
        b.output("o", &rd).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn resolves_ports_cells_registers_and_rams() {
        let n = sample();
        let stuck_port = resolve(&n, &FaultSpec::StuckAt { net: "x".into(), bit: 3, value: true });
        assert!(matches!(stuck_port, Ok(ResolvedFault::Stuck { value: true, .. })));
        let stuck_cell = resolve(&n, &FaultSpec::StuckAt { net: "s".into(), bit: 8, value: false });
        assert!(matches!(stuck_cell, Ok(ResolvedFault::Stuck { value: false, .. })));
        let flip = resolve(&n, &FaultSpec::BitFlip { register: "q".into(), bit: 0, cycle: 7 });
        assert!(matches!(flip, Ok(ResolvedFault::Flip { bit: 0, cycle: 7, .. })));
        let ram = resolve(&n, &FaultSpec::RamUpset { ram: "m".into(), addr: 3, bit: 8, cycle: 1 });
        assert!(matches!(ram, Ok(ResolvedFault::Ram { addr: 3, bit: 8, .. })));
    }

    #[test]
    fn bad_references_error_with_context() {
        let n = sample();
        let cases = [
            FaultSpec::StuckAt { net: "nope".into(), bit: 0, value: true },
            FaultSpec::StuckAt { net: "x".into(), bit: 8, value: true },
            FaultSpec::BitFlip { register: "s".into(), bit: 0, cycle: 0 },
            FaultSpec::BitFlip { register: "q".into(), bit: 9, cycle: 0 },
            FaultSpec::RamUpset { ram: "m".into(), addr: 4, bit: 0, cycle: 0 },
            FaultSpec::RamUpset { ram: "m".into(), addr: 0, bit: 9, cycle: 0 },
        ];
        for spec in cases {
            let err = resolve(&n, &spec).unwrap_err();
            assert!(matches!(err, Error::FaultTarget { .. }), "{spec} resolved to {err:?}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn specs_display_compactly() {
        let s = FaultSpec::StuckAt { net: "alpha_r".into(), bit: 2, value: true };
        assert_eq!(s.to_string(), "stuck-at-1 alpha_r[2]");
        let f = FaultSpec::BitFlip { register: "p7".into(), bit: 11, cycle: 40 };
        assert_eq!(f.to_string(), "bit-flip p7[11]@40");
        let r = FaultSpec::RamUpset { ram: "m".into(), addr: 2, bit: 5, cycle: 9 };
        assert_eq!(r.to_string(), "ram-upset m[2].5@9");
    }
}
