//! Crate-internal little-endian byte codec for portable snapshots.
//!
//! The partition runner's process-isolation mode ships engine
//! snapshots across address spaces (worker → supervisor at every
//! barrier, supervisor → respawned worker on rollback) and parks them
//! in a durable on-disk store. Both ends therefore need a stable byte
//! encoding of each backend's opaque snapshot struct. This module is
//! the shared plumbing: a bounds-checked reader and a plain writer
//! over the primitive shapes the two snapshot types are made of.
//! Field order is fixed by each snapshot's own `to_bytes`; versioning
//! and checksums live one layer up (a leading tag/version byte pair in
//! the snapshot encodings, CRC framing in the partition store).
//!
//! Decoding is strict: every length is bounds-checked before
//! allocation, booleans must be exactly 0 or 1, and the caller is
//! expected to reject trailing bytes via [`ByteReader::finish`]. A
//! malformed buffer yields [`Error::SnapshotDecode`], never a panic —
//! torn or corrupted store records must surface as typed errors.

use crate::error::{Error, Result};

/// Hard ceiling on any single decoded collection, so a corrupt length
/// prefix cannot request an absurd allocation before the bounds check
/// against the remaining buffer catches it.
const MAX_LEN: usize = 1 << 28;

/// Appends primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter::default()
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length prefix for a collection about to be written element-wise.
    pub(crate) fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("collection fits a u32 length"));
    }
}

/// Cursor over an encoded snapshot, with typed bounds-checked reads.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(detail: impl Into<String>) -> Error {
    Error::SnapshotDecode { detail: detail.into() }
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("need {n} bytes at offset {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("bool byte {other}"))),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("usize overflow"))
    }

    /// Reads a collection length prefix, rejecting lengths that cannot
    /// possibly fit in the remaining buffer (each element is at least
    /// `min_elem_bytes` wide).
    pub(crate) fn len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if n > MAX_LEN || floor > self.buf.len() - self.pos {
            return Err(bad(format!(
                "length {n} exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Rejects trailing garbage after the last expected field.
    pub(crate) fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.i64(-12345);
        w.usize(77);
        w.len(3);
        for byte in [4u8, 5, 6] {
            w.u8(byte);
        }
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -12345);
        assert_eq!(r.usize().unwrap(), 77);
        assert_eq!(r.len(1).unwrap(), 3);
        assert_eq!(r.u8().unwrap(), 4);
        assert_eq!(r.u8().unwrap(), 5);
        assert_eq!(r.u8().unwrap(), 6);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_bad_bools_and_absurd_lengths_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(Error::SnapshotDecode { .. })));

        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.bool(), Err(Error::SnapshotDecode { .. })));

        // A length prefix claiming more elements than bytes remain.
        let mut w = ByteWriter::new();
        w.len(1000);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.len(8), Err(Error::SnapshotDecode { .. })));

        // Trailing bytes are rejected.
        let r = ByteReader::new(&[0]);
        assert!(matches!(r.finish(), Err(Error::SnapshotDecode { .. })));
    }
}
