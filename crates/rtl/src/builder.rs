//! Fluent netlist construction.
//!
//! The builder allocates nets, emits cells, and wires buses. Wiring-only
//! operations — sign extension, shifts, slices — rearrange net ids and
//! emit no cells, so they are free in area and delay, exactly as in a
//! synthesized design.

use std::collections::BTreeMap;

use crate::cell::{tables, Cell, CellKind};
use crate::error::{Error, Result};
use crate::net::{Bus, NetId};
use crate::netlist::{Netlist, Port, PortDirection};

/// Incremental netlist builder.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_rtl::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 8)?;
/// let y = b.input("y", 8)?;
/// let sum = b.carry_add("sum", &x, &y, 9)?;
/// let q = b.register("q", &sum)?;
/// b.output("out", &q)?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.census().carry_adders, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    net_count: u32,
    ports: BTreeMap<String, Port>,
    constants: BTreeMap<(i64, usize), Bus>,
}

/// Handle for closing a register feedback loop created by
/// [`NetlistBuilder::register_loop`].
#[derive(Debug)]
pub struct LoopFeed {
    cell_index: usize,
}

/// Handle for closing a memory write-data loop created by
/// [`NetlistBuilder::ram_loop`].
#[derive(Debug)]
pub struct RamFeed {
    cell_index: usize,
}

impl RamFeed {
    /// Connects the memory's write-data bus to `src`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadWidth`] if `src` is not the memory's width.
    pub fn connect(self, builder: &mut NetlistBuilder, src: &Bus) -> Result<()> {
        let cell = &mut builder.cells[self.cell_index];
        if let CellKind::Ram { rdata, wdata, .. } = &mut cell.kind {
            if src.width() != rdata.width() {
                return Err(Error::BadWidth { width: src.width() });
            }
            *wdata = src.clone();
            Ok(())
        } else {
            unreachable!("RamFeed always points at a memory");
        }
    }
}

impl LoopFeed {
    /// Connects the register's data input to `src`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadWidth`] if `src` is not the register's width.
    pub fn connect(self, builder: &mut NetlistBuilder, src: &Bus) -> Result<()> {
        let cell = &mut builder.cells[self.cell_index];
        if let CellKind::Register { d, q } = &mut cell.kind {
            if src.width() != q.width() {
                return Err(Error::BadWidth { width: src.width() });
            }
            *d = src.clone();
            Ok(())
        } else {
            unreachable!("LoopFeed always points at a register");
        }
    }
}

impl NetlistBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    fn alloc(&mut self, width: usize) -> Result<Bus> {
        if width == 0 || width > Bus::MAX_WIDTH {
            return Err(Error::BadWidth { width });
        }
        let start = self.net_count;
        self.net_count += width as u32;
        Bus::new((start..self.net_count).map(NetId).collect())
    }

    fn add_port(&mut self, name: &str, direction: PortDirection, bus: Bus) -> Result<()> {
        if self.ports.contains_key(name) {
            return Err(Error::DuplicatePort { name: name.to_owned() });
        }
        self.ports.insert(name.to_owned(), Port { name: name.to_owned(), direction, bus });
        Ok(())
    }

    /// Declares a primary input bus.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicatePort`] or [`Error::BadWidth`].
    pub fn input(&mut self, name: &str, width: usize) -> Result<Bus> {
        let bus = self.alloc(width)?;
        self.add_port(name, PortDirection::Input, bus.clone())?;
        Ok(bus)
    }

    /// Declares a primary output observing an existing bus.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicatePort`] if the name is taken.
    pub fn output(&mut self, name: &str, bus: &Bus) -> Result<()> {
        self.add_port(name, PortDirection::Output, bus.clone())
    }

    /// A constant driver (deduplicated per value/width pair).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadWidth`] or [`Error::ValueOutOfRange`].
    pub fn constant(&mut self, value: i64, width: usize) -> Result<Bus> {
        if let Some(bus) = self.constants.get(&(value, width)) {
            return Ok(bus.clone());
        }
        let out = self.alloc(width)?;
        out.check_value(value)?;
        self.cells.push(Cell {
            name: format!("const_{value}_{width}"),
            kind: CellKind::Constant { value, out: out.clone() },
        });
        self.constants.insert((value, width), out.clone());
        Ok(out)
    }

    /// The constant-0 net.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates allocation errors.
    pub fn gnd(&mut self) -> Result<NetId> {
        Ok(self.constant(0, 1)?.bit(0))
    }

    /// The constant-1 net.
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates allocation errors.
    pub fn vcc(&mut self) -> Result<NetId> {
        Ok(self.constant(-1, 1)?.bit(0))
    }

    /// A register bank fed by `d`.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn register(&mut self, name: &str, d: &Bus) -> Result<Bus> {
        let q = self.alloc(d.width())?;
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::Register { d: d.clone(), q: q.clone() },
        });
        Ok(q)
    }

    /// A register whose data input will be connected later (for feedback
    /// loops). Until [`LoopFeed::connect`] is called the register holds
    /// its value (`d` aliases `q`).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn register_loop(&mut self, name: &str, width: usize) -> Result<(Bus, LoopFeed)> {
        let q = self.alloc(width)?;
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::Register { d: q.clone(), q: q.clone() },
        });
        Ok((q, LoopFeed { cell_index: self.cells.len() - 1 }))
    }

    /// Sign-extends `bus` to `width` by replicating its MSB net —
    /// wiring only ("the left bits from most significant bit of an
    /// operator are replicated in the MSB", Section 3.4).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadWidth`] if `width` is smaller than the bus.
    pub fn sign_extend(&self, bus: &Bus, width: usize) -> Result<Bus> {
        if width < bus.width() {
            return Err(Error::BadWidth { width });
        }
        let mut bits = bus.bits().to_vec();
        let msb = bus.msb();
        bits.resize(width, msb);
        Bus::new(bits)
    }

    /// Left shift by `k` bits (wiring; zero-fills with the ground net).
    /// The result is `k` bits wider than the input.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors for the ground constant.
    pub fn shift_left(&mut self, bus: &Bus, k: usize) -> Result<Bus> {
        let gnd = self.gnd()?;
        let mut bits = vec![gnd; k];
        bits.extend_from_slice(bus.bits());
        Bus::new(bits)
    }

    /// Arithmetic right shift by `k` bits (wiring; drops the low bits,
    /// the paper's ">>8" output adjustment).
    ///
    /// # Errors
    ///
    /// Never fails for `k < width`; returns the sign bit alone otherwise.
    pub fn shift_right_arith(&self, bus: &Bus, k: usize) -> Result<Bus> {
        if k >= bus.width() {
            return Bus::new(vec![bus.msb()]);
        }
        Bus::new(bus.bits()[k..].to_vec())
    }

    /// Truncates or sign-extends `bus` to exactly `width` bits (wiring).
    ///
    /// # Errors
    ///
    /// Propagates bus-construction errors.
    pub fn resize(&self, bus: &Bus, width: usize) -> Result<Bus> {
        if width <= bus.width() {
            Bus::new(bus.bits()[..width].to_vec())
        } else {
            self.sign_extend(bus, width)
        }
    }

    /// Behavioral signed adder on a fast-carry chain; operands are
    /// sign-extended to `width` and the result wraps modulo `2^width`.
    ///
    /// # Errors
    ///
    /// Propagates allocation and width errors.
    pub fn carry_add(&mut self, name: &str, a: &Bus, b: &Bus, width: usize) -> Result<Bus> {
        let a = self.resize(a, width)?;
        let b = self.resize(b, width)?;
        let out = self.alloc(width)?;
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::CarryAdd { a, b, out: out.clone() },
        });
        Ok(out)
    }

    /// Behavioral signed subtractor (`a - b`) on a fast-carry chain.
    ///
    /// # Errors
    ///
    /// Propagates allocation and width errors.
    pub fn carry_sub(&mut self, name: &str, a: &Bus, b: &Bus, width: usize) -> Result<Bus> {
        let a = self.resize(a, width)?;
        let b = self.resize(b, width)?;
        let out = self.alloc(width)?;
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::CarrySub { a, b, out: out.clone() },
        });
        Ok(out)
    }

    fn ripple(
        &mut self,
        name: &str,
        a: &Bus,
        b: &Bus,
        width: usize,
        invert_b: bool,
    ) -> Result<Bus> {
        let a = self.resize(a, width)?;
        let b = self.resize(b, width)?;
        let out = self.alloc(width)?;
        let carries = self.alloc(width)?; // cout of each stage
        let mut cin = if invert_b { self.vcc()? } else { self.gnd()? };
        for i in 0..width {
            self.cells.push(Cell {
                name: format!("{name}_fa{i}"),
                kind: CellKind::FullAdder {
                    a: a.bit(i),
                    b: b.bit(i),
                    cin,
                    sum: out.bit(i),
                    cout: carries.bit(i),
                    invert_b,
                },
            });
            cin = carries.bit(i);
        }
        Ok(out)
    }

    /// Structural signed adder built from full-adder cells (Section 3.4);
    /// no carry chain, so the mapper charges 2 LEs per bit.
    ///
    /// # Errors
    ///
    /// Propagates allocation and width errors.
    pub fn ripple_add(&mut self, name: &str, a: &Bus, b: &Bus, width: usize) -> Result<Bus> {
        self.ripple(name, a, b, width, false)
    }

    /// Structural signed subtractor (`a - b`) from full-adder cells with
    /// inverted `b` and carry-in 1.
    ///
    /// # Errors
    ///
    /// Propagates allocation and width errors.
    pub fn ripple_sub(&mut self, name: &str, a: &Bus, b: &Bus, width: usize) -> Result<Bus> {
        self.ripple(name, a, b, width, true)
    }

    /// Allocates one fresh net (for hand-wired bit-level structures
    /// such as carry-save arrays).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn alloc_net(&mut self) -> Result<NetId> {
        Ok(self.alloc(1)?.bit(0))
    }

    /// A raw structural full adder with explicit output nets (allocated
    /// via [`NetlistBuilder::alloc_net`]).
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for interface symmetry.
    pub fn full_adder(
        &mut self,
        name: &str,
        a: NetId,
        b: NetId,
        cin: NetId,
        sum: NetId,
        cout: NetId,
    ) -> Result<()> {
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::FullAdder { a, b, cin, sum, cout, invert_b: false },
        });
        Ok(())
    }

    /// A raw LUT cell.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyLutInputs`] for more than four inputs.
    pub fn lut(&mut self, name: &str, inputs: &[NetId], table: u16) -> Result<NetId> {
        if inputs.is_empty() || inputs.len() > 4 {
            return Err(Error::TooManyLutInputs { count: inputs.len() });
        }
        let out = self.alloc(1)?.bit(0);
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::Lut { inputs: inputs.to_vec(), table, output: out },
        });
        Ok(out)
    }

    /// Bitwise NOT via one LUT per bit.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn not(&mut self, name: &str, bus: &Bus) -> Result<Bus> {
        let mut bits = Vec::with_capacity(bus.width());
        for (i, &b) in bus.bits().iter().enumerate() {
            bits.push(self.lut(&format!("{name}_not{i}"), &[b], tables::NOT1)?);
        }
        Bus::new(bits)
    }

    /// A simple dual-port memory: asynchronous read (`rdata` follows
    /// `raddr`), synchronous write. Returns the read-data bus.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadWidth`] for a zero-word memory or propagates
    /// allocation errors.
    #[allow(clippy::too_many_arguments)] // one argument per memory port pin
    pub fn ram(
        &mut self,
        name: &str,
        words: usize,
        width: usize,
        raddr: &Bus,
        waddr: &Bus,
        wdata: &Bus,
        wen: NetId,
    ) -> Result<Bus> {
        if words == 0 {
            return Err(Error::BadWidth { width: 0 });
        }
        let rdata = self.alloc(width)?;
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::Ram {
                words,
                raddr: raddr.clone(),
                rdata: rdata.clone(),
                waddr: waddr.clone(),
                wdata: wdata.clone(),
                wen,
            },
        });
        Ok(rdata)
    }

    /// A dual-port memory whose write-data bus is connected later —
    /// for read-modify-write feedback loops (the memory analogue of
    /// [`NetlistBuilder::register_loop`]). Until connected, the memory
    /// rewrites each word with itself.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn ram_loop(
        &mut self,
        name: &str,
        words: usize,
        width: usize,
        raddr: &Bus,
        waddr: &Bus,
        wen: NetId,
    ) -> Result<(Bus, RamFeed)> {
        if words == 0 {
            return Err(Error::BadWidth { width: 0 });
        }
        let rdata = self.alloc(width)?;
        self.cells.push(Cell {
            name: name.to_owned(),
            kind: CellKind::Ram {
                words,
                raddr: raddr.clone(),
                rdata: rdata.clone(),
                waddr: waddr.clone(),
                wdata: rdata.clone(),
                wen,
            },
        });
        Ok((rdata, RamFeed { cell_index: self.cells.len() - 1 }))
    }

    /// Per-bit 2-to-1 multiplexer: `sel ? a : b` (operands padded to the
    /// wider width by sign extension).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn mux(&mut self, name: &str, sel: NetId, a: &Bus, b: &Bus) -> Result<Bus> {
        let width = a.width().max(b.width());
        let a = self.sign_extend(a, width)?;
        let b = self.sign_extend(b, width)?;
        let mut bits = Vec::with_capacity(width);
        for i in 0..width {
            // inputs: [sel, a_i, b_i]; out = sel ? a : b.
            // index bits: bit0 = sel, bit1 = a, bit2 = b.
            // sel=1 -> a: minterms where (sel&a): idx 3, 7; sel=0 -> b:
            // idx 4, 6.
            let table = 0b1101_1000;
            bits.push(self.lut(&format!("{name}_m{i}"), &[sel, a.bit(i), b.bit(i)], table)?);
        }
        Bus::new(bits)
    }

    /// Equality comparison against a constant: a single net that is high
    /// when `bus == value` (two's complement).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn eq_const(&mut self, name: &str, bus: &Bus, value: i64) -> Result<NetId> {
        // Per-bit match terms, then an AND tree.
        let mut terms = Vec::with_capacity(bus.width());
        for (i, &bit) in bus.bits().iter().enumerate() {
            let want = (value >> i) & 1 != 0;
            let table = if want { tables::BUF1 } else { tables::NOT1 };
            terms.push(self.lut(&format!("{name}_b{i}"), &[bit], table)?);
        }
        self.and_tree(name, &terms)
    }

    /// Equality comparison of two buses (sign-extended to the wider
    /// width): a single net that is high when they carry equal values.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn eq_bus(&mut self, name: &str, a: &Bus, b: &Bus) -> Result<NetId> {
        let width = a.width().max(b.width());
        let a = self.sign_extend(a, width)?;
        let b = self.sign_extend(b, width)?;
        let mut terms = Vec::with_capacity(width);
        for i in 0..width {
            // XNOR of the two bits.
            terms.push(self.lut(
                &format!("{name}_x{i}"),
                &[a.bit(i), b.bit(i)],
                !tables::XOR2 & 0xf,
            )?);
        }
        self.and_tree(name, &terms)
    }

    /// AND reduction of a set of nets (4-input LUT tree).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors; an empty input yields constant 1.
    pub fn and_tree(&mut self, name: &str, nets: &[NetId]) -> Result<NetId> {
        if nets.is_empty() {
            return self.vcc();
        }
        let mut level: Vec<NetId> = nets.to_vec();
        let mut depth = 0;
        while level.len() > 1 {
            depth += 1;
            let mut next = Vec::with_capacity(level.len().div_ceil(4));
            for (i, chunk) in level.chunks(4).enumerate() {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    // AND of up to 4 inputs: output 1 only when all
                    // selector bits are 1.
                    let table = 1u16 << ((1usize << chunk.len()) - 1);
                    next.push(self.lut(&format!("{name}_and{depth}_{i}"), chunk, table)?);
                }
            }
            level = next;
        }
        Ok(level[0])
    }

    /// OR reduction of a set of nets (4-input LUT tree).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors; an empty input yields constant 0.
    pub fn or_tree(&mut self, name: &str, nets: &[NetId]) -> Result<NetId> {
        if nets.is_empty() {
            return self.gnd();
        }
        let mut level: Vec<NetId> = nets.to_vec();
        let mut depth = 0;
        while level.len() > 1 {
            depth += 1;
            let mut next = Vec::with_capacity(level.len().div_ceil(4));
            for (i, chunk) in level.chunks(4).enumerate() {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    // OR of up to 4 inputs: 0 only when every bit is 0.
                    let table = (((1u32 << (1usize << chunk.len())) - 1) & !1) as u16;
                    next.push(self.lut(&format!("{name}_or{depth}_{i}"), chunk, table)?);
                }
            }
            level = next;
        }
        Ok(level[0])
    }

    /// XOR (parity) reduction of a set of nets (4-input LUT tree).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors; an empty input yields constant 0.
    pub fn xor_tree(&mut self, name: &str, nets: &[NetId]) -> Result<NetId> {
        if nets.is_empty() {
            return self.gnd();
        }
        let mut level: Vec<NetId> = nets.to_vec();
        let mut depth = 0;
        while level.len() > 1 {
            depth += 1;
            let mut next = Vec::with_capacity(level.len().div_ceil(4));
            for (i, chunk) in level.chunks(4).enumerate() {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    // Parity of up to 4 inputs: 1 where the index has an
                    // odd number of set bits.
                    let mut table = 0u16;
                    for idx in 0..(1u16 << chunk.len()) {
                        if idx.count_ones() % 2 == 1 {
                            table |= 1 << idx;
                        }
                    }
                    next.push(self.lut(&format!("{name}_xor{depth}_{i}"), chunk, table)?);
                }
            }
            level = next;
        }
        Ok(level[0])
    }

    /// Copies every cell of `other` into this netlist with fresh nets,
    /// connecting `other`'s input ports to the supplied buses; returns
    /// `other`'s output ports as buses in this netlist. Cell names are
    /// prefixed with `prefix`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if an input of `other` is missing
    /// from `connections`, or [`Error::BadWidth`] on width mismatch.
    pub fn instantiate(
        &mut self,
        other: &crate::netlist::Netlist,
        prefix: &str,
        connections: &BTreeMap<String, Bus>,
    ) -> Result<BTreeMap<String, Bus>> {
        use crate::netlist::PortDirection;

        // Map each of other's nets to a net here: input-port nets bind
        // to the provided buses, everything else gets a fresh net.
        let mut map: Vec<Option<NetId>> = vec![None; other.net_count()];
        for port in other.ports().values() {
            if port.direction == PortDirection::Input {
                let bound = connections
                    .get(&port.name)
                    .ok_or_else(|| Error::UnknownPort { name: port.name.clone() })?;
                if bound.width() != port.bus.width() {
                    return Err(Error::BadWidth { width: bound.width() });
                }
                for (inner, outer) in port.bus.bits().iter().zip(bound.bits()) {
                    map[inner.index()] = Some(*outer);
                }
            }
        }
        fn map_net(this: &mut NetlistBuilder, map: &mut [Option<NetId>], net: NetId) -> NetId {
            if let Some(mapped) = map[net.index()] {
                mapped
            } else {
                let fresh = NetId(this.net_count);
                this.net_count += 1;
                map[net.index()] = Some(fresh);
                fresh
            }
        }
        fn map_bus_fn(
            this: &mut NetlistBuilder,
            map: &mut [Option<NetId>],
            bus: &Bus,
        ) -> Result<Bus> {
            Bus::new(bus.bits().iter().map(|&n| map_net(this, map, n)).collect())
        }
        for cell in other.cells() {
            let kind = match &cell.kind {
                CellKind::Lut { inputs, table, output } => CellKind::Lut {
                    inputs: inputs.iter().map(|&n| map_net(self, &mut map, n)).collect(),
                    table: *table,
                    output: map_net(self, &mut map, *output),
                },
                CellKind::FullAdder { a, b, cin, sum, cout, invert_b } => CellKind::FullAdder {
                    a: map_net(self, &mut map, *a),
                    b: map_net(self, &mut map, *b),
                    cin: map_net(self, &mut map, *cin),
                    sum: map_net(self, &mut map, *sum),
                    cout: map_net(self, &mut map, *cout),
                    invert_b: *invert_b,
                },
                CellKind::CarryAdd { a, b, out } => CellKind::CarryAdd {
                    a: map_bus_fn(self, &mut map, a)?,
                    b: map_bus_fn(self, &mut map, b)?,
                    out: map_bus_fn(self, &mut map, out)?,
                },
                CellKind::CarrySub { a, b, out } => CellKind::CarrySub {
                    a: map_bus_fn(self, &mut map, a)?,
                    b: map_bus_fn(self, &mut map, b)?,
                    out: map_bus_fn(self, &mut map, out)?,
                },
                CellKind::Register { d, q } => CellKind::Register {
                    d: map_bus_fn(self, &mut map, d)?,
                    q: map_bus_fn(self, &mut map, q)?,
                },
                CellKind::Constant { value, out } => {
                    CellKind::Constant { value: *value, out: map_bus_fn(self, &mut map, out)? }
                }
                CellKind::Ram { words, raddr, rdata, waddr, wdata, wen } => CellKind::Ram {
                    words: *words,
                    raddr: map_bus_fn(self, &mut map, raddr)?,
                    rdata: map_bus_fn(self, &mut map, rdata)?,
                    waddr: map_bus_fn(self, &mut map, waddr)?,
                    wdata: map_bus_fn(self, &mut map, wdata)?,
                    wen: map_net(self, &mut map, *wen),
                },
            };
            self.cells.push(Cell { name: format!("{prefix}{}", cell.name), kind });
        }

        let mut outputs = BTreeMap::new();
        for port in other.ports().values() {
            if port.direction == PortDirection::Output {
                outputs.insert(port.name.clone(), map_bus_fn(self, &mut map, &port.bus)?);
            }
        }
        Ok(outputs)
    }

    /// Number of cells emitted so far.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Validates and seals the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found (multiple drivers,
    /// undriven nets, combinational loops).
    pub fn finish(self) -> Result<Netlist> {
        Netlist::validate(self.cells, self.net_count, self.ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_port_rejected() {
        let mut b = NetlistBuilder::new();
        b.input("x", 4).unwrap();
        assert_eq!(b.input("x", 4).unwrap_err(), Error::DuplicatePort { name: "x".into() });
    }

    #[test]
    fn zero_width_rejected() {
        let mut b = NetlistBuilder::new();
        assert!(b.input("x", 0).is_err());
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut b = NetlistBuilder::new();
        let c1 = b.constant(5, 4).unwrap();
        let c2 = b.constant(5, 4).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(b.cell_count(), 1);
    }

    #[test]
    fn constant_out_of_range_rejected() {
        let mut b = NetlistBuilder::new();
        assert!(b.constant(8, 4).is_err());
    }

    #[test]
    fn sign_extension_is_wiring() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let before = b.cell_count();
        let y = b.sign_extend(&x, 8).unwrap();
        assert_eq!(b.cell_count(), before);
        assert_eq!(y.width(), 8);
        assert_eq!(y.bit(7), x.bit(3));
        assert_eq!(y.bit(4), x.bit(3));
    }

    #[test]
    fn shifts_are_wiring() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let l = b.shift_left(&x, 2).unwrap();
        assert_eq!(l.width(), 6);
        assert_eq!(l.bit(2), x.bit(0));
        let r = b.shift_right_arith(&x, 2).unwrap();
        assert_eq!(r.width(), 2);
        assert_eq!(r.bit(0), x.bit(2));
        let all = b.shift_right_arith(&x, 7).unwrap();
        assert_eq!(all.width(), 1);
        assert_eq!(all.bit(0), x.bit(3));
    }

    #[test]
    fn ripple_adder_emits_width_cells() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let s = b.ripple_add("s", &x, &y, 9).unwrap();
        b.output("o", &s).unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.census().full_adders, 9);
    }

    #[test]
    fn lut_input_limit() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 5).unwrap();
        let bits: Vec<NetId> = x.bits().to_vec();
        assert!(b.lut("bad", &bits, 0).is_err());
        assert!(b.lut("ok", &bits[..4], 0xffff).is_ok());
    }

    #[test]
    fn undriven_net_detected() {
        // An output observing an unallocated... not constructible through
        // the builder; instead check a register loop left dangling is ok
        // (d aliases q) and the netlist still validates.
        let mut b = NetlistBuilder::new();
        let (q, _feed) = b.register_loop("r", 4).unwrap();
        b.output("o", &q).unwrap();
        assert!(b.finish().is_ok());
    }
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn ram_write_then_read() {
        let mut b = NetlistBuilder::new();
        let raddr = b.input("raddr", 4).unwrap();
        let waddr = b.input("waddr", 4).unwrap();
        let wdata = b.input("wdata", 8).unwrap();
        let wen = b.input("wen", 1).unwrap();
        let rdata = b.ram("mem", 16, 8, &raddr, &waddr, &wdata, wen.bit(0)).unwrap();
        b.output("rdata", &rdata).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();

        // Write 42 to address 3: the write port samples at the edge, so
        // the inputs must be settled before the tick that commits them.
        sim.set_input("waddr", 3).unwrap();
        sim.set_input("wdata", 42).unwrap();
        sim.set_input("wen", -1).unwrap();
        sim.set_input("raddr", 3).unwrap();
        sim.settle();
        sim.tick();
        assert_eq!(sim.peek("rdata").unwrap(), 42);

        // Read another address: combinational read follows raddr.
        sim.set_input("wen", 0).unwrap();
        sim.set_input("raddr", 5).unwrap();
        sim.tick();
        assert_eq!(sim.peek("rdata").unwrap(), 0);
        sim.set_input("raddr", 3).unwrap();
        sim.tick();
        assert_eq!(sim.peek("rdata").unwrap(), 42);
    }

    #[test]
    fn ram_poke_and_peek() {
        // Address buses carry unsigned values, so they are declared one
        // bit wider than the word-count needs.
        let mut b = NetlistBuilder::new();
        let raddr = b.input("raddr", 4).unwrap();
        let gnd_bus = b.constant(0, 4).unwrap();
        let zero8 = b.constant(0, 8).unwrap();
        let gnd = b.gnd().unwrap();
        let rdata = b.ram("mem", 8, 8, &raddr, &gnd_bus, &zero8, gnd).unwrap();
        b.output("rdata", &rdata).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();

        sim.poke_ram("mem", 6, -77).unwrap();
        assert_eq!(sim.peek_ram("mem", 6).unwrap(), -77);
        sim.set_input("raddr", 6).unwrap();
        sim.tick();
        assert_eq!(sim.peek("rdata").unwrap(), -77);
        assert!(sim.poke_ram("mem", 99, 0).is_err());
        assert!(sim.peek_ram("nope", 0).is_err());
    }

    #[test]
    fn ram_feedback_loop_is_legal() {
        // read -> +1 -> write back to the same address: a synchronous
        // memory loop must not be flagged as combinational.
        let mut b = NetlistBuilder::new();
        let addr = b.input("addr", 3).unwrap();
        let one = b.constant(1, 8).unwrap();
        let vcc = b.vcc().unwrap();
        let (rdata, feed) = b.ram_loop("mem", 8, 8, &addr, &addr, vcc).unwrap();
        let inc = b.carry_add("inc", &rdata, &one, 8).unwrap();
        feed.connect(&mut b, &inc).unwrap();
        b.output("value", &rdata).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("addr", 2).unwrap();
        sim.settle(); // propagate the address before the first edge
        for expected in 1..=5 {
            sim.tick();
            assert_eq!(sim.peek_ram("mem", 2).unwrap(), expected);
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = NetlistBuilder::new();
        let sel = b.input("sel", 1).unwrap();
        let a = b.input("a", 6).unwrap();
        let c = b.input("b", 6).unwrap();
        let out = b.mux("m", sel.bit(0), &a, &c).unwrap();
        b.output("o", &out).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("a", 13).unwrap();
        sim.set_input("b", -7).unwrap();
        sim.set_input("sel", -1).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), 13);
        sim.set_input("sel", 0).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), -7);
    }

    #[test]
    fn eq_const_detects_exact_value() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 7).unwrap();
        let hit = b.eq_const("cmp", &x, 37).unwrap();
        b.output("hit", &Bus::from(hit)).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        for v in [0i64, 36, 37, 38, -37, 63] {
            sim.set_input("x", v).unwrap();
            sim.settle();
            assert_eq!(sim.peek("hit").unwrap() != 0, v == 37, "v={v}");
        }
    }

    #[test]
    fn and_tree_wide_reduction() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 11).unwrap();
        let bits: Vec<NetId> = x.bits().to_vec();
        let all = b.and_tree("t", &bits).unwrap();
        b.output("all", &Bus::from(all)).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", -1).unwrap(); // all ones
        sim.settle();
        assert_eq!(sim.peek("all").unwrap(), -1);
        sim.set_input("x", -2).unwrap(); // bit 0 low
        sim.settle();
        assert_eq!(sim.peek("all").unwrap(), 0);
    }

    #[test]
    fn instantiate_embeds_a_subcircuit() {
        // Child: doubler with a register.
        let mut child = NetlistBuilder::new();
        let x = child.input("x", 8).unwrap();
        let d = child.carry_add("dbl", &x, &x, 9).unwrap();
        let q = child.register("q", &d).unwrap();
        child.output("y", &q).unwrap();
        let child = child.finish().unwrap();

        // Parent: two instances in series.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let out1 = b.instantiate(&child, "u1_", &[("x".to_owned(), x)].into()).unwrap();
        let y1 = b.resize(&out1["y"], 8).unwrap();
        let out2 = b.instantiate(&child, "u2_", &[("x".to_owned(), y1)].into()).unwrap();
        b.output("y", &out2["y"]).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", 11).unwrap();
        sim.tick(); // input reaches u1's register
        sim.tick(); // u1 output reaches u2's register
        sim.tick();
        assert_eq!(sim.peek("y").unwrap(), 44);
    }

    #[test]
    fn instantiate_missing_connection_errors() {
        let mut child = NetlistBuilder::new();
        let x = child.input("x", 8).unwrap();
        child.output("y", &x).unwrap();
        let child = child.finish().unwrap();
        let mut b = NetlistBuilder::new();
        assert!(matches!(
            b.instantiate(&child, "u_", &BTreeMap::new()),
            Err(Error::UnknownPort { .. })
        ));
    }
}
