//! Graphviz DOT export of netlists, for visual inspection of the
//! generated architectures, with an overlay mode that paints lint
//! findings onto the graph.

use std::fmt::Write as _;

use crate::cell::CellKind;
use crate::netlist::{Netlist, PortDirection};

/// A node to highlight in [`render_with_diagnostics`]: the node id is a
/// cell name, or `port:NAME` for a port node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotHighlight {
    /// Node to paint: a cell name, or `port:NAME`.
    pub node: String,
    /// Short note appended to the node label (e.g. a lint rule id).
    pub note: String,
}

/// Escapes a string for use inside a double-quoted DOT id or label.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the netlist as a DOT digraph: one node per cell (shaped by
/// kind) and per port, one edge per cell-to-cell connection (collapsed
/// per bus, labelled with the bit count).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_rtl::builder::NetlistBuilder;
/// use dwt_rtl::dot::to_dot;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 4)?;
/// let s = b.carry_add("s", &x, &x, 5)?;
/// b.output("o", &s)?;
/// let dot = to_dot(&b.finish()?);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"s\""));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(netlist: &Netlist) -> String {
    render(netlist, &[])
}

/// Like [`to_dot`], but paints the given nodes red and appends each
/// highlight's note to its label — used to visualise `dwt-lint`
/// findings directly on the netlist graph.
#[must_use]
pub fn render_with_diagnostics(netlist: &Netlist, highlights: &[DotHighlight]) -> String {
    render(netlist, highlights)
}

fn render(netlist: &Netlist, highlights: &[DotHighlight]) -> String {
    let notes_for = |node: &str| -> Vec<&str> {
        highlights.iter().filter(|h| h.node == node).map(|h| h.note.as_str()).collect()
    };
    let mut out = String::from("digraph netlist {\n  rankdir=LR;\n  node [fontsize=9];\n");

    // Port nodes.
    for port in netlist.ports().values() {
        let shape = match port.direction {
            PortDirection::Input => "invhouse",
            PortDirection::Output => "house",
        };
        let id = format!("port:{}", port.name);
        let notes = notes_for(&id);
        let mut label = format!("{}[{}]", port.name, port.bus.width());
        for note in &notes {
            label.push('\n');
            label.push_str(note);
        }
        let color = if notes.is_empty() { "lightblue" } else { "red" };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\", shape={shape}, style=filled, fillcolor={color}];",
            escape(&id),
            escape(&label),
        );
    }

    // Cell nodes.
    for cell in netlist.cells() {
        let (shape, color) = match &cell.kind {
            CellKind::Lut { .. } => ("box", "white"),
            CellKind::FullAdder { .. } => ("box", "lightyellow"),
            CellKind::CarryAdd { .. } | CellKind::CarrySub { .. } => ("box", "khaki"),
            CellKind::Register { .. } => ("box", "lightgrey"),
            CellKind::Constant { .. } => ("plaintext", "white"),
            CellKind::Ram { .. } => ("box3d", "lightgreen"),
        };
        let notes = notes_for(&cell.name);
        if notes.is_empty() {
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, style=filled, fillcolor={color}];",
                escape(&cell.name)
            );
        } else {
            let mut label = cell.name.clone();
            for note in &notes {
                label.push('\n');
                label.push_str(note);
            }
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{}\", shape={shape}, style=filled, fillcolor=red];",
                escape(&cell.name),
                escape(&label),
            );
        }
    }

    // Edges, collapsed per (source cell/port, sink cell) with bit counts.
    let mut edges: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    let source_name = |net| -> String {
        match netlist.driver(net) {
            Some(d) => netlist.cell(d).name.clone(),
            None => {
                for port in netlist.ports().values() {
                    if port.direction == PortDirection::Input && port.bus.bits().contains(&net) {
                        return format!("port:{}", port.name);
                    }
                }
                "(floating)".to_owned()
            }
        }
    };
    for cell in netlist.cells() {
        for net in cell.kind.input_nets() {
            *edges.entry((source_name(net), cell.name.clone())).or_insert(0) += 1;
        }
    }
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            for &net in port.bus.bits() {
                *edges.entry((source_name(net), format!("port:{}", port.name))).or_insert(0) += 1;
            }
        }
    }
    for ((from, to), bits) in edges {
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [label=\"{bits}\"];", escape(&from), escape(&to));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let s = b.carry_add("sum", &x, &x, 5).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn contains_all_nodes() {
        let dot = to_dot(&sample());
        for name in ["port:x", "port:o", "\"sum\"", "\"q\""] {
            assert!(dot.contains(name), "missing {name} in:\n{dot}");
        }
    }

    #[test]
    fn edges_carry_bit_counts() {
        let dot = to_dot(&sample());
        // x feeds sum through both sign-extended operands: 2 x 5 bit
        // connections (the MSB net is replicated by the extension).
        assert!(dot.contains("\"port:x\" -> \"sum\" [label=\"10\"]"), "{dot}");
        assert!(dot.contains("\"sum\" -> \"q\" [label=\"5\"]"));
    }

    #[test]
    fn is_valid_dot_shape() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("digraph").count(), 1);
    }

    #[test]
    fn names_are_escaped() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 2).unwrap();
        let q = b.register("q\"evil\\", &x).unwrap();
        b.output("o", &q).unwrap();
        let dot = to_dot(&b.finish().unwrap());
        assert!(dot.contains("\"q\\\"evil\\\\\""), "{dot}");
        // No raw (unescaped) quote survives inside the node id.
        assert!(!dot.contains("\"q\"evil"), "{dot}");
    }

    #[test]
    fn diagnostics_paint_nodes_red() {
        let n = sample();
        let dot = render_with_diagnostics(
            &n,
            &[DotHighlight { node: "sum".to_owned(), note: "L003 truncating add".to_owned() }],
        );
        assert!(dot.contains("fillcolor=red"), "{dot}");
        assert!(dot.contains("L003 truncating add"), "{dot}");
        // Unhighlighted nodes keep their normal styling.
        assert!(dot.contains("\"q\" [shape=box, style=filled, fillcolor=lightgrey]"));
    }

    #[test]
    fn no_red_without_findings() {
        let dot = render_with_diagnostics(&sample(), &[]);
        assert!(!dot.contains("fillcolor=red"));
        assert_eq!(dot, to_dot(&sample()));
    }
}
