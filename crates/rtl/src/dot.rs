//! Graphviz DOT export of netlists, for visual inspection of the
//! generated architectures.

use std::fmt::Write as _;

use crate::cell::CellKind;
use crate::netlist::{Netlist, PortDirection};

/// Renders the netlist as a DOT digraph: one node per cell (shaped by
/// kind) and per port, one edge per cell-to-cell connection (collapsed
/// per bus, labelled with the bit count).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_rtl::builder::NetlistBuilder;
/// use dwt_rtl::dot::to_dot;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 4)?;
/// let s = b.carry_add("s", &x, &x, 5)?;
/// b.output("o", &s)?;
/// let dot = to_dot(&b.finish()?);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("\"s\""));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::from("digraph netlist {\n  rankdir=LR;\n  node [fontsize=9];\n");

    // Port nodes.
    for port in netlist.ports().values() {
        let shape = match port.direction {
            PortDirection::Input => "invhouse",
            PortDirection::Output => "house",
        };
        let _ = writeln!(
            out,
            "  \"port:{}\" [label=\"{}[{}]\", shape={shape}, style=filled, fillcolor=lightblue];",
            port.name,
            port.name,
            port.bus.width()
        );
    }

    // Cell nodes.
    for cell in netlist.cells() {
        let (shape, color) = match &cell.kind {
            CellKind::Lut { .. } => ("box", "white"),
            CellKind::FullAdder { .. } => ("box", "lightyellow"),
            CellKind::CarryAdd { .. } | CellKind::CarrySub { .. } => ("box", "khaki"),
            CellKind::Register { .. } => ("box", "lightgrey"),
            CellKind::Constant { .. } => ("plaintext", "white"),
            CellKind::Ram { .. } => ("box3d", "lightgreen"),
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, style=filled, fillcolor={color}];",
            cell.name
        );
    }

    // Edges, collapsed per (source cell/port, sink cell) with bit counts.
    let mut edges: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    let source_name = |net| -> String {
        match netlist.driver(net) {
            Some(d) => netlist.cell(d).name.clone(),
            None => {
                for port in netlist.ports().values() {
                    if port.direction == PortDirection::Input && port.bus.bits().contains(&net) {
                        return format!("port:{}", port.name);
                    }
                }
                "(floating)".to_owned()
            }
        }
    };
    for cell in netlist.cells() {
        for net in cell.kind.input_nets() {
            *edges
                .entry((source_name(net), cell.name.clone()))
                .or_insert(0) += 1;
        }
    }
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            for &net in port.bus.bits() {
                *edges
                    .entry((source_name(net), format!("port:{}", port.name)))
                    .or_insert(0) += 1;
            }
        }
    }
    for ((from, to), bits) in edges {
        let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [label=\"{bits}\"];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let s = b.carry_add("sum", &x, &x, 5).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn contains_all_nodes() {
        let dot = to_dot(&sample());
        for name in ["port:x", "port:o", "\"sum\"", "\"q\""] {
            assert!(dot.contains(name), "missing {name} in:\n{dot}");
        }
    }

    #[test]
    fn edges_carry_bit_counts() {
        let dot = to_dot(&sample());
        // x feeds sum through both sign-extended operands: 2 x 5 bit
        // connections (the MSB net is replicated by the extension).
        assert!(dot.contains("\"port:x\" -> \"sum\" [label=\"10\"]"), "{dot}");
        assert!(dot.contains("\"sum\" -> \"q\" [label=\"5\"]"));
    }

    #[test]
    fn is_valid_dot_shape() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("digraph").count(), 1);
    }
}
