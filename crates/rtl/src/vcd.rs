//! Minimal VCD (value change dump) waveform writer.
//!
//! Records the value of selected buses once per clock cycle so netlist
//! activity can be inspected in GTKWave or any other VCD viewer.

use std::io::{self, Write};

use crate::net::Bus;
use crate::sim::Simulator;

/// Collects per-cycle samples of named buses and serialises them as VCD.
#[derive(Debug, Clone, Default)]
pub struct VcdRecorder {
    signals: Vec<(String, Bus)>,
    /// One row per cycle, one value per signal.
    samples: Vec<Vec<i64>>,
}

impl VcdRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        VcdRecorder::default()
    }

    /// Adds a bus to record under the given signal name.
    pub fn watch(&mut self, name: &str, bus: Bus) {
        self.signals.push((name.to_owned(), bus));
    }

    /// Adds every port of the simulator's netlist.
    pub fn watch_ports(&mut self, sim: &Simulator) {
        for (name, port) in sim.netlist().ports() {
            self.watch(name, port.bus.clone());
        }
    }

    /// Samples all watched buses at the current simulation state. Call
    /// once per clock cycle, after [`Simulator::tick`].
    pub fn sample(&mut self, sim: &Simulator) {
        let row = self.signals.iter().map(|(_, bus)| sim.read_bus(bus)).collect();
        self.samples.push(row);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Writes the recording as a VCD document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "$date reproduction run $end")?;
        writeln!(w, "$version dwt-rtl vcd writer $end")?;
        writeln!(w, "$timescale 1 ns $end")?;
        writeln!(w, "$scope module dwt $end")?;
        for (i, (name, bus)) in self.signals.iter().enumerate() {
            writeln!(w, "$var wire {} {} {} $end", bus.width(), ident(i), name)?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;

        let mut last: Vec<Option<i64>> = vec![None; self.signals.len()];
        for (t, row) in self.samples.iter().enumerate() {
            writeln!(w, "#{t}")?;
            for (i, (&v, (_, bus))) in row.iter().zip(&self.signals).enumerate() {
                if last[i] != Some(v) {
                    writeln!(w, "b{} {}", to_bin(v, bus.width()), ident(i))?;
                    last[i] = Some(v);
                }
            }
        }
        Ok(())
    }
}

/// VCD short identifier for signal `i` (printable ASCII, base-94).
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Two's-complement binary image of `v` over `width` bits, MSB first.
fn to_bin(v: i64, width: usize) -> String {
    (0..width).rev().map(|i| if (v >> i) & 1 != 0 { '1' } else { '0' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn records_and_serialises() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let s = b.carry_add("s", &x, &x, 5).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();

        let mut rec = VcdRecorder::new();
        rec.watch_ports(&sim);
        for v in [1, 2, 3] {
            sim.set_input("x", v).unwrap();
            sim.tick();
            rec.sample(&sim);
        }
        assert_eq!(rec.len(), 3);
        assert!(!rec.is_empty());

        let mut out = Vec::new();
        rec.write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("#0"));
        assert!(text.contains("#2"));
    }

    #[test]
    fn binary_images() {
        assert_eq!(to_bin(5, 4), "0101");
        assert_eq!(to_bin(-1, 4), "1111");
        assert_eq!(to_bin(-8, 4), "1000");
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let id = ident(i);
            assert!(id.chars().all(|c| c.is_ascii_graphic()));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn only_changes_are_emitted() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        b.output("o", &x).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        let mut rec = VcdRecorder::new();
        rec.watch("x", sim.netlist().port("x").unwrap().bus.clone());
        for v in [3, 3, 3, 5] {
            sim.set_input("x", v).unwrap();
            sim.tick();
            rec.sample(&sim);
        }
        let mut out = Vec::new();
        rec.write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let changes = text.lines().filter(|l| l.starts_with('b')).count();
        assert_eq!(changes, 2, "{text}");
    }
}
