//! Levelized, bit-sliced compiled simulation backend.
//!
//! [`Program::compile`] lowers a validated [`Netlist`] into a
//! straight-line sequence of word operations over a flat register file
//! of `u64` words, one word per single-bit net, ordered by the
//! netlist's combinational topological order (its *levelization*). One
//! pass over the program recomputes every combinational net from the
//! current register/input values — no event queue, no per-event
//! dispatch.
//!
//! Evaluation is **bit-sliced**: bit `l` of every word belongs to an
//! independent sample stream, so a single pass advances [`LANES`] (64)
//! lanes at once. Structural cells lower directly to bitwise ops (a
//! full adder is two ops: XOR3 for the sum, MAJ3 for the carry);
//! behavioral word adders ([`CellKind::CarryAdd`] / `CarrySub`) lower
//! to a ripple chain of the same two ops per bit, which computes the
//! identical modulo-2^width two's-complement result the event-driven
//! simulator produces.
//!
//! [`CompiledEngine`] wraps a program with the architectural state
//! (net words, RAM bit-planes, staged inputs, armed faults) and
//! implements [`Engine`], making it a drop-in replacement for
//! [`sim::Simulator`](crate::sim::Simulator) wherever glitch/activity
//! fidelity is not needed. At every cycle boundary its lane-0 values
//! are bit-exact with the event-driven simulator's settled values; the
//! deliberate differences are documented on [`CompiledEngine`].

use crate::cell::{tables, Cell, CellKind};
use crate::engine::{Engine, EngineCaps};
use crate::fault::{self, FaultSpec, ResolvedFault};
use crate::net::{bits_to_signed, signed_to_bits, Bus, NetId};
use crate::netlist::{CellId, Netlist, PortDirection};
use crate::snapbytes::{ByteReader, ByteWriter};
use crate::{Error, Result};

/// Independent sample streams packed into each machine word.
pub const LANES: usize = 64;

/// All lanes set.
const ALL: u64 = !0;

/// One word operation of a compiled program. `dst`/operand fields are
/// slot indices into the flat word file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    /// Broadcast a constant bit to every lane of `dst`.
    Const { dst: u32, ones: bool },
    /// `dst = a`.
    Copy { dst: u32, a: u32 },
    /// `dst = !a`.
    Not { dst: u32, a: u32 },
    /// `dst = a & b`.
    And { dst: u32, a: u32, b: u32 },
    /// `dst = a | b`.
    Or { dst: u32, a: u32, b: u32 },
    /// `dst = a ^ b`.
    Xor { dst: u32, a: u32, b: u32 },
    /// Full-adder sum: `dst = a ^ (b ^ invert_b) ^ cin`.
    FaSum { dst: u32, a: u32, b: u32, cin: u32, invert_b: bool },
    /// Full-adder carry: `dst = majority(a, b ^ invert_b, cin)`.
    FaCarry { dst: u32, a: u32, b: u32, cin: u32, invert_b: bool },
    /// Generic ≤4-input LUT: sum of minterms over the set table bits.
    Lut { dst: u32, inputs: Box<[u32]>, table: u16 },
    /// Asynchronous read of RAM port `port` (decode + mux per lane).
    RamRead { port: u32 },
}

/// Register slots: where to capture D from and where Q lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RegSlots {
    pub(crate) cell: CellId,
    /// Offset of this register's bits in the capture scratch buffer.
    pub(crate) offset: usize,
    pub(crate) d: Vec<u32>,
    pub(crate) q: Vec<u32>,
}

/// RAM port slots and geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RamSlots {
    pub(crate) cell: CellId,
    pub(crate) words: usize,
    pub(crate) width: usize,
    pub(crate) raddr: Vec<u32>,
    pub(crate) rdata: Vec<u32>,
    pub(crate) waddr: Vec<u32>,
    pub(crate) wdata: Vec<u32>,
    pub(crate) wen: u32,
}

/// A netlist lowered to a levelized straight-line word program.
///
/// The schedule is computed once per design; every
/// [`CompiledEngine::try_tick`] replays it in order. Slots `0..nets`
/// mirror the netlist's nets; higher slots hold ripple-carry
/// temporaries and the two constant words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub(crate) ops: Vec<Op>,
    /// Total word-file size (nets + constants + temporaries).
    pub(crate) slots: usize,
    /// Slot permanently holding all-zeros.
    pub(crate) zero: u32,
    /// Slot permanently holding all-ones.
    pub(crate) one: u32,
    pub(crate) regs: Vec<RegSlots>,
    pub(crate) rams: Vec<RamSlots>,
    /// Combinational depth: the longest chain of dependent cells.
    levels: usize,
    /// Total register bits (capture-buffer size).
    pub(crate) reg_bits: usize,
}

impl Program {
    /// Lowers a validated netlist into a compiled program.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedProgram`] when the lowering pass finds
    /// an internal inconsistency — in practice only possible for
    /// netlists that bypassed validation.
    pub fn compile(netlist: &Netlist) -> Result<Program> {
        let nets = netlist.net_count();
        let mut ops = Vec::new();
        let mut next_slot = nets as u32;
        let mut alloc = || {
            let s = next_slot;
            next_slot += 1;
            s
        };
        let zero = alloc();
        let one = alloc();

        // Per-cell combinational level, for the depth report.
        let mut level = vec![0u32; netlist.cell_count()];
        let mut levels = 0usize;

        for &id in netlist.topo_order() {
            let kind = &netlist.cell(id).kind;
            let lvl = kind
                .comb_input_nets()
                .iter()
                .filter_map(|&n| netlist.driver(n))
                .filter(|&d| netlist.cell(d).kind.is_combinational())
                .map(|d| level[d.index()])
                .max()
                .unwrap_or(0)
                + 1;
            level[id.index()] = lvl;
            levels = levels.max(lvl as usize);

            match kind {
                CellKind::Constant { value, out } => {
                    for (i, &b) in signed_to_bits(*value, out.width()).iter().enumerate() {
                        ops.push(Op::Const { dst: slot(out.bit(i)), ones: b });
                    }
                }
                CellKind::Lut { inputs, table, output } => {
                    ops.push(lower_lut(inputs, *table, slot(*output)));
                }
                CellKind::FullAdder { a, b, cin, sum, cout, invert_b } => {
                    let (a, b, cin) = (slot(*a), slot(*b), slot(*cin));
                    ops.push(Op::FaSum { dst: slot(*sum), a, b, cin, invert_b: *invert_b });
                    ops.push(Op::FaCarry { dst: slot(*cout), a, b, cin, invert_b: *invert_b });
                }
                CellKind::CarryAdd { a, b, out } => {
                    lower_ripple(&mut ops, a, b, out, false, zero, &mut alloc);
                }
                CellKind::CarrySub { a, b, out } => {
                    lower_ripple(&mut ops, a, b, out, true, one, &mut alloc);
                }
                CellKind::Ram { .. } => {
                    // RamSlots are collected below; emit the read op at
                    // this cell's place in the schedule.
                    ops.push(Op::RamRead { port: 0 }); // port fixed up below
                }
                CellKind::Register { .. } => {}
            }
        }

        // Number RAM ports in schedule order and collect their slots.
        let mut rams = Vec::new();
        for op in &mut ops {
            if let Op::RamRead { port } = op {
                *port = rams.len() as u32;
                // Find the matching Ram cell: the n-th Ram in topo order.
                let cell = netlist
                    .topo_order()
                    .iter()
                    .copied()
                    .filter(|&id| matches!(netlist.cell(id).kind, CellKind::Ram { .. }))
                    .nth(rams.len())
                    .ok_or_else(|| Error::MalformedProgram {
                        detail: format!(
                            "RamRead op {} has no matching Ram cell in the schedule",
                            rams.len()
                        ),
                    })?;
                if let CellKind::Ram { words, raddr, rdata, waddr, wdata, wen } =
                    &netlist.cell(cell).kind
                {
                    rams.push(RamSlots {
                        cell,
                        words: *words,
                        width: rdata.width(),
                        raddr: bus_slots(raddr),
                        rdata: bus_slots(rdata),
                        waddr: bus_slots(waddr),
                        wdata: bus_slots(wdata),
                        wen: slot(*wen),
                    });
                }
            }
        }

        let mut regs = Vec::new();
        let mut reg_bits = 0usize;
        for &id in netlist.registers() {
            if let CellKind::Register { d, q } = &netlist.cell(id).kind {
                regs.push(RegSlots {
                    cell: id,
                    offset: reg_bits,
                    d: bus_slots(d),
                    q: bus_slots(q),
                });
                reg_bits += d.width();
            }
        }

        Ok(Program { ops, slots: next_slot as usize, zero, one, regs, rams, levels, reg_bits })
    }

    /// Word operations executed per pass.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Word-file size (nets + constants + ripple temporaries).
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.slots
    }

    /// Combinational depth of the schedule (longest dependent-cell
    /// chain — the levelization depth).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Back-translates the compiled program into a validated netlist.
    ///
    /// Every word slot becomes a net: slots `0..nets` keep the source
    /// netlist's net ids (so ports and register names carry over
    /// unchanged), the two constant slots become [`CellKind::Constant`]
    /// drivers, and ripple-carry temporaries become fresh single-bit
    /// nets. Each op lowers to the cell computing exactly that op —
    /// generic ops become LUTs whose truth table is evaluated from the
    /// op semantics, RAM reads copy the source RAM cell verbatim.
    ///
    /// The result is what the interpreter *actually executes*, expressed
    /// back in the netlist IR, which lets `dwt-equiv` prove the lowering
    /// correct against the source netlist instead of sampling it.
    ///
    /// # Errors
    ///
    /// [`Error::SnapshotMismatch`] if `source` is not the netlist this
    /// program was compiled from (net/cell counts differ), or a
    /// validation error if the program somehow encodes a broken graph
    /// (never expected for [`Program::compile`] output).
    pub fn to_netlist(&self, source: &Netlist) -> Result<Netlist> {
        if source.net_count() != self.zero as usize
            || self.regs.iter().any(|r| r.cell.index() >= source.cell_count())
        {
            return Err(Error::SnapshotMismatch {
                snapshot_nets: self.zero as usize,
                simulator_nets: source.net_count(),
                snapshot_cells: self.regs.len(),
                simulator_cells: source.cell_count(),
            });
        }
        let net = |s: u32| NetId(s);
        let one_bit = |s: u32| Bus::new(vec![net(s)]);
        let mut cells = Vec::with_capacity(self.ops.len() + self.regs.len() + 2);
        cells.push(Cell {
            name: "bt_zero".into(),
            kind: CellKind::Constant { value: 0, out: one_bit(self.zero)? },
        });
        cells.push(Cell {
            name: "bt_one".into(),
            kind: CellKind::Constant { value: -1, out: one_bit(self.one)? },
        });
        for (i, op) in self.ops.iter().enumerate() {
            let (name, kind) = match *op {
                Op::Const { dst, ones } => (
                    format!("bt{i}"),
                    CellKind::Constant { value: if ones { -1 } else { 0 }, out: one_bit(dst)? },
                ),
                Op::Copy { dst, a } => (
                    format!("bt{i}"),
                    CellKind::Lut { inputs: vec![net(a)], table: tables::BUF1, output: net(dst) },
                ),
                Op::Not { dst, a } => (
                    format!("bt{i}"),
                    CellKind::Lut { inputs: vec![net(a)], table: tables::NOT1, output: net(dst) },
                ),
                Op::And { dst, a, b } => (
                    format!("bt{i}"),
                    CellKind::Lut {
                        inputs: vec![net(a), net(b)],
                        table: tables::AND2,
                        output: net(dst),
                    },
                ),
                Op::Or { dst, a, b } => (
                    format!("bt{i}"),
                    CellKind::Lut {
                        inputs: vec![net(a), net(b)],
                        table: tables::OR2,
                        output: net(dst),
                    },
                ),
                Op::Xor { dst, a, b } => (
                    format!("bt{i}"),
                    CellKind::Lut {
                        inputs: vec![net(a), net(b)],
                        table: tables::XOR2,
                        output: net(dst),
                    },
                ),
                Op::FaSum { dst, a, b, cin, invert_b } => (
                    format!("bt{i}"),
                    CellKind::Lut {
                        inputs: vec![net(a), net(b), net(cin)],
                        table: fa_table(invert_b, false),
                        output: net(dst),
                    },
                ),
                Op::FaCarry { dst, a, b, cin, invert_b } => (
                    format!("bt{i}"),
                    CellKind::Lut {
                        inputs: vec![net(a), net(b), net(cin)],
                        table: fa_table(invert_b, true),
                        output: net(dst),
                    },
                ),
                Op::Lut { dst, ref inputs, table } => (
                    format!("bt{i}"),
                    CellKind::Lut {
                        inputs: inputs.iter().map(|&s| net(s)).collect(),
                        table,
                        output: net(dst),
                    },
                ),
                Op::RamRead { port } => {
                    // The op implements exactly the source RAM cell's
                    // read port; the write port commits in the register
                    // phase, as in the source. Copy the cell verbatim.
                    let cell = source.cell(self.rams[port as usize].cell);
                    (cell.name.clone(), cell.kind.clone())
                }
            };
            cells.push(Cell { name, kind });
        }
        for reg in &self.regs {
            let d = Bus::new(reg.d.iter().map(|&s| net(s)).collect())?;
            let q = Bus::new(reg.q.iter().map(|&s| net(s)).collect())?;
            cells.push(Cell {
                name: source.cell(reg.cell).name.clone(),
                kind: CellKind::Register { d, q },
            });
        }
        Netlist::validate(cells, self.slots as u32, source.ports().clone())
    }
}

/// Truth table of a full-adder sum (`carry == false`) or carry
/// (`carry == true`) op over inputs `[a, b, cin]` (input 0 = least
/// significant selector bit), honoring the op's `invert_b` flag.
fn fa_table(invert_b: bool, carry: bool) -> u16 {
    let mut table = 0u16;
    for m in 0u16..8 {
        let a = m & 1 != 0;
        let b = ((m >> 1) & 1 != 0) ^ invert_b;
        let c = (m >> 2) & 1 != 0;
        let out = if carry { (a & b) | (a & c) | (b & c) } else { a ^ b ^ c };
        if out {
            table |= 1 << m;
        }
    }
    table
}

/// Slot index of a net.
pub(crate) fn slot(net: NetId) -> u32 {
    net.index() as u32
}

/// Slot indices of a bus, LSB first.
fn bus_slots(bus: &Bus) -> Vec<u32> {
    bus.bits().iter().map(|&n| slot(n)).collect()
}

/// Specializes a LUT to a dedicated op where the table matches a
/// common function; anything else falls back to the generic
/// minterm-sum op.
fn lower_lut(inputs: &[NetId], table: u16, dst: u32) -> Op {
    let s: Vec<u32> = inputs.iter().map(|&n| slot(n)).collect();
    match (s.as_slice(), table) {
        (&[a], 0b10) => Op::Copy { dst, a },
        (&[a], 0b01) => Op::Not { dst, a },
        (&[_], 0b00) => Op::Const { dst, ones: false },
        (&[_], 0b11) => Op::Const { dst, ones: true },
        (&[a, b], 0b1000) => Op::And { dst, a, b },
        (&[a, b], 0b1110) => Op::Or { dst, a, b },
        (&[a, b], 0b0110) => Op::Xor { dst, a, b },
        (&[a, b, c], 0b1001_0110) => Op::FaSum { dst, a, b, cin: c, invert_b: false },
        (&[a, b, c], 0b1110_1000) => Op::FaCarry { dst, a, b, cin: c, invert_b: false },
        _ => Op::Lut { dst, inputs: s.into_boxed_slice(), table },
    }
}

/// Lowers a behavioral word adder/subtractor to a ripple chain of
/// full-adder ops. With `invert_b` and carry-in 1 (the `one` constant
/// slot) this computes `a - b`; both wrap modulo 2^width exactly like
/// the event-driven simulator's word evaluation.
fn lower_ripple(
    ops: &mut Vec<Op>,
    a: &Bus,
    b: &Bus,
    out: &Bus,
    invert_b: bool,
    cin0: u32,
    alloc: &mut impl FnMut() -> u32,
) {
    let width = out.width();
    let mut cin = cin0;
    for i in 0..width {
        let (ai, bi) = (slot(a.bit(i)), slot(b.bit(i)));
        ops.push(Op::FaSum { dst: slot(out.bit(i)), a: ai, b: bi, cin, invert_b });
        if i + 1 < width {
            let carry = alloc();
            ops.push(Op::FaCarry { dst: carry, a: ai, b: bi, cin, invert_b });
            cin = carry;
        }
    }
}

/// A staged input write, applied at the next tick/settle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StagedInput {
    /// One value broadcast to every lane.
    Broadcast(Bus, i64),
    /// One value into a single lane.
    Lane(Bus, usize, i64),
    /// Per-lane values for lanes `0..values.len()`.
    Lanes(Bus, Vec<i64>),
}

/// Complete architectural state of a [`CompiledEngine`]: net words,
/// RAM bit-planes, staged inputs, armed faults and the cycle counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSnapshot {
    nets: usize,
    cells: usize,
    words: Vec<u64>,
    ram: Vec<Vec<u64>>,
    staged: Vec<StagedInput>,
    stuck: Vec<(u32, bool)>,
    flips: Vec<(CellId, usize, u64)>,
    ram_upsets: Vec<(CellId, usize, usize, u64)>,
    cycle: u64,
}

impl CompiledSnapshot {
    /// The clock cycle at which the snapshot was taken.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether any fault (stuck-at clamp, pending flip or RAM upset)
    /// is armed in the snapshot.
    #[must_use]
    pub fn has_armed_faults(&self) -> bool {
        !self.stuck.is_empty() || !self.flips.is_empty() || !self.ram_upsets.is_empty()
    }
}

/// Leading tag byte of a serialized compiled snapshot (`'C'`).
const SNAPSHOT_TAG: u8 = b'C';
/// Encoding version; bump on any field/layout change.
const SNAPSHOT_VERSION: u8 = 1;

fn write_bus(w: &mut ByteWriter, bus: &Bus) {
    w.len(bus.width());
    for &net in bus.bits() {
        w.u32(net.index() as u32);
    }
}

fn read_bus(r: &mut ByteReader<'_>) -> Result<Bus> {
    let width = r.len(4)?;
    let mut bits = Vec::with_capacity(width);
    for _ in 0..width {
        bits.push(NetId(r.u32()?));
    }
    Bus::new(bits).map_err(|e| Error::SnapshotDecode { detail: format!("bad bus: {e}") })
}

impl crate::engine::PortableSnapshot for CompiledSnapshot {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(SNAPSHOT_TAG);
        w.u8(SNAPSHOT_VERSION);
        w.usize(self.nets);
        w.usize(self.cells);
        w.len(self.words.len());
        for &word in &self.words {
            w.u64(word);
        }
        w.len(self.ram.len());
        for planes in &self.ram {
            w.len(planes.len());
            for &word in planes {
                w.u64(word);
            }
        }
        w.len(self.staged.len());
        for staged in &self.staged {
            match staged {
                StagedInput::Broadcast(bus, value) => {
                    w.u8(0);
                    write_bus(&mut w, bus);
                    w.i64(*value);
                }
                StagedInput::Lane(bus, lane, value) => {
                    w.u8(1);
                    write_bus(&mut w, bus);
                    w.usize(*lane);
                    w.i64(*value);
                }
                StagedInput::Lanes(bus, values) => {
                    w.u8(2);
                    write_bus(&mut w, bus);
                    w.len(values.len());
                    for &v in values {
                        w.i64(v);
                    }
                }
            }
        }
        w.len(self.stuck.len());
        for &(net, value) in &self.stuck {
            w.u32(net);
            w.bool(value);
        }
        w.len(self.flips.len());
        for &(cell, bit, cycle) in &self.flips {
            w.u32(cell.index() as u32);
            w.usize(bit);
            w.u64(cycle);
        }
        w.len(self.ram_upsets.len());
        for &(cell, addr, bit, cycle) in &self.ram_upsets {
            w.u32(cell.index() as u32);
            w.usize(addr);
            w.usize(bit);
            w.u64(cycle);
        }
        w.u64(self.cycle);
        w.finish()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.u8()?;
        if tag != SNAPSHOT_TAG {
            return Err(Error::SnapshotDecode {
                detail: format!("tag {tag:#04x} is not a compiled snapshot"),
            });
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::SnapshotDecode {
                detail: format!("unsupported snapshot version {version}"),
            });
        }
        let nets = r.usize()?;
        let cells = r.usize()?;
        let mut words = Vec::with_capacity(r.len(8)?);
        for _ in 0..words.capacity() {
            words.push(r.u64()?);
        }
        let mut ram = Vec::with_capacity(r.len(4)?);
        for _ in 0..ram.capacity() {
            let mut planes = Vec::with_capacity(r.len(8)?);
            for _ in 0..planes.capacity() {
                planes.push(r.u64()?);
            }
            ram.push(planes);
        }
        let mut staged = Vec::with_capacity(r.len(5)?);
        for _ in 0..staged.capacity() {
            let entry = match r.u8()? {
                0 => {
                    let bus = read_bus(&mut r)?;
                    StagedInput::Broadcast(bus, r.i64()?)
                }
                1 => {
                    let bus = read_bus(&mut r)?;
                    let lane = r.usize()?;
                    StagedInput::Lane(bus, lane, r.i64()?)
                }
                2 => {
                    let bus = read_bus(&mut r)?;
                    let mut values = Vec::with_capacity(r.len(8)?);
                    for _ in 0..values.capacity() {
                        values.push(r.i64()?);
                    }
                    StagedInput::Lanes(bus, values)
                }
                other => {
                    return Err(Error::SnapshotDecode {
                        detail: format!("bad staged-input tag {other}"),
                    })
                }
            };
            staged.push(entry);
        }
        let mut stuck = Vec::with_capacity(r.len(5)?);
        for _ in 0..stuck.capacity() {
            let net = r.u32()?;
            let value = r.bool()?;
            stuck.push((net, value));
        }
        let mut flips = Vec::with_capacity(r.len(20)?);
        for _ in 0..flips.capacity() {
            let cell = CellId(r.u32()?);
            let bit = r.usize()?;
            let due = r.u64()?;
            flips.push((cell, bit, due));
        }
        let mut ram_upsets = Vec::with_capacity(r.len(28)?);
        for _ in 0..ram_upsets.capacity() {
            let cell = CellId(r.u32()?);
            let addr = r.usize()?;
            let bit = r.usize()?;
            let due = r.u64()?;
            ram_upsets.push((cell, addr, bit, due));
        }
        let cycle = r.u64()?;
        r.finish()?;
        Ok(CompiledSnapshot { nets, cells, words, ram, staged, stuck, flips, ram_upsets, cycle })
    }
}

/// The levelized bit-sliced simulation backend.
///
/// Advances [`LANES`] independent sample streams per tick; scalar
/// [`Engine`] verbs broadcast writes to every lane and read lane 0, so
/// any code written against the event-driven simulator behaves
/// identically here. The per-lane verbs
/// ([`set_input_lane`](CompiledEngine::set_input_lane),
/// [`peek_lane`](CompiledEngine::peek_lane),
/// [`peek_lanes`](CompiledEngine::peek_lanes)) expose the parallelism.
///
/// Deliberate differences from [`sim::Simulator`](crate::sim::Simulator):
///
/// * **No glitch model / activity statistics.** Each cycle is one
///   functional pass in topological order; intermediate transitions of
///   the event model never exist, so there is nothing to count. Use
///   the event-driven backend for power work.
/// * **No divergence detection.** The program is straight-line; it
///   cannot oscillate, so `set_event_cap` is a no-op and
///   `SimulationDiverged` is never reported.
/// * **Stuck-at decay after [`clear_faults`](Engine::clear_faults).**
///   The event-driven simulator leaves a formerly-clamped net at its
///   forced level until its driver re-fires; the compiled backend
///   recomputes every net each pass, so cleared nets heal at the next
///   tick/settle.
///
/// Injected faults apply to **all lanes** (the same clamp masks and
/// transient XORs are word-wide), which is exactly what differential
/// campaigns want: one engine, 64 identically-faulted trials.
#[derive(Debug, Clone)]
pub struct CompiledEngine {
    netlist: Netlist,
    program: Program,
    words: Vec<u64>,
    /// Per-RAM bit-plane storage: `ram[r][word * width + bit]`.
    ram: Vec<Vec<u64>>,
    /// Register-capture buffer reused across ticks.
    scratch: Vec<u64>,
    staged: Vec<StagedInput>,
    /// Per-slot clamp masks (`AND` then `OR`); identity unless stuck.
    and_mask: Vec<u64>,
    or_mask: Vec<u64>,
    has_stuck: bool,
    stuck: Vec<(u32, bool)>,
    flips: Vec<(CellId, usize, u64)>,
    ram_upsets: Vec<(CellId, usize, usize, u64)>,
    cycle: u64,
}

impl CompiledEngine {
    /// Compiles and power-cycles an engine for a validated netlist:
    /// registers and RAM zeroed in every lane, combinational logic
    /// settled.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedProgram`] if lowering finds an
    /// internal inconsistency — unreachable for netlists that passed
    /// validation at build time.
    pub fn new(netlist: Netlist) -> Result<Self> {
        let program = Program::compile(&netlist)?;
        let slots = program.slots;
        let mut engine = CompiledEngine {
            words: vec![0; slots],
            ram: program.rams.iter().map(|r| vec![0; r.words * r.width]).collect(),
            scratch: Vec::with_capacity(program.reg_bits),
            staged: Vec::new(),
            and_mask: vec![ALL; slots],
            or_mask: vec![0; slots],
            has_stuck: false,
            stuck: Vec::new(),
            flips: Vec::new(),
            ram_upsets: Vec::new(),
            cycle: 0,
            program,
            netlist,
        };
        engine.words[engine.program.one as usize] = ALL;
        engine.eval_pass::<false>();
        Ok(engine)
    }

    /// The compiled schedule (for depth/size reports).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Stages a value on an input port for one lane only; other lanes
    /// keep their current bits.
    ///
    /// # Errors
    ///
    /// Same port/range validation as [`Engine::set_input`]; rejects
    /// `lane >=` [`LANES`].
    pub fn set_input_lane(&mut self, name: &str, lane: usize, value: i64) -> Result<()> {
        let bus = self.input_bus(name, value)?;
        check_lane(lane)?;
        self.staged.push(StagedInput::Lane(bus, lane, value));
        Ok(())
    }

    /// Stages per-lane values on an input port: `values[l]` goes to
    /// lane `l`. Accepts 1 to [`LANES`] values; lanes beyond
    /// `values.len()` keep their current bits.
    ///
    /// # Errors
    ///
    /// Same validation as [`Engine::set_input`] applied to every
    /// value; rejects empty or oversized value slices.
    pub fn set_input_lanes(&mut self, name: &str, values: &[i64]) -> Result<()> {
        if values.is_empty() || values.len() > LANES {
            return Err(Error::FaultTarget {
                target: name.to_owned(),
                detail: format!("expected 1..={LANES} lane values, got {}", values.len()),
            });
        }
        let port = self.netlist.port(name)?;
        if port.direction != PortDirection::Input {
            return Err(Error::UnknownPort { name: name.to_owned() });
        }
        for &v in values {
            port.bus.check_value(v)?;
        }
        let bus = port.bus.clone();
        self.staged.push(StagedInput::Lanes(bus, values.to_vec()));
        Ok(())
    }

    /// Reads the settled value of a port in one lane.
    ///
    /// # Errors
    ///
    /// Unknown port, or `lane >=` [`LANES`].
    pub fn peek_lane(&self, name: &str, lane: usize) -> Result<i64> {
        check_lane(lane)?;
        let port = self.netlist.port(name)?;
        Ok(self.read_bus_lane(&port.bus, lane))
    }

    /// Reads the settled value of a port in every lane.
    ///
    /// # Errors
    ///
    /// Unknown port.
    pub fn peek_lanes(&self, name: &str) -> Result<Vec<i64>> {
        let port = self.netlist.port(name)?;
        Ok((0..LANES).map(|l| self.read_bus_lane(&port.bus, l)).collect())
    }

    /// Signed value of a bus in one lane.
    fn read_bus_lane(&self, bus: &Bus, lane: usize) -> i64 {
        let bits: Vec<bool> =
            bus.bits().iter().map(|&n| (self.words[n.index()] >> lane) & 1 == 1).collect();
        bits_to_signed(&bits)
    }

    /// Validates an input-port write and returns the target bus.
    fn input_bus(&self, name: &str, value: i64) -> Result<Bus> {
        let port = self.netlist.port(name)?;
        if port.direction != PortDirection::Input {
            return Err(Error::UnknownPort { name: name.to_owned() });
        }
        port.bus.check_value(value)?;
        Ok(port.bus.clone())
    }

    /// Applies staged input writes into the word file.
    fn apply_staged<const CLAMPED: bool>(&mut self) {
        let staged = std::mem::take(&mut self.staged);
        for input in staged {
            match input {
                StagedInput::Broadcast(bus, value) => {
                    for (i, &b) in signed_to_bits(value, bus.width()).iter().enumerate() {
                        let w = if b { ALL } else { 0 };
                        self.store::<CLAMPED>(slot(bus.bit(i)), w);
                    }
                }
                StagedInput::Lane(bus, lane, value) => {
                    self.write_lanes::<CLAMPED>(&bus, lane, &[value]);
                }
                StagedInput::Lanes(bus, values) => {
                    self.write_lanes::<CLAMPED>(&bus, 0, &values);
                }
            }
        }
    }

    /// Writes `values[k]` into lane `first + k` of a bus.
    fn write_lanes<const CLAMPED: bool>(&mut self, bus: &Bus, first: usize, values: &[i64]) {
        for (i, &net) in bus.bits().iter().enumerate() {
            let s = slot(net);
            let mut w = self.words[s as usize];
            for (k, &v) in values.iter().enumerate() {
                let m = 1u64 << (first + k);
                w = (w & !m) | ((((v >> i) as u64) & 1) << (first + k));
            }
            self.store::<CLAMPED>(s, w);
        }
    }

    /// Writes a word to a slot, through the stuck-at clamp masks when
    /// `CLAMPED`.
    #[inline]
    fn store<const CLAMPED: bool>(&mut self, dst: u32, v: u64) {
        let i = dst as usize;
        self.words[i] = if CLAMPED { (v & self.and_mask[i]) | self.or_mask[i] } else { v };
    }

    /// One full pass over the compiled schedule: recomputes every
    /// combinational net (all 64 lanes) from registers and inputs.
    fn eval_pass<const CLAMPED: bool>(&mut self) {
        let CompiledEngine { program, words, ram, and_mask, or_mask, .. } = self;
        macro_rules! store {
            ($dst:expr, $v:expr) => {{
                let i = $dst as usize;
                let v = $v;
                words[i] = if CLAMPED { (v & and_mask[i]) | or_mask[i] } else { v };
            }};
        }
        macro_rules! w {
            ($s:expr) => {
                words[$s as usize]
            };
        }
        for op in &program.ops {
            match *op {
                Op::Const { dst, ones } => store!(dst, if ones { ALL } else { 0 }),
                Op::Copy { dst, a } => store!(dst, w!(a)),
                Op::Not { dst, a } => store!(dst, !w!(a)),
                Op::And { dst, a, b } => store!(dst, w!(a) & w!(b)),
                Op::Or { dst, a, b } => store!(dst, w!(a) | w!(b)),
                Op::Xor { dst, a, b } => store!(dst, w!(a) ^ w!(b)),
                Op::FaSum { dst, a, b, cin, invert_b } => {
                    let b = if invert_b { !w!(b) } else { w!(b) };
                    store!(dst, w!(a) ^ b ^ w!(cin));
                }
                Op::FaCarry { dst, a, b, cin, invert_b } => {
                    let a = w!(a);
                    let b = if invert_b { !w!(b) } else { w!(b) };
                    let c = w!(cin);
                    store!(dst, (a & b) | (a & c) | (b & c));
                }
                Op::Lut { dst, ref inputs, table } => {
                    let mut out = 0u64;
                    for m in 0..(1u32 << inputs.len()) {
                        if table & (1u16 << m) != 0 {
                            let mut term = ALL;
                            for (i, &inp) in inputs.iter().enumerate() {
                                let v = w!(inp);
                                term &= if (m >> i) & 1 == 1 { v } else { !v };
                            }
                            out |= term;
                        }
                    }
                    store!(dst, out);
                }
                Op::RamRead { port } => {
                    let r = &program.rams[port as usize];
                    let mut acc = [0u64; 64];
                    for wd in 0..r.words {
                        let mut dec = ALL;
                        for (i, &a) in r.raddr.iter().enumerate() {
                            let v = w!(a);
                            dec &= if (wd >> i) & 1 == 1 { v } else { !v };
                            if dec == 0 {
                                break;
                            }
                        }
                        if dec == 0 {
                            continue;
                        }
                        let plane = &ram[port as usize][wd * r.width..(wd + 1) * r.width];
                        for (j, &p) in plane.iter().enumerate() {
                            acc[j] |= dec & p;
                        }
                    }
                    for (j, &d) in r.rdata.iter().enumerate() {
                        store!(d, acc[j]);
                    }
                }
            }
        }
    }

    /// One clock edge; mirrors the event-driven simulator's edge
    /// ordering exactly (RAM upsets strike storage, registers capture
    /// the settled pre-upset read data, transient flips hit the
    /// captured bits, RAM writes commit from settled values, then Q
    /// and staged inputs apply and the combinational pass settles).
    fn step<const CLAMPED: bool>(&mut self) {
        let now = self.cycle;

        // 0. Due RAM upsets strike the array (every lane).
        let mut due_ram = Vec::new();
        self.ram_upsets.retain(|&u| {
            if u.3 == now {
                due_ram.push(u);
                false
            } else {
                true
            }
        });
        for (cell, addr, bit, _) in due_ram {
            if let Some(idx) = self.program.rams.iter().position(|r| r.cell == cell) {
                let width = self.program.rams[idx].width;
                self.ram[idx][addr * width + bit] ^= ALL;
            }
        }

        // 1. Capture register D from the settled state.
        self.scratch.clear();
        for reg in &self.program.regs {
            for &d in &reg.d {
                self.scratch.push(self.words[d as usize]);
            }
        }

        // 1a. Due transient flips strike the captured bits.
        let mut due_flips = Vec::new();
        self.flips.retain(|&f| {
            if f.2 == now {
                due_flips.push(f);
                false
            } else {
                true
            }
        });
        for (cell, bit, _) in due_flips {
            if let Some(reg) = self.program.regs.iter().find(|r| r.cell == cell) {
                self.scratch[reg.offset + bit] ^= ALL;
            }
        }

        // 1b. Commit RAM writes from the settled (pre-edge) values.
        for idx in 0..self.program.rams.len() {
            let r = &self.program.rams[idx];
            let wen = self.words[r.wen as usize];
            if wen == 0 {
                continue;
            }
            for wd in 0..r.words {
                let mut sel = wen;
                for (i, &a) in r.waddr.iter().enumerate() {
                    let v = self.words[a as usize];
                    sel &= if (wd >> i) & 1 == 1 { v } else { !v };
                    if sel == 0 {
                        break;
                    }
                }
                if sel == 0 {
                    continue;
                }
                for j in 0..r.width {
                    let data = self.words[r.wdata[j] as usize];
                    let plane = &mut self.ram[idx][wd * r.width + j];
                    *plane = (*plane & !sel) | (data & sel);
                }
            }
        }

        // 2. Q and staged inputs apply together.
        {
            let CompiledEngine { program, words, scratch, and_mask, or_mask, .. } = &mut *self;
            let mut k = 0usize;
            for reg in &program.regs {
                for &q in &reg.q {
                    let i = q as usize;
                    let v = scratch[k];
                    k += 1;
                    words[i] = if CLAMPED { (v & and_mask[i]) | or_mask[i] } else { v };
                }
            }
        }
        self.apply_staged::<CLAMPED>();

        // 3. Settle.
        self.eval_pass::<CLAMPED>();
        self.cycle += 1;
    }

    /// Rebuilds the clamp masks from the stuck list.
    fn rebuild_masks(&mut self) {
        self.and_mask.iter_mut().for_each(|m| *m = ALL);
        self.or_mask.iter_mut().for_each(|m| *m = 0);
        for &(net, value) in &self.stuck {
            if value {
                self.or_mask[net as usize] = ALL;
            } else {
                self.and_mask[net as usize] = 0;
            }
        }
        self.has_stuck = !self.stuck.is_empty();
    }
}

/// Validates a lane index.
fn check_lane(lane: usize) -> Result<()> {
    if lane >= LANES {
        return Err(Error::FaultTarget {
            target: format!("lane {lane}"),
            detail: format!("engine has {LANES} lanes"),
        });
    }
    Ok(())
}

impl Engine for CompiledEngine {
    type Snapshot = CompiledSnapshot;

    fn from_netlist(netlist: Netlist) -> Result<Self> {
        CompiledEngine::new(netlist)
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "compiled",
            lanes: LANES,
            activity_stats: false,
            glitch_model: false,
            divergence_detection: false,
            native_codegen: false,
            fault_stuck_at: true,
            fault_bit_flip: true,
            fault_ram_upset: true,
        }
    }

    fn set_input(&mut self, name: &str, value: i64) -> Result<()> {
        let bus = self.input_bus(name, value)?;
        self.staged.push(StagedInput::Broadcast(bus, value));
        Ok(())
    }

    fn try_tick(&mut self) -> Result<()> {
        if self.has_stuck {
            self.step::<true>();
        } else {
            self.step::<false>();
        }
        Ok(())
    }

    fn try_settle(&mut self) -> Result<()> {
        if self.has_stuck {
            self.apply_staged::<true>();
            self.eval_pass::<true>();
        } else {
            self.apply_staged::<false>();
            self.eval_pass::<false>();
        }
        Ok(())
    }

    fn peek(&self, name: &str) -> Result<i64> {
        CompiledEngine::peek_lane(self, name, 0)
    }

    fn set_input_lanes(&mut self, name: &str, values: &[i64]) -> Result<()> {
        CompiledEngine::set_input_lanes(self, name, values)
    }

    fn peek_lane(&self, name: &str, lane: usize) -> Result<i64> {
        CompiledEngine::peek_lane(self, name, lane)
    }

    fn peek_lanes(&self, name: &str) -> Result<Vec<i64>> {
        CompiledEngine::peek_lanes(self, name)
    }

    fn snapshot(&self) -> CompiledSnapshot {
        CompiledSnapshot {
            nets: self.netlist.net_count(),
            cells: self.netlist.cell_count(),
            words: self.words.clone(),
            ram: self.ram.clone(),
            staged: self.staged.clone(),
            stuck: self.stuck.clone(),
            flips: self.flips.clone(),
            ram_upsets: self.ram_upsets.clone(),
            cycle: self.cycle,
        }
    }

    fn restore(&mut self, snapshot: &CompiledSnapshot) -> Result<()> {
        if snapshot.nets != self.netlist.net_count() || snapshot.cells != self.netlist.cell_count()
        {
            return Err(Error::SnapshotMismatch {
                snapshot_nets: snapshot.nets,
                simulator_nets: self.netlist.net_count(),
                snapshot_cells: snapshot.cells,
                simulator_cells: self.netlist.cell_count(),
            });
        }
        self.words.clone_from(&snapshot.words);
        self.ram.clone_from(&snapshot.ram);
        self.staged.clone_from(&snapshot.staged);
        self.stuck.clone_from(&snapshot.stuck);
        self.flips.clone_from(&snapshot.flips);
        self.ram_upsets.clone_from(&snapshot.ram_upsets);
        self.cycle = snapshot.cycle;
        self.rebuild_masks();
        Ok(())
    }

    fn inject(&mut self, spec: &FaultSpec) -> Result<()> {
        match fault::resolve(&self.netlist, spec)? {
            ResolvedFault::Stuck { net, value } => {
                let s = slot(net);
                match self.stuck.iter_mut().find(|(n, _)| *n == s) {
                    Some(entry) => entry.1 = value,
                    None => self.stuck.push((s, value)),
                }
                self.rebuild_masks();
                // Force the net now and re-settle downstream logic.
                self.store::<true>(s, self.words[s as usize]);
                self.eval_pass::<true>();
            }
            ResolvedFault::Flip { register, bit, cycle } => {
                self.flips.push((register, bit, cycle));
            }
            ResolvedFault::Ram { cell, addr, bit, cycle } => {
                self.ram_upsets.push((cell, addr, bit, cycle));
            }
        }
        Ok(())
    }

    fn clear_faults(&mut self) {
        self.stuck.clear();
        self.flips.clear();
        self.ram_upsets.clear();
        self.rebuild_masks();
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn set_event_cap(&mut self, _cap: u64) {
        // Straight-line programs cannot diverge; nothing to bound.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;

    /// A netlist exercising every lowered cell class: behavioral
    /// word add/sub, structural ripple logic, specialized and generic
    /// LUTs (mux, eq, parity tree), registers and constants.
    fn mixed_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let sum = b.carry_add("sum", &x, &y, 10).unwrap();
        let dif = b.carry_sub("dif", &x, &y, 10).unwrap();
        let rs = b.register("rs", &sum).unwrap();
        let rd = b.register("rd", &dif).unwrap();
        let rip = b.ripple_add("rip", &rs, &rd, 11).unwrap();
        let sel = b.eq_const("sel", &x, 3).unwrap();
        let rs_w = b.sign_extend(&rs, 11).unwrap();
        let m = b.mux("m", sel, &rip, &rs_w).unwrap();
        let par = b.xor_tree("par", m.bits()).unwrap();
        b.output("s", &m).unwrap();
        b.output("p", &Bus::new(vec![par]).unwrap()).unwrap();
        b.finish().unwrap()
    }

    /// Write port + read port around a 4-word RAM; the 3-bit signed
    /// address inputs can point past the last word (negative values
    /// read back as high unsigned addresses), covering the
    /// out-of-range read/write path.
    fn ram_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let raddr = b.input("raddr", 3).unwrap();
        let waddr = b.input("waddr", 3).unwrap();
        let wdata = b.input("wdata", 6).unwrap();
        let wen = b.input("wen", 1).unwrap();
        let rdata = b.ram("m", 4, 6, &raddr, &waddr, &wdata, wen.bit(0)).unwrap();
        b.output("rdata", &rdata).unwrap();
        b.finish().unwrap()
    }

    /// Tiny deterministic generator so tests need no external RNG.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % (hi - lo + 1) as u64) as i64
        }
    }

    /// Drives both backends in lockstep and compares the named output
    /// ports every cycle.
    fn lockstep(
        netlist: Netlist,
        inputs: &[(&str, i64, i64)],
        outputs: &[&str],
        ticks: usize,
        seed: u64,
        mut faults: impl FnMut(usize) -> Vec<FaultSpec>,
    ) {
        let mut sim = Simulator::new(netlist.clone()).unwrap();
        let mut eng = CompiledEngine::new(netlist).unwrap();
        let mut rng = Lcg(seed);
        for t in 0..ticks {
            for spec in faults(t) {
                sim.inject(&spec).unwrap();
                eng.inject(&spec).unwrap();
            }
            for &(name, lo, hi) in inputs {
                let v = rng.in_range(lo, hi);
                sim.set_input(name, v).unwrap();
                Engine::set_input(&mut eng, name, v).unwrap();
            }
            sim.try_tick().unwrap();
            eng.try_tick().unwrap();
            for &out in outputs {
                assert_eq!(
                    sim.peek(out).unwrap(),
                    Engine::peek(&eng, out).unwrap(),
                    "output {out} diverged at tick {t}"
                );
            }
        }
    }

    #[test]
    fn mixed_logic_matches_event_sim() {
        lockstep(
            mixed_netlist(),
            &[("x", -128, 127), ("y", -128, 127)],
            &["s", "p"],
            200,
            7,
            |_| Vec::new(),
        );
    }

    #[test]
    fn ram_matches_event_sim() {
        lockstep(
            ram_netlist(),
            &[("raddr", -4, 3), ("waddr", -4, 3), ("wdata", -32, 31), ("wen", -1, 0)],
            &["rdata"],
            300,
            11,
            |_| Vec::new(),
        );
    }

    #[test]
    fn faults_match_event_sim() {
        // A stuck output bit, a register flip mid-stream, and (on the
        // RAM netlist) an array upset all land identically.
        lockstep(
            mixed_netlist(),
            &[("x", -128, 127), ("y", -128, 127)],
            &["s", "p"],
            120,
            13,
            |t| match t {
                10 => vec![FaultSpec::StuckAt { net: "s".into(), bit: 2, value: true }],
                40 => vec![FaultSpec::BitFlip { register: "rs".into(), bit: 1, cycle: 45 }],
                _ => Vec::new(),
            },
        );
        lockstep(
            ram_netlist(),
            &[("raddr", -4, 3), ("waddr", -4, 3), ("wdata", -32, 31), ("wen", -1, 0)],
            &["rdata"],
            120,
            17,
            |t| match t {
                5 => vec![FaultSpec::RamUpset { ram: "m".into(), addr: 2, bit: 3, cycle: 20 }],
                _ => Vec::new(),
            },
        );
    }

    #[test]
    fn snapshot_round_trips_and_rejects_foreign_netlists() {
        let mut eng = CompiledEngine::new(mixed_netlist()).unwrap();
        let mut rng = Lcg(23);
        for _ in 0..20 {
            Engine::set_input(&mut eng, "x", rng.in_range(-128, 127)).unwrap();
            Engine::set_input(&mut eng, "y", rng.in_range(-128, 127)).unwrap();
            eng.try_tick().unwrap();
        }
        let snap = eng.snapshot();
        assert_eq!(snap.cycle(), 20);
        assert!(!snap.has_armed_faults());
        // Diverge, then roll back and replay identically.
        let mut trace = Vec::new();
        let replay: Vec<(i64, i64)> =
            (0..10).map(|_| (rng.in_range(-128, 127), rng.in_range(-128, 127))).collect();
        for &(x, y) in &replay {
            Engine::set_input(&mut eng, "x", x).unwrap();
            Engine::set_input(&mut eng, "y", y).unwrap();
            eng.try_tick().unwrap();
            trace.push((Engine::peek(&eng, "s").unwrap(), eng.peek_lanes("s").unwrap()));
        }
        eng.restore(&snap).unwrap();
        assert_eq!(eng.snapshot(), snap, "restore must reproduce the snapshot state");
        for (i, &(x, y)) in replay.iter().enumerate() {
            Engine::set_input(&mut eng, "x", x).unwrap();
            Engine::set_input(&mut eng, "y", y).unwrap();
            eng.try_tick().unwrap();
            assert_eq!(Engine::peek(&eng, "s").unwrap(), trace[i].0);
            assert_eq!(eng.peek_lanes("s").unwrap(), trace[i].1);
        }
        // A snapshot from a different netlist shape is rejected.
        let mut other = CompiledEngine::new(ram_netlist()).unwrap();
        assert!(matches!(other.restore(&snap), Err(Error::SnapshotMismatch { .. })));
    }

    #[test]
    fn portable_snapshot_bytes_round_trip_and_reject_corruption() {
        use crate::engine::PortableSnapshot;
        use crate::fault::FaultSpec;
        let netlist = ram_netlist();
        let mut eng = CompiledEngine::new(netlist.clone()).unwrap();
        let mut rng = Lcg(31);
        for _ in 0..12 {
            Engine::set_input(&mut eng, "raddr", rng.in_range(0, 3)).unwrap();
            Engine::set_input(&mut eng, "waddr", rng.in_range(0, 3)).unwrap();
            Engine::set_input(&mut eng, "wdata", rng.in_range(-32, 31)).unwrap();
            Engine::set_input(&mut eng, "wen", rng.in_range(-1, 0)).unwrap();
            eng.try_tick().unwrap();
        }
        // Exercise every StagedInput arm plus armed faults.
        Engine::set_input(&mut eng, "raddr", 2).unwrap();
        eng.set_input_lane("wdata", 3, 19).unwrap();
        eng.set_input_lanes("waddr", &[1; LANES]).unwrap();
        eng.inject(&FaultSpec::StuckAt { net: "wdata".into(), bit: 0, value: true }).unwrap();
        eng.inject(&FaultSpec::RamUpset { ram: "m".into(), addr: 1, bit: 2, cycle: 40 }).unwrap();
        let snap = eng.snapshot();
        let bytes = snap.to_bytes();
        let decoded = CompiledSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap, "byte round-trip is identity");

        // A restore from the decoded snapshot resumes identically in
        // every lane.
        let mut twin = CompiledEngine::new(netlist).unwrap();
        twin.restore(&decoded).unwrap();
        for _ in 0..15 {
            let ra = rng.in_range(0, 3);
            let wa = rng.in_range(0, 3);
            let wd = rng.in_range(-32, 31);
            for e in [&mut eng, &mut twin] {
                Engine::set_input(e, "raddr", ra).unwrap();
                Engine::set_input(e, "waddr", wa).unwrap();
                Engine::set_input(e, "wdata", wd).unwrap();
                Engine::set_input(e, "wen", -1).unwrap();
                e.try_tick().unwrap();
            }
            assert_eq!(eng.peek_lanes("rdata").unwrap(), twin.peek_lanes("rdata").unwrap());
        }

        // Truncation anywhere is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    CompiledSnapshot::from_bytes(&bytes[..cut]),
                    Err(Error::SnapshotDecode { .. })
                ),
                "truncation at {cut} must be rejected"
            );
        }
        let mut long = bytes.clone();
        long.push(9);
        assert!(matches!(CompiledSnapshot::from_bytes(&long), Err(Error::SnapshotDecode { .. })));
        // An event-driven tag must not decode as a compiled snapshot.
        let mut wrong = bytes;
        wrong[0] = b'E';
        assert!(matches!(CompiledSnapshot::from_bytes(&wrong), Err(Error::SnapshotDecode { .. })));
    }

    #[test]
    fn lanes_are_independent() {
        let netlist = mixed_netlist();
        let mut packed = CompiledEngine::new(netlist.clone()).unwrap();
        let mut rng = Lcg(29);
        // 64 independent (x, y) streams, 40 ticks deep.
        let stream: Vec<Vec<(i64, i64)>> = (0..LANES)
            .map(|_| (0..40).map(|_| (rng.in_range(-128, 127), rng.in_range(-128, 127))).collect())
            .collect();
        let mut packed_out: Vec<Vec<i64>> = vec![Vec::new(); LANES];
        for t in 0..40 {
            let xs: Vec<i64> = stream.iter().map(|s| s[t].0).collect();
            let ys: Vec<i64> = stream.iter().map(|s| s[t].1).collect();
            packed.set_input_lanes("x", &xs).unwrap();
            packed.set_input_lanes("y", &ys).unwrap();
            packed.try_tick().unwrap();
            for (l, out) in packed_out.iter_mut().enumerate() {
                out.push(packed.peek_lane("s", l).unwrap());
            }
        }
        // Each lane must equal its own broadcast single-lane run.
        for (l, lane_stream) in stream.iter().enumerate() {
            let mut single = CompiledEngine::new(netlist.clone()).unwrap();
            for (t, &(x, y)) in lane_stream.iter().enumerate() {
                Engine::set_input(&mut single, "x", x).unwrap();
                Engine::set_input(&mut single, "y", y).unwrap();
                single.try_tick().unwrap();
                assert_eq!(
                    Engine::peek(&single, "s").unwrap(),
                    packed_out[l][t],
                    "lane {l} diverged from its scalar run at tick {t}"
                );
            }
        }
    }

    #[test]
    fn caps_and_program_shape() {
        let eng = CompiledEngine::new(mixed_netlist()).unwrap();
        let caps = Engine::caps(&eng);
        assert_eq!(caps.backend, "compiled");
        assert_eq!(caps.lanes, LANES);
        assert!(!caps.activity_stats && !caps.glitch_model && !caps.divergence_detection);
        let p = eng.program();
        assert!(p.op_count() > 0);
        assert!(p.levels() >= 2, "mux/parity logic is at least two levels deep");
        assert!(p.word_count() > eng.netlist.net_count());

        let sim_caps = Engine::caps(&Simulator::new(mixed_netlist()).unwrap());
        assert_eq!(sim_caps.lanes, 1);
        assert!(sim_caps.activity_stats && sim_caps.glitch_model && sim_caps.divergence_detection);
    }

    #[test]
    fn settle_applies_inputs_without_ticking() {
        let netlist = mixed_netlist();
        let mut sim = Simulator::new(netlist.clone()).unwrap();
        let mut eng = CompiledEngine::new(netlist).unwrap();
        sim.set_input("x", 3).unwrap();
        sim.set_input("y", 5).unwrap();
        Engine::set_input(&mut eng, "x", 3).unwrap();
        Engine::set_input(&mut eng, "y", 5).unwrap();
        sim.try_settle().unwrap();
        eng.try_settle().unwrap();
        assert_eq!(Engine::cycle(&eng), 0);
        // Registers have not clocked, so outputs reflect reset state,
        // but both backends agree on every port.
        for port in ["s", "p"] {
            assert_eq!(sim.peek(port).unwrap(), Engine::peek(&eng, port).unwrap());
        }
    }

    #[test]
    fn back_translation_simulates_identically() {
        // The netlist rebuilt from the compiled program must be a valid
        // graph that simulates bit-exactly against the source, RAM
        // included — this is the substrate the formal checker rests on.
        for (netlist, inputs, outputs) in [
            (mixed_netlist(), vec![("x", -128i64, 127i64), ("y", -128, 127)], vec!["s", "p"]),
            (
                ram_netlist(),
                vec![("raddr", -4, 3), ("waddr", -4, 3), ("wdata", -32, 31), ("wen", -1, 0)],
                vec!["rdata"],
            ),
        ] {
            let program = Program::compile(&netlist).unwrap();
            let back = program.to_netlist(&netlist).expect("back-translation validates");
            let mut src = Simulator::new(netlist).unwrap();
            let mut bt = Simulator::new(back).unwrap();
            let mut rng = Lcg(41);
            for t in 0..100 {
                for &(name, lo, hi) in &inputs {
                    let v = rng.in_range(lo, hi);
                    src.set_input(name, v).unwrap();
                    bt.set_input(name, v).unwrap();
                }
                src.try_tick().unwrap();
                bt.try_tick().unwrap();
                for &out in &outputs {
                    assert_eq!(
                        src.peek(out).unwrap(),
                        bt.peek(out).unwrap(),
                        "back-translated netlist diverged on {out} at tick {t}"
                    );
                }
            }
        }
        // A program refuses to back-translate against a foreign netlist.
        let program = Program::compile(&mixed_netlist()).unwrap();
        assert!(matches!(program.to_netlist(&ram_netlist()), Err(Error::SnapshotMismatch { .. })));
    }

    #[test]
    fn lane_bounds_are_checked() {
        let mut eng = CompiledEngine::new(mixed_netlist()).unwrap();
        assert!(eng.set_input_lane("x", LANES, 0).is_err());
        assert!(eng.peek_lane("s", LANES).is_err());
        assert!(eng.set_input_lanes("x", &[]).is_err());
        assert!(eng.set_input_lanes("x", &vec![0; LANES + 1]).is_err());
        assert!(Engine::set_input(&mut eng, "nope", 0).is_err());
        assert!(Engine::set_input(&mut eng, "s", 0).is_err(), "outputs are not drivable");
        assert!(Engine::set_input(&mut eng, "x", 1 << 20).is_err(), "range checked");
    }
}
