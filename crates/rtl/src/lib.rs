//! # dwt-rtl
//!
//! Register-transfer-level substrate for the DATE'05 DWT architecture
//! reproduction: netlist construction, validation, and cycle-accurate
//! event-driven simulation with glitch-aware transition counting.
//!
//! This crate plays the role VHDL + a simulator played for the paper's
//! authors. Architectures are built as explicit netlists through
//! [`builder::NetlistBuilder`], mixing the two abstraction levels the
//! paper compares:
//!
//! * behavioral word operators ([`cell::CellKind::CarryAdd`]) that an
//!   FPGA mapper implements on fast-carry chains, and
//! * structural bit-level logic ([`cell::CellKind::FullAdder`],
//!   [`cell::CellKind::Lut`]) mapped to plain logic elements.
//!
//! [`sim::Simulator`] executes a netlist clock cycle by clock cycle under
//! a unit-delay event model, so deep combinational cones glitch and the
//! recorded [`sim::ActivityStats`] expose exactly the switching-activity
//! differences that drive the paper's power comparisons. `dwt-fpga`
//! turns those counts plus a device model into area/Fmax/power reports.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), dwt_rtl::Error> {
//! use dwt_rtl::builder::NetlistBuilder;
//! use dwt_rtl::sim::Simulator;
//!
//! // y = (x * 5) >> 1 via shift-and-add, pipelined once.
//! let mut b = NetlistBuilder::new();
//! let x = b.input("x", 8)?;
//! let x4 = b.shift_left(&x, 2)?;
//! let sum = b.carry_add("sum", &x4, &x, 11)?;
//! let q = b.register("q", &sum)?;
//! let y = b.shift_right_arith(&q, 1)?;
//! b.output("y", &y)?;
//!
//! let mut sim = Simulator::new(b.finish()?)?;
//! sim.set_input("x", 20)?;
//! sim.tick();
//! sim.tick();
//! assert_eq!(sim.peek("y")?, 50);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `deny`, not `forbid`: the jit backend's loader module needs a scoped
// `#[allow(unsafe_code)]` for its dlopen/dlsym FFI shim and the kernel
// entry-point calls. Everything else in the crate stays safe code.
#![deny(unsafe_code)]

pub mod builder;
pub mod cell;
pub mod compile;
pub mod dot;
pub mod engine;
mod error;
pub mod fault;
pub mod jit;
pub mod net;
pub mod netlist;
pub mod opt;
mod proptests;
pub mod query;
pub mod sim;
pub(crate) mod snapbytes;
pub mod stats;
pub mod vcd;

pub use error::{Error, Result};
