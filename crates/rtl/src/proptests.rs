//! Property-based tests of the simulation substrate: randomly generated
//! netlists are checked against direct functional evaluation, and the
//! simulator's structural invariants are exercised under random
//! stimulus.

#![cfg(test)]

use proptest::prelude::*;

use crate::builder::NetlistBuilder;
use crate::compile::CompiledEngine;
use crate::engine::Engine;
use crate::fault::FaultSpec;
use crate::net::Bus;
use crate::sim::Simulator;

/// A random straight-line arithmetic program over two inputs.
#[derive(Debug, Clone)]
enum Op {
    AddPrev(usize, usize),
    SubPrev(usize, usize),
    ShiftLeft(usize, u8),
    ShiftRight(usize, u8),
    Register(usize),
}

fn program() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::AddPrev(a, b)),
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::SubPrev(a, b)),
            (0usize..8, 1u8..4).prop_map(|(a, k)| Op::ShiftLeft(a, k)),
            (0usize..8, 1u8..4).prop_map(|(a, k)| Op::ShiftRight(a, k)),
            (0usize..8).prop_map(Op::Register),
        ],
        1..12,
    )
}

/// Builds the program as a netlist (both adder styles) and as a direct
/// software evaluator; returns (event-driven simulator, eval closure,
/// register count on the output path).
fn build(ops: &[Op], structural: bool) -> (Simulator, impl Fn(&[i64]) -> i64, usize) {
    let (netlist, eval, regs) = build_netlist(ops, structural);
    (Simulator::new(netlist).unwrap(), eval, regs)
}

/// Builds the program as a bare netlist plus a direct software
/// evaluator and the register count on the output path.
fn build_netlist(
    ops: &[Op],
    structural: bool,
) -> (crate::netlist::Netlist, impl Fn(&[i64]) -> i64, usize) {
    const W: usize = 20;
    let mut b = NetlistBuilder::new();
    let x = b.input("x", 10).unwrap();
    let y = b.input("y", 10).unwrap();
    let mut nodes: Vec<Bus> = vec![b.sign_extend(&x, W).unwrap(), b.sign_extend(&y, W).unwrap()];
    let mut regs_on_path = 0;
    for (i, op) in ops.iter().enumerate() {
        let pick = |v: &Vec<Bus>, i: usize| v[i % v.len()].clone();
        let bus = match *op {
            Op::AddPrev(a, c) => {
                let (a, c) = (pick(&nodes, a), pick(&nodes, c));
                if structural {
                    b.ripple_add(&format!("n{i}"), &a, &c, W).unwrap()
                } else {
                    b.carry_add(&format!("n{i}"), &a, &c, W).unwrap()
                }
            }
            Op::SubPrev(a, c) => {
                let (a, c) = (pick(&nodes, a), pick(&nodes, c));
                if structural {
                    b.ripple_sub(&format!("n{i}"), &a, &c, W).unwrap()
                } else {
                    b.carry_sub(&format!("n{i}"), &a, &c, W).unwrap()
                }
            }
            Op::ShiftLeft(a, k) => {
                let s = b.shift_left(&pick(&nodes, a), k as usize).unwrap();
                b.resize(&s, W).unwrap()
            }
            Op::ShiftRight(a, k) => {
                let s = b.shift_right_arith(&pick(&nodes, a), k as usize).unwrap();
                b.sign_extend(&s, W).unwrap()
            }
            Op::Register(a) => {
                regs_on_path += 1;
                b.register(&format!("n{i}"), &pick(&nodes, a)).unwrap()
            }
        };
        nodes.push(bus);
    }
    let out = nodes.last().unwrap().clone();
    b.output("out", &out).unwrap();
    let netlist = b.finish().unwrap();

    let ops = ops.to_vec();
    let eval = move |inputs: &[i64]| -> i64 {
        let wrap = |v: i64| -> i64 {
            let m = v & ((1i64 << W) - 1);
            if m & (1 << (W - 1)) != 0 {
                m - (1 << W)
            } else {
                m
            }
        };
        let mut vals: Vec<i64> = vec![inputs[0], inputs[1]];
        for op in &ops {
            let pick = |v: &Vec<i64>, i: usize| v[i % v.len()];
            let next = match *op {
                Op::AddPrev(a, c) => wrap(pick(&vals, a) + pick(&vals, c)),
                Op::SubPrev(a, c) => wrap(pick(&vals, a) - pick(&vals, c)),
                Op::ShiftLeft(a, k) => wrap(pick(&vals, a) << k),
                Op::ShiftRight(a, k) => pick(&vals, a) >> k,
                Op::Register(a) => pick(&vals, a), // steady-state value
            };
            vals.push(next);
        }
        *vals.last().unwrap()
    };
    (netlist, eval, regs_on_path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After holding the inputs for enough cycles, the netlist output
    /// equals the direct functional evaluation, for both adder styles.
    #[test]
    fn random_netlists_compute_their_program(
        ops in program(),
        x in -512i64..512,
        y in -512i64..512,
        structural in any::<bool>(),
    ) {
        let (mut sim, eval, _) = build(&ops, structural);
        sim.set_input("x", x).unwrap();
        sim.set_input("y", y).unwrap();
        // Hold long enough for every register stage to flush.
        for _ in 0..ops.len() + 2 {
            sim.tick();
        }
        prop_assert_eq!(sim.peek("out").unwrap(), eval(&[x, y]));
    }

    /// Behavioral and structural realisations of one program agree.
    #[test]
    fn adder_styles_are_equivalent(
        ops in program(),
        x in -512i64..512,
        y in -512i64..512,
    ) {
        let (mut s1, _, _) = build(&ops, false);
        let (mut s2, _, _) = build(&ops, true);
        for sim in [&mut s1, &mut s2] {
            sim.set_input("x", x).unwrap();
            sim.set_input("y", y).unwrap();
            for _ in 0..ops.len() + 2 {
                sim.tick();
            }
        }
        prop_assert_eq!(s1.peek("out").unwrap(), s2.peek("out").unwrap());
    }

    /// Re-applying the same inputs never changes outputs or produces
    /// combinational transitions (settle is idempotent).
    #[test]
    fn settle_is_idempotent(ops in program(), x in -512i64..512, y in -512i64..512) {
        let (mut sim, _, _) = build(&ops, false);
        sim.set_input("x", x).unwrap();
        sim.set_input("y", y).unwrap();
        sim.settle();
        let before = sim.peek("out").unwrap();
        sim.reset_stats();
        sim.set_input("x", x).unwrap();
        sim.set_input("y", y).unwrap();
        sim.settle();
        prop_assert_eq!(sim.peek("out").unwrap(), before);
        prop_assert_eq!(sim.stats().total_cell_toggles(), 0);
    }

    /// A triple-modular-redundant register chain masks *any* single
    /// register-bit upset: whatever stage, replica, bit and cycle the
    /// flip strikes, the voted output stream is bit-identical to the
    /// clean run. (This is the microscopic property behind the
    /// `dwt-arch` TMR hardening.)
    #[test]
    fn tmr_chain_masks_any_single_bit_flip(
        stages in 1usize..4,
        stage_pick in 0usize..16,
        replica in 0usize..3,
        bit in 0usize..8,
        cycle in 0u64..12,
        xs in prop::collection::vec(-128i64..128, 12usize..16),
    ) {
        const MAJ3: u16 = 0b1110_1000;
        let build = |stages: usize| -> Simulator {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).unwrap();
            let mut cur = x;
            for s in 0..stages {
                let q0 = b.register(&format!("s{s}_r0"), &cur).unwrap();
                let q1 = b.register(&format!("s{s}_r1"), &cur).unwrap();
                let q2 = b.register(&format!("s{s}_r2"), &cur).unwrap();
                let voted: Vec<_> = (0..cur.width())
                    .map(|i| {
                        b.lut(
                            &format!("s{s}_v{i}"),
                            &[q0.bit(i), q1.bit(i), q2.bit(i)],
                            MAJ3,
                        )
                        .unwrap()
                    })
                    .collect();
                cur = Bus::new(voted).unwrap();
            }
            b.output("out", &cur).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        };
        let run = |fault: Option<&FaultSpec>| -> Vec<i64> {
            let mut sim = build(stages);
            if let Some(f) = fault {
                sim.inject(f).unwrap();
            }
            xs.iter()
                .map(|&v| {
                    sim.set_input("x", v).unwrap();
                    sim.tick();
                    sim.peek("out").unwrap()
                })
                .collect()
        };
        let fault = FaultSpec::BitFlip {
            register: format!("s{}_r{replica}", stage_pick % stages),
            bit,
            cycle,
        };
        prop_assert_eq!(run(None), run(Some(&fault)));
    }

    /// Simulation runs are deterministic, including activity counts.
    #[test]
    fn simulation_is_deterministic(ops in program(), seed in 0u64..1000) {
        let run = || {
            let (mut sim, _, _) = build(&ops, false);
            let mut state = seed | 1;
            for _ in 0..20 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.set_input("x", (state % 1024) as i64 - 512).unwrap();
                sim.set_input("y", ((state >> 20) % 1024) as i64 - 512).unwrap();
                sim.tick();
            }
            (sim.peek("out").unwrap(), sim.stats().total_cell_toggles())
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled bit-sliced backend agrees with the event-driven
    /// simulator cycle by cycle on random netlists under a randomly
    /// varying stimulus (not just in steady state).
    #[test]
    fn compiled_backend_matches_event_sim(
        ops in program(),
        structural in any::<bool>(),
        xs in prop::collection::vec((-512i64..512, -512i64..512), 4..20),
    ) {
        let (netlist, _, _) = build_netlist(&ops, structural);
        let mut sim = Simulator::new(netlist.clone()).unwrap();
        let mut eng = CompiledEngine::new(netlist).unwrap();
        for &(x, y) in &xs {
            sim.set_input("x", x).unwrap();
            sim.set_input("y", y).unwrap();
            Engine::set_input(&mut eng, "x", x).unwrap();
            Engine::set_input(&mut eng, "y", y).unwrap();
            sim.try_tick().unwrap();
            eng.try_tick().unwrap();
            prop_assert_eq!(sim.peek("out").unwrap(), Engine::peek(&eng, "out").unwrap());
        }
    }

    /// `CompiledEngine` snapshot/restore round-trips bit-exactly: a
    /// replayed suffix reproduces every lane of every output, and the
    /// re-taken snapshot equals the original.
    #[test]
    fn compiled_snapshot_restore_round_trips(
        ops in program(),
        prefix in prop::collection::vec((-512i64..512, -512i64..512), 1..10),
        suffix in prop::collection::vec((-512i64..512, -512i64..512), 1..10),
    ) {
        let (netlist, _, _) = build_netlist(&ops, false);
        let mut eng = CompiledEngine::new(netlist).unwrap();
        for &(x, y) in &prefix {
            Engine::set_input(&mut eng, "x", x).unwrap();
            Engine::set_input(&mut eng, "y", y).unwrap();
            eng.try_tick().unwrap();
        }
        let snap = Engine::snapshot(&eng);
        let run_suffix = |eng: &mut CompiledEngine| -> Vec<Vec<i64>> {
            suffix
                .iter()
                .map(|&(x, y)| {
                    Engine::set_input(eng, "x", x).unwrap();
                    Engine::set_input(eng, "y", y).unwrap();
                    eng.try_tick().unwrap();
                    eng.peek_lanes("out").unwrap()
                })
                .collect()
        };
        let first = run_suffix(&mut eng);
        Engine::restore(&mut eng, &snap).unwrap();
        prop_assert_eq!(&Engine::snapshot(&eng), &snap);
        let second = run_suffix(&mut eng);
        prop_assert_eq!(first, second);
    }

    /// Lane-packed evaluation equals 64 independent single-lane runs:
    /// de-interleaving the packed output stream reproduces each lane's
    /// scalar (broadcast) run exactly.
    #[test]
    fn compiled_lanes_deinterleave(
        ops in program(),
        seed in 0u64..1_000_000,
        ticks in 2usize..8,
    ) {
        let (netlist, _, _) = build_netlist(&ops, false);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1024) as i64 - 512
        };
        let streams: Vec<Vec<(i64, i64)>> = (0..crate::compile::LANES)
            .map(|_| (0..ticks).map(|_| (next(), next())).collect())
            .collect();
        let mut packed = CompiledEngine::new(netlist.clone()).unwrap();
        let mut packed_out: Vec<Vec<i64>> = vec![Vec::new(); crate::compile::LANES];
        for t in 0..ticks {
            let xs: Vec<i64> = streams.iter().map(|s| s[t].0).collect();
            let ys: Vec<i64> = streams.iter().map(|s| s[t].1).collect();
            packed.set_input_lanes("x", &xs).unwrap();
            packed.set_input_lanes("y", &ys).unwrap();
            packed.try_tick().unwrap();
            for (lane, out) in packed_out.iter_mut().enumerate() {
                out.push(packed.peek_lane("out", lane).unwrap());
            }
        }
        for (lane, stream) in streams.iter().enumerate() {
            let mut single = CompiledEngine::new(netlist.clone()).unwrap();
            for (t, &(x, y)) in stream.iter().enumerate() {
                Engine::set_input(&mut single, "x", x).unwrap();
                Engine::set_input(&mut single, "y", y).unwrap();
                single.try_tick().unwrap();
                prop_assert_eq!(Engine::peek(&single, "out").unwrap(), packed_out[lane][t]);
            }
        }
    }
}
