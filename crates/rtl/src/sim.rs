//! Event-driven unit-delay simulation with transition counting.
//!
//! Every combinational cell is given one unit of delay. Within a clock
//! cycle the simulator propagates changes event by event, so a cell whose
//! inputs arrive at *different* times re-evaluates and may glitch —
//! producing extra output transitions exactly as deep combinational
//! cones do in real hardware. The per-cell transition counts are the raw
//! material of the power model in `dwt-fpga`: pipelined designs show
//! fewer transitions per cycle because their registers stop glitch
//! propagation, which is the physical mechanism behind the paper's
//! observation that the 21-stage designs cut power roughly in half.

use crate::cell::CellKind;
use crate::error::{Error, Result};
use crate::fault::{self, FaultSpec, ResolvedFault};
use crate::net::{bits_to_signed, signed_to_bits, Bus, NetId};
use crate::netlist::{CellId, Netlist, PortDirection};
use crate::snapbytes::{ByteReader, ByteWriter};

/// Per-cell and aggregate switching-activity counters.
///
/// Combinational transitions are split by the capacitance class of the
/// net they happen on, because the energy of a transition is dominated
/// by what it drives:
///
/// * **routed** — the net fans out through general-purpose routing;
/// * **local** — the net's only reader is a register (a folded
///   flip-flop's D pin inside the same logic element) or the next full
///   adder of a chain (LAB-local lines);
/// * **carry** — internal carry hops of a fast-carry chain (dedicated
///   short wires).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActivityStats {
    /// Output-bit transitions per combinational cell (indexed by cell).
    pub cell_toggles: Vec<u64>,
    /// Transitions on generally routed nets.
    pub routed_toggles: u64,
    /// Transitions on LAB-local nets (folded-FF feeds, FA-chain hops).
    pub local_toggles: u64,
    /// Internal carry-chain transitions.
    pub carry_toggles: u64,
    /// Flip-flop output transitions, summed over all registers.
    pub ff_toggles: u64,
    /// Clock cycles simulated.
    pub cycles: u64,
}

impl ActivityStats {
    /// Total combinational transitions across all cells.
    #[must_use]
    pub fn total_cell_toggles(&self) -> u64 {
        self.cell_toggles.iter().sum()
    }

    /// Mean combinational transitions per simulated cycle.
    #[must_use]
    pub fn toggles_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_cell_toggles() as f64 / self.cycles as f64
        }
    }

    /// Mean flip-flop transitions per simulated cycle.
    #[must_use]
    pub fn ff_toggles_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ff_toggles as f64 / self.cycles as f64
        }
    }

    /// Mean transitions per cycle in each capacitance class:
    /// `(routed, local, carry)`.
    #[must_use]
    pub fn class_toggles_per_cycle(&self) -> (f64, f64, f64) {
        if self.cycles == 0 {
            return (0.0, 0.0, 0.0);
        }
        let c = self.cycles as f64;
        (
            self.routed_toggles as f64 / c,
            self.local_toggles as f64 / c,
            self.carry_toggles as f64 / c,
        )
    }
}

/// Capacitance class of a net (see [`ActivityStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetClass {
    Routed,
    Local,
}

/// A bit-exact capture of every piece of mutable simulator state, as
/// produced by [`Simulator::snapshot`] and consumed by
/// [`Simulator::restore`].
///
/// A snapshot records net values, in-flight events, switching
/// statistics, RAM contents, carry-chain state, the absolute cycle
/// counter, staged inputs, and all armed faults (stuck-at clamps,
/// pending register flips and RAM upsets) — everything needed for a
/// restored simulator to replay the exact cycle-by-cycle behaviour of
/// the original from the capture point onward. The immutable netlist is
/// *not* copied; a snapshot can only be restored into a simulator built
/// from an identical netlist (checked by net/cell counts).
///
/// Snapshots are the rollback substrate of checkpointed tile execution:
/// a recovery runtime captures one at every tile boundary and rewinds
/// to it when a fault is detected mid-tile.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    values: Vec<bool>,
    projected: Vec<bool>,
    staged_inputs: Vec<(Bus, i64)>,
    stats: ActivityStats,
    pending: Vec<std::collections::VecDeque<(u32, bool)>>,
    /// Wheel contents in sorted order (heap order is unspecified, so a
    /// canonical ordering keeps `PartialEq` meaningful).
    wheel: Vec<std::cmp::Reverse<(u32, u8, u32, bool)>>,
    enqueued_at: Vec<u32>,
    ram_contents: Vec<Vec<i64>>,
    carry_state: Vec<u64>,
    cycle: u64,
    stuck: Vec<(u32, bool)>,
    flips: Vec<(CellId, usize, u64)>,
    ram_upsets: Vec<(CellId, usize, usize, u64)>,
    event_cap: u64,
    last_eval: Option<CellId>,
}

impl Snapshot {
    /// The absolute tick count at the moment of capture.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether any fault (stuck-at clamp, pending flip or RAM upset)
    /// was armed when the snapshot was taken. Recovery runtimes use
    /// this to tell a clean checkpoint from one that would replay a
    /// persistent fault.
    #[must_use]
    pub fn has_armed_faults(&self) -> bool {
        !self.stuck.is_empty() || !self.flips.is_empty() || !self.ram_upsets.is_empty()
    }
}

/// Leading tag byte of a serialized event-driven snapshot (`'E'`).
const SNAPSHOT_TAG: u8 = b'E';
/// Encoding version; bump on any field/layout change.
const SNAPSHOT_VERSION: u8 = 1;

fn write_bus(w: &mut ByteWriter, bus: &Bus) {
    w.len(bus.width());
    for &net in bus.bits() {
        w.u32(net.index() as u32);
    }
}

fn read_bus(r: &mut ByteReader<'_>) -> Result<Bus> {
    let width = r.len(4)?;
    let mut bits = Vec::with_capacity(width);
    for _ in 0..width {
        bits.push(NetId(r.u32()?));
    }
    Bus::new(bits).map_err(|e| Error::SnapshotDecode { detail: format!("bad bus: {e}") })
}

impl crate::engine::PortableSnapshot for Snapshot {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(SNAPSHOT_TAG);
        w.u8(SNAPSHOT_VERSION);
        w.len(self.values.len());
        for &v in &self.values {
            w.bool(v);
        }
        w.len(self.projected.len());
        for &v in &self.projected {
            w.bool(v);
        }
        w.len(self.staged_inputs.len());
        for (bus, value) in &self.staged_inputs {
            write_bus(&mut w, bus);
            w.i64(*value);
        }
        w.len(self.stats.cell_toggles.len());
        for &t in &self.stats.cell_toggles {
            w.u64(t);
        }
        w.u64(self.stats.routed_toggles);
        w.u64(self.stats.local_toggles);
        w.u64(self.stats.carry_toggles);
        w.u64(self.stats.ff_toggles);
        w.u64(self.stats.cycles);
        w.len(self.pending.len());
        for queue in &self.pending {
            w.len(queue.len());
            for &(at, value) in queue {
                w.u32(at);
                w.bool(value);
            }
        }
        w.len(self.wheel.len());
        for &std::cmp::Reverse((at, tier, net, value)) in &self.wheel {
            w.u32(at);
            w.u8(tier);
            w.u32(net);
            w.bool(value);
        }
        w.len(self.enqueued_at.len());
        for &at in &self.enqueued_at {
            w.u32(at);
        }
        w.len(self.ram_contents.len());
        for ram in &self.ram_contents {
            w.len(ram.len());
            for &word in ram {
                w.i64(word);
            }
        }
        w.len(self.carry_state.len());
        for &s in &self.carry_state {
            w.u64(s);
        }
        w.u64(self.cycle);
        w.len(self.stuck.len());
        for &(net, value) in &self.stuck {
            w.u32(net);
            w.bool(value);
        }
        w.len(self.flips.len());
        for &(cell, bit, cycle) in &self.flips {
            w.u32(cell.index() as u32);
            w.usize(bit);
            w.u64(cycle);
        }
        w.len(self.ram_upsets.len());
        for &(cell, addr, bit, cycle) in &self.ram_upsets {
            w.u32(cell.index() as u32);
            w.usize(addr);
            w.usize(bit);
            w.u64(cycle);
        }
        w.u64(self.event_cap);
        match self.last_eval {
            None => w.u8(0),
            Some(cell) => {
                w.u8(1);
                w.u32(cell.index() as u32);
            }
        }
        w.finish()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.u8()?;
        if tag != SNAPSHOT_TAG {
            return Err(Error::SnapshotDecode {
                detail: format!("tag {tag:#04x} is not an event-driven snapshot"),
            });
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::SnapshotDecode {
                detail: format!("unsupported snapshot version {version}"),
            });
        }
        let mut values = Vec::with_capacity(r.len(1)?);
        for _ in 0..values.capacity() {
            values.push(r.bool()?);
        }
        let mut projected = Vec::with_capacity(r.len(1)?);
        for _ in 0..projected.capacity() {
            projected.push(r.bool()?);
        }
        let mut staged_inputs = Vec::with_capacity(r.len(4)?);
        for _ in 0..staged_inputs.capacity() {
            let bus = read_bus(&mut r)?;
            let value = r.i64()?;
            staged_inputs.push((bus, value));
        }
        let mut cell_toggles = Vec::with_capacity(r.len(8)?);
        for _ in 0..cell_toggles.capacity() {
            cell_toggles.push(r.u64()?);
        }
        let stats = ActivityStats {
            cell_toggles,
            routed_toggles: r.u64()?,
            local_toggles: r.u64()?,
            carry_toggles: r.u64()?,
            ff_toggles: r.u64()?,
            cycles: r.u64()?,
        };
        let mut pending = Vec::with_capacity(r.len(4)?);
        for _ in 0..pending.capacity() {
            let mut queue = std::collections::VecDeque::with_capacity(r.len(5)?);
            for _ in 0..queue.capacity() {
                let at = r.u32()?;
                let value = r.bool()?;
                queue.push_back((at, value));
            }
            pending.push(queue);
        }
        let mut wheel = Vec::with_capacity(r.len(10)?);
        for _ in 0..wheel.capacity() {
            let at = r.u32()?;
            let tier = r.u8()?;
            let net = r.u32()?;
            let value = r.bool()?;
            wheel.push(std::cmp::Reverse((at, tier, net, value)));
        }
        let mut enqueued_at = Vec::with_capacity(r.len(4)?);
        for _ in 0..enqueued_at.capacity() {
            enqueued_at.push(r.u32()?);
        }
        let mut ram_contents = Vec::with_capacity(r.len(4)?);
        for _ in 0..ram_contents.capacity() {
            let mut ram = Vec::with_capacity(r.len(8)?);
            for _ in 0..ram.capacity() {
                ram.push(r.i64()?);
            }
            ram_contents.push(ram);
        }
        let mut carry_state = Vec::with_capacity(r.len(8)?);
        for _ in 0..carry_state.capacity() {
            carry_state.push(r.u64()?);
        }
        let cycle = r.u64()?;
        let mut stuck = Vec::with_capacity(r.len(5)?);
        for _ in 0..stuck.capacity() {
            let net = r.u32()?;
            let value = r.bool()?;
            stuck.push((net, value));
        }
        let mut flips = Vec::with_capacity(r.len(20)?);
        for _ in 0..flips.capacity() {
            let cell = CellId(r.u32()?);
            let bit = r.usize()?;
            let due = r.u64()?;
            flips.push((cell, bit, due));
        }
        let mut ram_upsets = Vec::with_capacity(r.len(28)?);
        for _ in 0..ram_upsets.capacity() {
            let cell = CellId(r.u32()?);
            let addr = r.usize()?;
            let bit = r.usize()?;
            let due = r.u64()?;
            ram_upsets.push((cell, addr, bit, due));
        }
        let event_cap = r.u64()?;
        let last_eval = match r.u8()? {
            0 => None,
            1 => Some(CellId(r.u32()?)),
            other => {
                return Err(Error::SnapshotDecode { detail: format!("bad last_eval tag {other}") })
            }
        };
        r.finish()?;
        Ok(Snapshot {
            values,
            projected,
            staged_inputs,
            stats,
            pending,
            wheel,
            enqueued_at,
            ram_contents,
            carry_state,
            cycle,
            stuck,
            flips,
            ram_upsets,
            event_cap,
            last_eval,
        })
    }
}

/// Cycle-accurate simulator over an owned [`Netlist`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_rtl::builder::NetlistBuilder;
/// use dwt_rtl::sim::Simulator;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 8)?;
/// let y = b.input("y", 8)?;
/// let sum = b.carry_add("sum", &x, &y, 9)?;
/// let q = b.register("q", &sum)?;
/// b.output("out", &q)?;
///
/// let mut sim = Simulator::new(b.finish()?)?;
/// sim.set_input("x", 100)?;
/// sim.set_input("y", -30)?;
/// sim.tick(); // inputs propagate to the adder
/// sim.tick(); // the register captures the sum
/// assert_eq!(sim.peek("out")?, 70);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    netlist: Netlist,
    values: Vec<bool>,
    staged_inputs: Vec<(Bus, i64)>,
    stats: ActivityStats,
    /// The value each net will have once every scheduled change has
    /// applied; evals compare against this so a change is scheduled only
    /// once.
    projected: Vec<bool>,
    /// Per-net scheduled (time, value) changes awaiting delivery, in
    /// time order; inertial pulse filtering cancels back-to-back
    /// opposite changes closer than [`Self::MIN_PULSE`].
    pending: Vec<std::collections::VecDeque<(u32, bool)>>,
    /// Capacitance class of each net, precomputed from its fanout.
    net_class: Vec<NetClass>,
    /// Event wheel: `(time, kind, id, value)` where kind 0 = net value
    /// change (id = net, `value` is the new level) and kind 1 = cell
    /// evaluation (id = cell). Net changes at an instant apply before
    /// cell evaluations at that instant.
    wheel: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u8, u32, bool)>>,
    /// Last time each cell was enqueued, to coalesce same-time events.
    enqueued_at: Vec<u32>,
    register_ids: Vec<CellId>,
    /// Contents of each RAM cell (empty vec for non-RAM cells).
    ram_contents: Vec<Vec<i64>>,
    /// Internal carry bits of each carry-chain adder, as a bitmask, so
    /// carry transitions (which happen inside the chain's LEs and burn
    /// energy like any other transition) can be counted per evaluation.
    carry_state: Vec<u64>,
    /// Absolute tick count since construction. Unlike
    /// [`ActivityStats::cycles`] it survives [`Simulator::reset_stats`],
    /// so transient faults armed by cycle number stay on schedule.
    cycle: u64,
    /// Injected stuck-at levels by net index; every write to a stuck net
    /// is clamped to the forced level.
    stuck: std::collections::HashMap<u32, bool>,
    /// Armed transient register upsets: `(register, bit, cycle)`.
    flips: Vec<(CellId, usize, u64)>,
    /// Armed RAM upsets: `(cell, addr, bit, cycle)`.
    ram_upsets: Vec<(CellId, usize, usize, u64)>,
    /// Event budget per drain; exceeding it reports
    /// [`Error::SimulationDiverged`] instead of hanging.
    event_cap: u64,
    /// Name of the cell most recently evaluated by the event loop, for
    /// divergence diagnostics.
    last_eval: Option<CellId>,
}

impl Simulator {
    /// Wraps a netlist, initialising all nets to 0 (registers power up
    /// cleared) and settling constants and combinational logic.
    ///
    /// # Errors
    ///
    /// Currently infallible for validated netlists; kept fallible for
    /// future device-specific checks.
    pub fn new(netlist: Netlist) -> Result<Self> {
        let register_ids = netlist.registers().to_vec();
        // Classify nets: a net stays on LAB-local wiring when its only
        // readers are registers (folded flip-flop D pins) or the carry
        // input of the neighbouring full adder; any other reader — an
        // adder operand, a LUT, a word operator — is reached through
        // general routing. Output ports count as routed.
        let mut net_class = vec![NetClass::Local; netlist.net_count()];
        for (idx, class) in net_class.iter_mut().enumerate() {
            let net = crate::net::NetId(idx as u32);
            let routed_reader = netlist.fanout(net).iter().any(|&r| match &netlist.cell(r).kind {
                CellKind::Register { .. } => false,
                CellKind::FullAdder { cin, .. } => *cin != net,
                _ => true,
            });
            if routed_reader {
                *class = NetClass::Routed;
            }
        }
        for port in netlist.ports().values() {
            if port.direction == PortDirection::Output {
                for &net in port.bus.bits() {
                    net_class[net.index()] = NetClass::Routed;
                }
            }
        }
        let mut sim = Simulator {
            values: vec![false; netlist.net_count()],
            projected: vec![false; netlist.net_count()],
            pending: vec![std::collections::VecDeque::new(); netlist.net_count()],
            net_class,
            staged_inputs: Vec::new(),
            stats: ActivityStats {
                cell_toggles: vec![0; netlist.cell_count()],
                ..ActivityStats::default()
            },
            wheel: std::collections::BinaryHeap::new(),
            enqueued_at: vec![u32::MAX; netlist.cell_count()],
            register_ids,
            ram_contents: netlist
                .cells()
                .iter()
                .map(|c| match &c.kind {
                    CellKind::Ram { words, .. } => vec![0i64; *words],
                    _ => Vec::new(),
                })
                .collect(),
            carry_state: vec![0; netlist.cell_count()],
            cycle: 0,
            stuck: std::collections::HashMap::new(),
            flips: Vec::new(),
            ram_upsets: Vec::new(),
            event_cap: Self::default_event_cap(netlist.cell_count()),
            last_eval: None,
            netlist,
        };
        // Power-on settle: evaluate every combinational cell in topo
        // order (constants included), without counting transitions.
        for i in 0..sim.netlist.topo_order().len() {
            let id = sim.netlist.topo_order()[i];
            sim.eval_cell_silent(id);
        }
        sim.stats = ActivityStats {
            cell_toggles: vec![0; sim.netlist.cell_count()],
            ..ActivityStats::default()
        };
        Ok(sim)
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Accumulated switching statistics.
    #[must_use]
    pub fn stats(&self) -> &ActivityStats {
        &self.stats
    }

    /// Clears the switching statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = ActivityStats {
            cell_toggles: vec![0; self.netlist.cell_count()],
            ..ActivityStats::default()
        };
    }

    /// Stages a value on an input port; it is applied at the next
    /// [`Simulator::tick`] or [`Simulator::settle`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] for an unknown or non-input port,
    /// or [`Error::ValueOutOfRange`] if the value does not fit.
    pub fn set_input(&mut self, name: &str, value: i64) -> Result<()> {
        let port = self.netlist.port(name)?;
        if port.direction != PortDirection::Input {
            return Err(Error::UnknownPort { name: name.to_owned() });
        }
        port.bus.check_value(value)?;
        let bus = port.bus.clone();
        self.staged_inputs.push((bus, value));
        Ok(())
    }

    /// Reads the current signed value of any port.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if the port does not exist.
    pub fn peek(&self, name: &str) -> Result<i64> {
        let port = self.netlist.port(name)?;
        Ok(self.read_bus(&port.bus))
    }

    /// Reads the current signed value of an arbitrary bus.
    #[must_use]
    pub fn read_bus(&self, bus: &Bus) -> i64 {
        let bits: Vec<bool> = bus.bits().iter().map(|n| self.values[n.index()]).collect();
        bits_to_signed(&bits)
    }

    /// Reads a bus as a raw (zero-extended) bit pattern.
    fn read_bus_unsigned(&self, bus: &Bus) -> i64 {
        bus.bits()
            .iter()
            .enumerate()
            .fold(0i64, |acc, (i, n)| acc | ((self.values[n.index()] as i64) << i))
    }

    /// One clock cycle: registers capture their (settled) data inputs,
    /// then the staged input changes and new register outputs propagate
    /// through the combinational network, counting every transition.
    ///
    /// # Panics
    ///
    /// Panics if the event loop diverges (see [`Simulator::try_tick`]
    /// for the fallible form). A validated netlist without injected
    /// faults cannot diverge under the default event budget.
    pub fn tick(&mut self) {
        self.try_tick().unwrap_or_else(|e| panic!("tick: {e}"));
    }

    /// As [`Simulator::tick`], reporting divergence instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SimulationDiverged`] naming the offending cell
    /// if the cycle's event count exceeds the budget — an oscillating
    /// netlist that would otherwise hang the simulation.
    pub fn try_tick(&mut self) -> Result<()> {
        // 0. RAM upsets strike at the clock edge, before anything reads
        // the array this cycle.
        let mut ram_reeval: Vec<CellId> = Vec::new();
        let cycle = self.cycle;
        let mut due_ram = Vec::new();
        self.ram_upsets.retain(|&u| {
            if u.3 == cycle {
                due_ram.push(u);
                false
            } else {
                true
            }
        });
        for (id, addr, bit, _) in due_ram {
            self.ram_contents[id.index()][addr] ^= 1 << bit;
            ram_reeval.push(id);
        }
        // 1. Capture D of every register from the settled state.
        let mut new_q: Vec<(CellId, Vec<bool>)> = Vec::with_capacity(self.register_ids.len());
        for &id in &self.register_ids {
            if let CellKind::Register { d, .. } = &self.netlist.cell(id).kind {
                let bits = d.bits().iter().map(|n| self.values[n.index()]).collect();
                new_q.push((id, bits));
            }
        }
        // 1a. Transient upsets strike the captured bits of this edge.
        let mut due_flips = Vec::new();
        self.flips.retain(|&f| {
            if f.2 == cycle {
                due_flips.push(f);
                false
            } else {
                true
            }
        });
        for (reg, bit, _) in due_flips {
            if let Some((_, bits)) = new_q.iter_mut().find(|(id, _)| *id == reg) {
                bits[bit] = !bits[bit];
            }
        }
        // 1b. Commit RAM writes from the settled state, and collect the
        // RAM cells whose visible read data changes as a result.
        for i in 0..self.netlist.cell_count() {
            let id = CellId(i as u32);
            if let CellKind::Ram { words, raddr, waddr, wdata, wen, .. } =
                &self.netlist.cell(id).kind
            {
                if self.values[wen.index()] {
                    let addr = self.read_bus_unsigned(waddr) as usize;
                    if addr < *words {
                        let value = self.read_bus(wdata);
                        if self.ram_contents[i][addr] != value {
                            self.ram_contents[i][addr] = value;
                            // If the read port currently points at the
                            // written word, the read data must update.
                            if self.read_bus_unsigned(raddr) as usize == addr {
                                ram_reeval.push(id);
                            }
                        }
                    }
                }
            }
        }
        // 2. Apply register outputs and staged inputs simultaneously.
        let mut changed: Vec<NetId> = Vec::new();
        for (id, bits) in new_q {
            if let CellKind::Register { q, .. } = &self.netlist.cell(id).kind {
                for (i, &b) in bits.iter().enumerate() {
                    let net = q.bit(i);
                    let b = self.stuck.get(&net.0).copied().unwrap_or(b);
                    if self.values[net.index()] != b {
                        self.values[net.index()] = b;
                        self.projected[net.index()] = b;
                        self.stats.ff_toggles += 1;
                        changed.push(net);
                    }
                }
            }
        }
        let staged = std::mem::take(&mut self.staged_inputs);
        for (bus, value) in staged {
            let bits = signed_to_bits(value, bus.width());
            for (i, &b) in bits.iter().enumerate() {
                let net = bus.bit(i);
                let b = self.stuck.get(&net.0).copied().unwrap_or(b);
                if self.values[net.index()] != b {
                    self.values[net.index()] = b;
                    self.projected[net.index()] = b;
                    changed.push(net);
                }
            }
        }
        // 3. Drain.
        self.schedule_fanout(&changed, 0);
        for id in ram_reeval {
            self.enqueue(id, 1);
        }
        self.drain()?;
        self.stats.cycles += 1;
        self.cycle += 1;
        Ok(())
    }

    /// Applies staged inputs and settles the combinational logic without
    /// clocking the registers (for purely combinational studies).
    ///
    /// # Panics
    ///
    /// Panics if the event loop diverges (see [`Simulator::try_settle`]
    /// for the fallible form).
    pub fn settle(&mut self) {
        self.try_settle().unwrap_or_else(|e| panic!("settle: {e}"));
    }

    /// As [`Simulator::settle`], reporting divergence instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SimulationDiverged`] naming the offending cell
    /// if the event count exceeds the budget.
    pub fn try_settle(&mut self) -> Result<()> {
        let mut changed: Vec<NetId> = Vec::new();
        let staged = std::mem::take(&mut self.staged_inputs);
        for (bus, value) in staged {
            let bits = signed_to_bits(value, bus.width());
            for (i, &b) in bits.iter().enumerate() {
                let net = bus.bit(i);
                let b = self.stuck.get(&net.0).copied().unwrap_or(b);
                if self.values[net.index()] != b {
                    self.values[net.index()] = b;
                    self.projected[net.index()] = b;
                    changed.push(net);
                }
            }
        }
        self.schedule_fanout(&changed, 0);
        self.drain()
    }

    fn schedule_fanout(&mut self, nets: &[NetId], time: u32) {
        for &net in nets {
            for i in 0..self.netlist.fanout(net).len() {
                let reader = self.netlist.fanout(net)[i];
                if self.netlist.cell(reader).kind.is_combinational() {
                    self.enqueue(reader, time + 1);
                }
            }
        }
    }

    fn enqueue(&mut self, cell: CellId, time: u32) {
        if self.enqueued_at[cell.index()] == time {
            return; // already scheduled for this instant
        }
        self.enqueued_at[cell.index()] = time;
        self.wheel.push(std::cmp::Reverse((time, 1, cell.0, false)));
    }

    /// Minimum pulse width (in delay units) that survives propagation;
    /// narrower glitch pulses are filtered inertially, as the routing
    /// capacitance swallows them before they reach full swing.
    const MIN_PULSE: u32 = 2;

    fn drain(&mut self) -> Result<()> {
        let mut events: u64 = 0;
        while let Some(std::cmp::Reverse((time, kind, raw, _value))) = self.wheel.pop() {
            events += 1;
            if events > self.event_cap {
                // Discard the residual event state so the simulator stays
                // usable (values are left as-is — the netlist was
                // oscillating, so no settled state exists to restore).
                self.wheel.clear();
                for q in &mut self.pending {
                    q.clear();
                }
                for e in &mut self.enqueued_at {
                    *e = u32::MAX;
                }
                self.projected.clone_from(&self.values);
                let cell = self
                    .last_eval
                    .map(|id| self.netlist.cell(id).name.clone())
                    .unwrap_or_else(|| "<none>".to_owned());
                return Err(Error::SimulationDiverged { cell, cycle: self.cycle, events });
            }
            if kind == 0 {
                // Net value change token: deliver the queued change if it
                // has not been cancelled by inertial filtering.
                let net = NetId(raw);
                let deliver = match self.pending[net.index()].front() {
                    Some(&(t, _)) if t == time => self.pending[net.index()].pop_front(),
                    _ => None,
                };
                if let Some((_, value)) = deliver {
                    let value = self.stuck.get(&net.0).copied().unwrap_or(value);
                    if self.values[net.index()] != value {
                        self.values[net.index()] = value;
                        if let Some(driver) = self.netlist.driver(net) {
                            self.stats.cell_toggles[driver.index()] += 1;
                        }
                        match self.net_class[net.index()] {
                            NetClass::Routed => self.stats.routed_toggles += 1,
                            NetClass::Local => self.stats.local_toggles += 1,
                        }
                        self.schedule_fanout(&[net], time);
                    }
                }
            } else {
                // Cell evaluation.
                let id = CellId(raw);
                if self.enqueued_at[id.index()] == time {
                    self.enqueued_at[id.index()] = u32::MAX;
                }
                self.last_eval = Some(id);
                self.eval_cell(id, time);
            }
        }
        Ok(())
    }

    /// Evaluates a cell against the current net values and schedules the
    /// resulting output changes as future net events, so downstream cells
    /// observe staggered (glitching) arrivals exactly as hardware does.
    ///
    /// A deterministic per-net jitter models placement-dependent routing
    /// spread: nets of one bus arrive at slightly different instants, the
    /// main source of glitching in deep combinational cones. The jitter
    /// is a pure function of the net id, so event delivery per net stays
    /// first-in-first-out and results remain reproducible.
    fn eval_cell(&mut self, id: CellId, time: u32) {
        let outs = self.compute(id);
        for (net, bit, extra) in outs {
            let bit = self.stuck.get(&net.0).copied().unwrap_or(bit);
            if self.projected[net.index()] != bit {
                let jitter = (net.0.wrapping_mul(2_654_435_761) >> 28) % 3;
                let mut at = time + 1 + extra + jitter;
                // Keep per-net delivery order monotone: a fast (e.g.
                // provisional) change computed after a slow one cannot
                // arrive before it.
                if let Some(&(t_back, _)) = self.pending[net.index()].back() {
                    at = at.max(t_back);
                }
                // Inertial filtering: a change that re-reverses a pending
                // opposite change within MIN_PULSE cancels the pulse.
                let cancelled = match self.pending[net.index()].back() {
                    Some(&(t, v)) if v != bit && at.saturating_sub(t) <= Self::MIN_PULSE => {
                        self.pending[net.index()].pop_back();
                        true
                    }
                    _ => false,
                };
                self.projected[net.index()] = bit;
                if !cancelled {
                    self.pending[net.index()].push_back((at, bit));
                    self.wheel.push(std::cmp::Reverse((at, 0, net.0, bit)));
                }
            }
        }
        // Internal carry transitions of chain adders.
        let carries = self.chain_carries(id);
        if let Some(c) = carries {
            let flips = (c ^ self.carry_state[id.index()]).count_ones();
            self.stats.cell_toggles[id.index()] += u64::from(flips);
            self.stats.carry_toggles += u64::from(flips);
            self.carry_state[id.index()] = c;
        }
    }

    fn eval_cell_silent(&mut self, id: CellId) {
        for (net, bit, _) in self.compute(id) {
            let bit = self.stuck.get(&net.0).copied().unwrap_or(bit);
            self.values[net.index()] = bit;
            self.projected[net.index()] = bit;
        }
        if let Some(c) = self.chain_carries(id) {
            self.carry_state[id.index()] = c;
        }
    }

    /// The internal carry bits of a carry-chain adder for its current
    /// inputs, or `None` for other cell kinds. Carry `i` is the carry
    /// *out of* bit position `i` of `a op b` (unsigned chain semantics).
    fn chain_carries(&self, id: CellId) -> Option<u64> {
        let (a, b, sub, width) = match &self.netlist.cell(id).kind {
            CellKind::CarryAdd { a, b, out } => (a, b, false, out.width()),
            CellKind::CarrySub { a, b, out } => (a, b, true, out.width()),
            _ => return None,
        };
        let read_u = |bus: &Bus| -> u64 {
            bus.bits()
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, n)| acc | ((self.values[n.index()] as u64) << i))
        };
        let av = read_u(a);
        let bv = if sub { !read_u(b) } else { read_u(b) };
        let cin = u64::from(sub);
        // carries = (a + b + cin) ^ a ^ b, shifted into carry-out view.
        let sum = av.wrapping_add(bv).wrapping_add(cin);
        let internal = (sum ^ av ^ bv) >> 1; // carry INTO each position
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        Some(internal & mask)
    }

    /// Carry-chain output bits ripple: each group of this many bit
    /// positions adds one unit of propagation delay, so downstream cells
    /// see staggered arrivals and glitch accordingly.
    const CARRY_BITS_PER_UNIT: u32 = 1;

    /// Computes a cell's output bits from the current net values,
    /// returning `(net, value, extra-delay)` triples.
    fn compute(&self, id: CellId) -> Vec<(NetId, bool, u32)> {
        let v = |n: NetId| self.values[n.index()];
        // A carry-chain adder's sum LUTs respond to their direct inputs
        // immediately (provisional value a^b^cin-without-carry) and are
        // corrected as the carry ripples in — so downstream logic sees
        // the same double transitions a bit-level ripple adder produces.
        let word = |out: &Bus, value: i64, provisional: u64| -> Vec<(NetId, bool, u32)> {
            let mut events = Vec::with_capacity(out.width() * 2);
            for (i, b) in signed_to_bits(value, out.width()).into_iter().enumerate() {
                let ripple = i as u32 / Self::CARRY_BITS_PER_UNIT;
                let prov = provisional & (1 << i) != 0;
                if prov != b && ripple > 0 {
                    events.push((out.bit(i), prov, 0));
                }
                events.push((out.bit(i), b, ripple));
            }
            events
        };
        match &self.netlist.cell(id).kind {
            CellKind::Lut { inputs, table, output } => {
                let idx = inputs
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (i, &n)| acc | ((v(n) as usize) << i));
                vec![(*output, table & (1 << idx) != 0, 0)]
            }
            CellKind::FullAdder { a, b, cin, sum, cout, invert_b } => {
                let (a, mut b, c) = (v(*a), v(*b), v(*cin));
                if *invert_b {
                    b = !b;
                }
                let s = a ^ b ^ c;
                let co = (a & b) | (a & c) | (b & c);
                vec![(*sum, s, 0), (*cout, co, 0)]
            }
            CellKind::CarryAdd { a, b, out } => {
                let sum = self.read_bus(a) + self.read_bus(b);
                let prov = (self.read_bus_unsigned(a) ^ self.read_bus_unsigned(b)) as u64;
                word(out, sum, prov)
            }
            CellKind::CarrySub { a, b, out } => {
                let diff = self.read_bus(a) - self.read_bus(b);
                let prov = !(self.read_bus_unsigned(a) ^ self.read_bus_unsigned(b)) as u64;
                word(out, diff, prov)
            }
            CellKind::Constant { value, out } => {
                let bits = signed_to_bits(*value, out.width());
                bits.into_iter().enumerate().map(|(i, b)| (out.bit(i), b, 0)).collect()
            }
            CellKind::Register { .. } => vec![],
            CellKind::Ram { words, raddr, rdata, .. } => {
                let addr = self.read_bus_unsigned(raddr) as usize;
                let value = if addr < *words { self.ram_contents[id.index()][addr] } else { 0 };
                signed_to_bits(value, rdata.width())
                    .into_iter()
                    .enumerate()
                    .map(|(i, b)| (rdata.bit(i), b, 0))
                    .collect()
            }
        }
    }

    /// Captures every piece of mutable simulator state, bit-exactly.
    ///
    /// The capture includes in-flight events, so a snapshot may be
    /// taken at any point — though the natural checkpoint is right
    /// after a [`Simulator::tick`], when the event wheel is empty.
    /// Restoring the snapshot with [`Simulator::restore`] resumes the
    /// simulation in a state indistinguishable from the original.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut wheel: Vec<_> = self.wheel.iter().copied().collect();
        wheel.sort_unstable();
        let mut stuck: Vec<(u32, bool)> = self.stuck.iter().map(|(&n, &v)| (n, v)).collect();
        stuck.sort_unstable();
        Snapshot {
            values: self.values.clone(),
            projected: self.projected.clone(),
            staged_inputs: self.staged_inputs.clone(),
            stats: self.stats.clone(),
            pending: self.pending.clone(),
            wheel,
            enqueued_at: self.enqueued_at.clone(),
            ram_contents: self.ram_contents.clone(),
            carry_state: self.carry_state.clone(),
            cycle: self.cycle,
            stuck,
            flips: self.flips.clone(),
            ram_upsets: self.ram_upsets.clone(),
            event_cap: self.event_cap,
            last_eval: self.last_eval,
        }
    }

    /// Rewinds the simulator to a previously captured [`Snapshot`],
    /// discarding all state accumulated since — including injected
    /// faults, which revert to whatever was armed at capture time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotMismatch`] if the snapshot was taken
    /// from a netlist of different shape (net or cell counts differ);
    /// the simulator is left untouched in that case.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<()> {
        if snap.values.len() != self.netlist.net_count()
            || snap.carry_state.len() != self.netlist.cell_count()
        {
            return Err(Error::SnapshotMismatch {
                snapshot_nets: snap.values.len(),
                simulator_nets: self.netlist.net_count(),
                snapshot_cells: snap.carry_state.len(),
                simulator_cells: self.netlist.cell_count(),
            });
        }
        self.values.clone_from(&snap.values);
        self.projected.clone_from(&snap.projected);
        self.staged_inputs.clone_from(&snap.staged_inputs);
        self.stats = snap.stats.clone();
        self.pending.clone_from(&snap.pending);
        self.wheel = snap.wheel.iter().copied().collect();
        self.enqueued_at.clone_from(&snap.enqueued_at);
        self.ram_contents.clone_from(&snap.ram_contents);
        self.carry_state.clone_from(&snap.carry_state);
        self.cycle = snap.cycle;
        self.stuck = snap.stuck.iter().copied().collect();
        self.flips.clone_from(&snap.flips);
        self.ram_upsets.clone_from(&snap.ram_upsets);
        self.event_cap = snap.event_cap;
        self.last_eval = snap.last_eval;
        Ok(())
    }

    /// Reads the current signed Q-side value of a named register cell
    /// (test-bench state inspection, e.g. snapshot round-trip checks).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if no register cell has that name.
    pub fn peek_register(&self, name: &str) -> Result<i64> {
        let id = self
            .netlist
            .cells()
            .iter()
            .position(|c| c.name == name && matches!(c.kind, CellKind::Register { .. }))
            .map(|i| CellId(i as u32))
            .ok_or_else(|| Error::UnknownPort { name: name.to_owned() })?;
        match &self.netlist.cell(id).kind {
            CellKind::Register { q, .. } => Ok(self.read_bus(q)),
            _ => unreachable!("matched a register"),
        }
    }

    /// Writes one word into a RAM cell directly (test-bench preload),
    /// bypassing the write port.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if no RAM cell has that name, or
    /// [`Error::ValueOutOfRange`] if the address is out of bounds.
    pub fn poke_ram(&mut self, name: &str, addr: usize, value: i64) -> Result<()> {
        let id = self.find_ram(name)?;
        let words = self.ram_contents[id.index()].len();
        if addr >= words {
            return Err(Error::ValueOutOfRange { value: addr as i64, width: words });
        }
        self.ram_contents[id.index()][addr] = value;
        // Refresh the read port if it is looking at this word.
        self.eval_cell_silent(id);
        Ok(())
    }

    /// Reads one word from a RAM cell directly (test-bench readback).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if no RAM cell has that name, or
    /// [`Error::ValueOutOfRange`] for an out-of-bounds address.
    pub fn peek_ram(&self, name: &str, addr: usize) -> Result<i64> {
        let id = self.find_ram(name)?;
        self.ram_contents[id.index()].get(addr).copied().ok_or(Error::ValueOutOfRange {
            value: addr as i64,
            width: self.ram_contents[id.index()].len(),
        })
    }

    /// Arms a fault on the running simulation.
    ///
    /// * [`FaultSpec::StuckAt`] takes effect immediately: the net snaps
    ///   to the forced level, the disturbance propagates through the
    ///   combinational logic (counting transitions like any real event),
    ///   and from then on every write to the net is clamped.
    /// * [`FaultSpec::BitFlip`] and [`FaultSpec::RamUpset`] lie dormant
    ///   until the tick whose zero-based [`Simulator::cycle`] index
    ///   matches, strike once, and disarm.
    ///
    /// Activity accounting is unchanged — injected transitions are real
    /// transitions, and the counters keep their usual meaning.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FaultTarget`] if the spec names a port, cell,
    /// register or RAM the netlist does not have, or addresses one out
    /// of bounds; [`Error::SimulationDiverged`] if applying a stuck-at
    /// fails to settle.
    pub fn inject(&mut self, spec: &FaultSpec) -> Result<()> {
        match fault::resolve(&self.netlist, spec)? {
            ResolvedFault::Stuck { net, value } => {
                self.stuck.insert(net.0, value);
                if self.values[net.index()] != value {
                    self.values[net.index()] = value;
                    self.projected[net.index()] = value;
                    self.schedule_fanout(&[net], 0);
                    self.drain()?;
                }
            }
            ResolvedFault::Flip { register, bit, cycle } => {
                self.flips.push((register, bit, cycle));
            }
            ResolvedFault::Ram { cell, addr, bit, cycle } => {
                self.ram_upsets.push((cell, addr, bit, cycle));
            }
        }
        Ok(())
    }

    /// Disarms every pending fault and lifts all stuck-at clamps.
    ///
    /// A formerly stuck net keeps its forced level until the next event
    /// re-drives it; campaigns wanting a pristine machine should build a
    /// fresh [`Simulator`] per fault instead.
    pub fn clear_faults(&mut self) {
        self.stuck.clear();
        self.flips.clear();
        self.ram_upsets.clear();
    }

    /// Absolute tick count since construction (not reset by
    /// [`Simulator::reset_stats`]); transient faults are scheduled
    /// against this clock.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Overrides the per-drain event budget (mainly for tests; the
    /// default scales with netlist size and is far above anything a
    /// settling netlist produces).
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Default event budget per drain: a validated netlist settles in
    /// O(depth × cells) events, orders of magnitude below this.
    fn default_event_cap(cells: usize) -> u64 {
        (cells as u64 + 64) * 1024
    }

    fn find_ram(&self, name: &str) -> Result<CellId> {
        self.netlist
            .cells()
            .iter()
            .position(|c| c.name == name && matches!(c.kind, CellKind::Ram { .. }))
            .map(|i| CellId(i as u32))
            .ok_or_else(|| Error::UnknownPort { name: name.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn combinational_add_and_sub() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let s = b.carry_add("s", &x, &y, 9).unwrap();
        let d = b.carry_sub("d", &x, &y, 9).unwrap();
        b.output("sum", &s).unwrap();
        b.output("diff", &d).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        for (a, c) in [(5i64, 7i64), (-128, 127), (-1, -1), (100, -100)] {
            sim.set_input("x", a).unwrap();
            sim.set_input("y", c).unwrap();
            sim.settle();
            assert_eq!(sim.peek("sum").unwrap(), a + c);
            assert_eq!(sim.peek("diff").unwrap(), a - c);
        }
    }

    #[test]
    fn ripple_add_matches_carry_add() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let s1 = b.carry_add("s1", &x, &y, 9).unwrap();
        let s2 = b.ripple_add("s2", &x, &y, 9).unwrap();
        let d1 = b.carry_sub("d1", &x, &y, 9).unwrap();
        let d2 = b.ripple_sub("d2", &x, &y, 9).unwrap();
        b.output("o1", &s1).unwrap();
        b.output("o2", &s2).unwrap();
        b.output("o3", &d1).unwrap();
        b.output("o4", &d2).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        for a in (-128..=127).step_by(17) {
            for c in (-128..=127).step_by(23) {
                sim.set_input("x", a).unwrap();
                sim.set_input("y", c).unwrap();
                sim.settle();
                assert_eq!(sim.peek("o1").unwrap(), sim.peek("o2").unwrap());
                assert_eq!(sim.peek("o3").unwrap(), sim.peek("o4").unwrap());
            }
        }
    }

    #[test]
    fn wraparound_matches_twos_complement() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let y = b.input("y", 4).unwrap();
        let s = b.carry_add("s", &x, &y, 4).unwrap();
        b.output("o", &s).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", 7).unwrap();
        sim.set_input("y", 2).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), -7); // 9 wraps in 4 bits
    }

    #[test]
    fn register_pipeline_latency() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let r1 = b.register("r1", &x).unwrap();
        let r2 = b.register("r2", &r1).unwrap();
        b.output("o", &r2).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", 42).unwrap();
        sim.tick();
        assert_eq!(sim.peek("o").unwrap(), 0); // two-stage latency
        sim.tick();
        assert_eq!(sim.peek("o").unwrap(), 0);
        sim.tick();
        assert_eq!(sim.peek("o").unwrap(), 42);
    }

    #[test]
    fn counter_counts() {
        let mut b = NetlistBuilder::new();
        let one = b.constant(1, 4).unwrap();
        let (q, feed) = b.register_loop("count", 4).unwrap();
        let next = b.carry_add("inc", &q, &one, 4).unwrap();
        feed.connect(&mut b, &next).unwrap();
        b.output("count", &q).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        for expected in 1..=7 {
            sim.tick();
            assert_eq!(sim.peek("count").unwrap(), expected);
        }
    }

    #[test]
    fn shift_semantics() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let l = b.shift_left(&x, 2).unwrap();
        let r = b.shift_right_arith(&x, 2).unwrap();
        b.output("l", &l).unwrap();
        b.output("r", &r).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        for v in [-128i64, -37, -1, 0, 1, 55, 127] {
            sim.set_input("x", v).unwrap();
            sim.settle();
            assert_eq!(sim.peek("l").unwrap(), v * 4, "left shift of {v}");
            assert_eq!(sim.peek("r").unwrap(), v >> 2, "right shift of {v}");
        }
    }

    #[test]
    fn glitches_grow_with_combinational_depth() {
        // A chain of dependent adders (deep cone) must produce more
        // transitions per cycle than the same adders fed in parallel
        // (flat cone), because late-arriving inputs force re-evaluation.
        fn chain(depth: usize) -> Simulator {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).unwrap();
            let mut acc = x.clone();
            for i in 0..depth {
                // Alternate add/sub so values stay bounded.
                acc = if i % 2 == 0 {
                    b.carry_add(&format!("a{i}"), &acc, &x, 12).unwrap()
                } else {
                    b.carry_sub(&format!("a{i}"), &acc, &x, 12).unwrap()
                };
            }
            b.output("o", &acc).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        }
        let run = |mut sim: Simulator| {
            let mut v = 1i64;
            for i in 0..200 {
                v = (v * 29 + i).rem_euclid(128) - 64;
                sim.set_input("x", v).unwrap();
                sim.tick();
            }
            sim.stats().toggles_per_cycle()
        };
        let shallow = run(chain(2));
        let deep = run(chain(8));
        assert!(deep > shallow * 2.0, "deep {deep} should glitch much more than shallow {shallow}");
    }

    #[test]
    fn registers_stop_glitch_propagation() {
        // Same logical function, but with a pipeline register between the
        // two adders: transitions downstream of the register drop.
        fn build(pipelined: bool) -> Simulator {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).unwrap();
            let s1 = b.carry_add("s1", &x, &x, 10).unwrap();
            let mid = if pipelined { b.register("p", &s1).unwrap() } else { s1 };
            let s2 = b.carry_add("s2", &mid, &x, 11).unwrap();
            let s3 = b.carry_add("s3", &s2, &x, 12).unwrap();
            let q = b.register("q", &s3).unwrap();
            b.output("o", &q).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        }
        let run = |mut sim: Simulator| {
            let mut v = 3i64;
            for i in 0..500 {
                v = (v * 37 + i * 7).rem_euclid(255) - 128;
                sim.set_input("x", v).unwrap();
                sim.tick();
            }
            sim.stats().toggles_per_cycle()
        };
        let flat = run(build(false));
        let piped = run(build(true));
        assert!(piped < flat, "pipelined {piped} should not exceed unpipelined {flat}");
    }

    #[test]
    fn stats_reset() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let s = b.carry_add("s", &x, &x, 5).unwrap();
        b.output("o", &s).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", 3).unwrap();
        sim.tick();
        assert!(sim.stats().total_cell_toggles() > 0);
        sim.reset_stats();
        assert_eq!(sim.stats().total_cell_toggles(), 0);
        assert_eq!(sim.stats().cycles, 0);
    }

    #[test]
    fn stuck_at_clamps_every_write() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let s = b.carry_add("s", &x, &x, 5).unwrap();
        b.output("o", &s).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.inject(&FaultSpec::StuckAt { net: "x".into(), bit: 0, value: true }).unwrap();
        // Injection on a settled machine propagates immediately: x = 1.
        assert_eq!(sim.peek("o").unwrap(), 2);
        // Staged input writes are clamped too: 4 becomes 5.
        sim.set_input("x", 4).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), 10);
        sim.clear_faults();
        sim.set_input("x", 4).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), 8);
    }

    #[test]
    fn transient_flip_strikes_once_then_heals() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("o", &q).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.inject(&FaultSpec::BitFlip { register: "q".into(), bit: 2, cycle: 1 }).unwrap();
        sim.set_input("x", 0).unwrap();
        sim.tick(); // cycle 0: clean capture
        assert_eq!(sim.peek("o").unwrap(), 0);
        sim.tick(); // cycle 1: upset strikes the captured word
        assert_eq!(sim.peek("o").unwrap(), 4);
        sim.tick(); // cycle 2: next capture heals it
        assert_eq!(sim.peek("o").unwrap(), 0);
        assert_eq!(sim.cycle(), 3);
    }

    #[test]
    fn ram_upset_corrupts_stored_word() {
        let mut b = NetlistBuilder::new();
        let addr = b.constant(0, 2).unwrap();
        let x = b.input("x", 8).unwrap();
        let gnd = b.gnd().unwrap();
        let rd = b.ram("m", 4, 8, &addr, &addr, &x, gnd).unwrap();
        b.output("o", &rd).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.inject(&FaultSpec::RamUpset { ram: "m".into(), addr: 0, bit: 3, cycle: 1 }).unwrap();
        sim.tick();
        assert_eq!(sim.peek("o").unwrap(), 0);
        sim.tick(); // upset strikes at the edge, read port refreshes
        assert_eq!(sim.peek("o").unwrap(), 8);
        assert_eq!(sim.peek_ram("m", 0).unwrap(), 8);
    }

    #[test]
    fn event_cap_reports_divergence_with_cell_name() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let mut acc = x.clone();
        for i in 0..6 {
            acc = b.carry_add(&format!("a{i}"), &acc, &x, 12).unwrap();
        }
        b.output("o", &acc).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_event_cap(3);
        sim.set_input("x", 77).unwrap();
        let err = sim.try_settle().unwrap_err();
        match err {
            Error::SimulationDiverged { cell, cycle, events } => {
                assert!(cell.starts_with('a'), "unexpected cell '{cell}'");
                assert_eq!(cycle, 0);
                assert!(events > 3);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        // The machine stays usable once the budget is restored.
        sim.set_event_cap(1 << 20);
        sim.set_input("x", 3).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), 21);
    }

    #[test]
    fn injection_preserves_stats_semantics() {
        // Arming a dormant fault must not add transitions by itself.
        let build = || {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).unwrap();
            let s = b.carry_add("s", &x, &x, 9).unwrap();
            let q = b.register("q", &s).unwrap();
            b.output("o", &q).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        };
        let run = |mut sim: Simulator, arm: bool| {
            if arm {
                sim.inject(&FaultSpec::BitFlip { register: "q".into(), bit: 0, cycle: 1_000_000 })
                    .unwrap();
            }
            for v in [1i64, -5, 60, 0, 33] {
                sim.set_input("x", v).unwrap();
                sim.tick();
            }
            sim.stats().clone()
        };
        assert_eq!(run(build(), false), run(build(), true));
    }

    #[test]
    fn snapshot_restore_roundtrips_registers_ram_and_outputs() {
        let build = || {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).unwrap();
            let s = b.carry_add("s", &x, &x, 9).unwrap();
            let q = b.register("q", &s).unwrap();
            let addr = b.constant(0, 2).unwrap();
            let gnd = b.gnd().unwrap();
            let rd = b.ram("m", 4, 9, &addr, &addr, &q, gnd).unwrap();
            let q2 = b.register("q2", &rd).unwrap();
            b.output("o", &q2).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        };
        let stimulus = |i: i64| (i * 23 + 7).rem_euclid(200) - 100;
        let mut sim = build();
        for i in 0..10 {
            sim.set_input("x", stimulus(i)).unwrap();
            sim.tick();
        }
        let snap = sim.snapshot();
        assert_eq!(snap.cycle(), 10);
        assert!(!snap.has_armed_faults());
        // Reference continuation.
        let mut reference = Vec::new();
        for i in 10..25 {
            sim.set_input("x", stimulus(i * 3)).unwrap();
            sim.tick();
            reference.push(sim.peek("o").unwrap());
        }
        // Diverge the machine, then rewind and replay.
        for i in 0..7 {
            sim.set_input("x", stimulus(i + 99)).unwrap();
            sim.tick();
        }
        let q_before = sim.peek_register("q").unwrap();
        sim.restore(&snap).unwrap();
        assert_eq!(sim.cycle(), 10);
        assert_eq!(sim.snapshot(), snap, "restore is bit-exact");
        assert_ne!(sim.peek_register("q").unwrap(), q_before, "state rewound");
        let mut replay = Vec::new();
        for i in 10..25 {
            sim.set_input("x", stimulus(i * 3)).unwrap();
            sim.tick();
            replay.push(sim.peek("o").unwrap());
        }
        assert_eq!(replay, reference);
    }

    #[test]
    fn portable_snapshot_bytes_round_trip_and_reject_corruption() {
        use crate::engine::PortableSnapshot;
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s = b.carry_add("s", &x, &x, 9).unwrap();
        let q = b.register("q", &s).unwrap();
        let addr = b.constant(1, 2).unwrap();
        let vcc = b.vcc().unwrap();
        let rd = b.ram("m", 4, 9, &addr, &addr, &q, vcc).unwrap();
        let q2 = b.register("q2", &rd).unwrap();
        b.output("o", &q2).unwrap();
        let netlist = b.finish().unwrap();
        let mut sim = Simulator::new(netlist.clone()).unwrap();
        for i in 0..9 {
            sim.set_input("x", (i * 13) % 100 - 50).unwrap();
            sim.tick();
        }
        // Arm faults and stage an input so the optional state is
        // exercised by the codec, not just the dense vectors.
        sim.inject(&FaultSpec::StuckAt { net: "x".into(), bit: 0, value: true }).unwrap();
        sim.inject(&FaultSpec::BitFlip { register: "q".into(), bit: 2, cycle: 30 }).unwrap();
        sim.set_input("x", 17).unwrap();
        let snap = sim.snapshot();
        let bytes = snap.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snap, "byte round-trip is identity");

        // A restore from the decoded snapshot resumes bit-exactly.
        let mut other = Simulator::new(netlist).unwrap();
        other.restore(&decoded).unwrap();
        for i in 0..20 {
            let v = (i * 7) % 90 - 45;
            sim.set_input("x", v).unwrap();
            other.set_input("x", v).unwrap();
            sim.tick();
            other.tick();
            assert_eq!(sim.peek("o").unwrap(), other.peek("o").unwrap());
        }

        // Truncation at any point is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                matches!(Snapshot::from_bytes(&bytes[..cut]), Err(Error::SnapshotDecode { .. })),
                "truncation at {cut} must be rejected"
            );
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(Snapshot::from_bytes(&long), Err(Error::SnapshotDecode { .. })));
        // A wrong backend tag is rejected.
        let mut wrong = bytes;
        wrong[0] = b'C';
        assert!(matches!(Snapshot::from_bytes(&wrong), Err(Error::SnapshotDecode { .. })));
    }

    #[test]
    fn restore_reverts_injected_faults() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("o", &q).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", 11).unwrap();
        sim.tick();
        let snap = sim.snapshot();
        sim.inject(&FaultSpec::StuckAt { net: "x".into(), bit: 0, value: true }).unwrap();
        sim.inject(&FaultSpec::BitFlip { register: "q".into(), bit: 1, cycle: 5 }).unwrap();
        assert!(sim.snapshot().has_armed_faults());
        sim.restore(&snap).unwrap();
        assert!(!sim.snapshot().has_armed_faults());
        sim.set_input("x", 4).unwrap();
        sim.tick();
        sim.tick(); // staged input propagates, then the register captures
        assert_eq!(sim.peek("o").unwrap(), 4, "stuck clamp lifted by restore");
    }

    #[test]
    fn restore_rejects_foreign_netlists() {
        let small = {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 4).unwrap();
            b.output("o", &x).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        };
        let mut big = {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 8).unwrap();
            let s = b.carry_add("s", &x, &x, 9).unwrap();
            b.output("o", &s).unwrap();
            Simulator::new(b.finish().unwrap()).unwrap()
        };
        let snap = small.snapshot();
        match big.restore(&snap) {
            Err(Error::SnapshotMismatch { .. }) => {}
            other => panic!("expected SnapshotMismatch, got {other:?}"),
        }
    }

    #[test]
    fn peek_register_reads_q_side() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("o", &q).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.set_input("x", -42).unwrap();
        sim.tick();
        sim.tick(); // staged input propagates, then the register captures
        assert_eq!(sim.peek_register("q").unwrap(), -42);
        assert!(sim.peek_register("nope").is_err());
    }

    #[test]
    fn unknown_port_errors() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        b.output("o", &x).unwrap();
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        assert!(sim.set_input("nope", 0).is_err());
        assert!(sim.peek("nope").is_err());
        // Outputs cannot be driven.
        assert!(sim.set_input("o", 0).is_err());
        // Out-of-range values are rejected.
        assert!(sim.set_input("x", 100).is_err());
    }
}
