//! Netlist optimization passes: dead-cell elimination and constant
//! folding — the clean-up steps a synthesizer runs after elaboration.
//!
//! The generators in `dwt-arch` emit tidy netlists, but hierarchical
//! composition ([`crate::builder::NetlistBuilder::instantiate`]) can
//! leave unused outputs behind, and mode-muxed designs carry logic that
//! constant inputs would disable. These passes make such netlists
//! comparable to hand-trimmed ones:
//!
//! * [`eliminate_dead_cells`] — drops combinational cells (and
//!   registers) whose outputs reach no output port, register, or memory
//!   write port.
//! * [`fold_constants`] — evaluates LUTs whose inputs are all constant
//!   and re-expresses LUTs with *some* constant inputs over fewer
//!   inputs.

use std::collections::BTreeMap;

use crate::cell::{Cell, CellKind};
use crate::error::Result;
use crate::net::{Bus, NetId};
use crate::netlist::{Netlist, PortDirection};

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Cells removed as dead.
    pub dead_cells_removed: usize,
    /// LUTs fully evaluated into constants.
    pub luts_folded: usize,
    /// LUTs shrunk to fewer inputs.
    pub luts_shrunk: usize,
}

/// Removes cells whose outputs influence nothing observable.
///
/// Observability roots: output ports, every register's data input, and
/// every memory's address/data/enable pins (memories hold state the
/// host can read back).
///
/// # Errors
///
/// Re-validation of the pruned netlist can only fail on an internal
/// inconsistency; the error is propagated rather than panicking.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_rtl::builder::NetlistBuilder;
/// use dwt_rtl::opt::eliminate_dead_cells;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 4)?;
/// let used = b.carry_add("used", &x, &x, 5)?;
/// let _unused = b.carry_add("unused", &x, &x, 6)?;
/// b.output("o", &used)?;
/// let (netlist, stats) = eliminate_dead_cells(&b.finish()?)?;
/// assert_eq!(stats.dead_cells_removed, 1);
/// assert_eq!(netlist.census().carry_adders, 1);
/// # Ok(())
/// # }
/// ```
pub fn eliminate_dead_cells(netlist: &Netlist) -> Result<(Netlist, OptStats)> {
    let cell_count = netlist.cell_count();
    let mut live = vec![false; cell_count];

    // Seed the worklist with the observability roots.
    let mut work: Vec<NetId> = Vec::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            work.extend(port.bus.bits());
        }
    }
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Register { d, .. } => work.extend(d.bits()),
            CellKind::Ram { raddr, waddr, wdata, wen, .. } => {
                work.extend(raddr.bits());
                work.extend(waddr.bits());
                work.extend(wdata.bits());
                work.push(*wen);
            }
            _ => {}
        }
    }
    // Mark transitively: the driver of a live net is live, and so are
    // the drivers of its inputs.
    let mut seen_net = vec![false; netlist.net_count()];
    while let Some(net) = work.pop() {
        if std::mem::replace(&mut seen_net[net.index()], true) {
            continue;
        }
        if let Some(driver) = netlist.driver(net) {
            if !std::mem::replace(&mut live[driver.index()], true) {
                work.extend(netlist.cell(driver).kind.input_nets());
            }
        }
    }
    // Registers and RAMs are always kept (they are roots themselves),
    // unless the register's own output is entirely unobservable AND its
    // input only feeds itself — conservative: keep all state cells whose
    // outputs were reached; drop the rest.
    let mut kept: Vec<Cell> = Vec::new();
    let mut removed = 0;
    for (i, cell) in netlist.cells().iter().enumerate() {
        let keep = match &cell.kind {
            CellKind::Register { q, .. } => live[i] || q.bits().iter().any(|n| seen_net[n.index()]),
            CellKind::Ram { .. } => true,
            _ => live[i],
        };
        if keep {
            kept.push(cell.clone());
        } else {
            removed += 1;
        }
    }

    // Rebuild (the net space is kept as-is; dangling nets are legal to
    // drop because validation only requires *used* nets be driven —
    // they are no longer used).
    let rebuilt = rebuild(netlist, kept)?;
    Ok((rebuilt, OptStats { dead_cells_removed: removed, ..OptStats::default() }))
}

/// Folds constant LUT inputs: a LUT whose inputs are all constants
/// becomes a constant driver; partially constant LUTs shrink.
///
/// # Errors
///
/// Propagates re-validation failures (internal inconsistencies only).
pub fn fold_constants(netlist: &Netlist) -> Result<(Netlist, OptStats)> {
    // Collect known-constant nets.
    let mut value: BTreeMap<NetId, bool> = BTreeMap::new();
    for cell in netlist.cells() {
        if let CellKind::Constant { value: v, out } = &cell.kind {
            for (i, &net) in out.bits().iter().enumerate() {
                value.insert(net, (v >> i) & 1 != 0);
            }
        }
    }

    let mut stats = OptStats::default();
    let mut kept: Vec<Cell> = Vec::new();
    for cell in netlist.cells() {
        if let CellKind::Lut { inputs, table, output } = &cell.kind {
            let constant: Vec<Option<bool>> =
                inputs.iter().map(|n| value.get(n).copied()).collect();
            if constant.iter().all(Option::is_some) {
                // Fully constant: evaluate.
                let idx = constant
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (i, b)| acc | ((b.unwrap() as usize) << i));
                let bit = table & (1 << idx) != 0;
                value.insert(*output, bit);
                kept.push(Cell {
                    name: cell.name.clone(),
                    kind: CellKind::Constant {
                        value: if bit { -1 } else { 0 },
                        out: Bus::from(*output),
                    },
                });
                stats.luts_folded += 1;
                continue;
            }
            if constant.iter().any(Option::is_some) && inputs.len() > 1 {
                // Partially constant: specialise the table.
                let mut new_inputs = Vec::new();
                for (i, c) in constant.iter().enumerate() {
                    if c.is_none() {
                        new_inputs.push(inputs[i]);
                    }
                }
                let mut new_table: u16 = 0;
                for combo in 0..(1u16 << new_inputs.len()) {
                    // Rebuild the original index from the combo plus the
                    // constant bits.
                    let mut idx = 0usize;
                    let mut free = 0usize;
                    for (i, c) in constant.iter().enumerate() {
                        let bit = match c {
                            Some(b) => *b,
                            None => {
                                let b = combo & (1 << free) != 0;
                                free += 1;
                                b
                            }
                        };
                        if bit {
                            idx |= 1 << i;
                        }
                    }
                    if table & (1 << idx) != 0 {
                        new_table |= 1 << combo;
                    }
                }
                kept.push(Cell {
                    name: cell.name.clone(),
                    kind: CellKind::Lut { inputs: new_inputs, table: new_table, output: *output },
                });
                stats.luts_shrunk += 1;
                continue;
            }
        }
        kept.push(cell.clone());
    }

    let rebuilt = rebuild(netlist, kept)?;
    Ok((rebuilt, stats))
}

/// Re-validates a modified cell list against the original port set.
fn rebuild(netlist: &Netlist, cells: Vec<Cell>) -> Result<Netlist> {
    Netlist::revalidate(netlist, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cell::tables;
    use crate::sim::Simulator;

    #[test]
    fn dead_chain_is_removed_transitively() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let used = b.carry_add("used", &x, &x, 5).unwrap();
        let dead1 = b.carry_add("dead1", &x, &x, 5).unwrap();
        let _dead2 = b.carry_add("dead2", &dead1, &x, 6).unwrap();
        b.output("o", &used).unwrap();
        let (n, stats) = eliminate_dead_cells(&b.finish().unwrap()).unwrap();
        assert_eq!(stats.dead_cells_removed, 2);
        assert_eq!(n.census().carry_adders, 1);
    }

    #[test]
    fn live_logic_behaviour_is_preserved() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 6).unwrap();
        let s = b.carry_add("s", &x, &x, 7).unwrap();
        let _dead = b.carry_sub("dead", &x, &s, 8).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        let original = b.finish().unwrap();
        let (optimized, _) = eliminate_dead_cells(&original).unwrap();

        let run = |n: &crate::netlist::Netlist| {
            let mut sim = Simulator::new(n.clone()).unwrap();
            sim.set_input("x", 17).unwrap();
            sim.tick();
            sim.tick();
            sim.peek("o").unwrap()
        };
        assert_eq!(run(&original), run(&optimized));
        assert_eq!(run(&optimized), 34);
    }

    #[test]
    fn unused_instance_outputs_are_pruned() {
        // Instantiate a child with two outputs and use only one.
        let mut child = NetlistBuilder::new();
        let x = child.input("x", 4).unwrap();
        let a = child.carry_add("a", &x, &x, 5).unwrap();
        let m = child.carry_sub("m", &x, &a, 6).unwrap();
        child.output("sum", &a).unwrap();
        child.output("diff", &m).unwrap();
        let child = child.finish().unwrap();

        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let outs = b.instantiate(&child, "u_", &[("x".to_owned(), x)].into()).unwrap();
        b.output("o", &outs["sum"]).unwrap(); // "diff" unused
        let n = b.finish().unwrap();
        let (opt, stats) = eliminate_dead_cells(&n).unwrap();
        assert_eq!(stats.dead_cells_removed, 1);
        assert_eq!(opt.census().carry_adders, 1);
    }

    #[test]
    fn fully_constant_lut_becomes_constant() {
        let mut b = NetlistBuilder::new();
        let one = b.vcc().unwrap();
        let zero = b.gnd().unwrap();
        let y = b.lut("and", &[one, zero], tables::AND2).unwrap();
        b.output("o", &Bus::from(y)).unwrap();
        let n = b.finish().unwrap();
        let (opt, stats) = fold_constants(&n).unwrap();
        assert_eq!(stats.luts_folded, 1);
        let mut sim = Simulator::new(opt).unwrap();
        sim.settle();
        assert_eq!(sim.peek("o").unwrap(), 0);
    }

    #[test]
    fn partially_constant_lut_shrinks() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 1).unwrap();
        let one = b.vcc().unwrap();
        // AND(x, 1) == x.
        let y = b.lut("and", &[x.bit(0), one], tables::AND2).unwrap();
        b.output("o", &Bus::from(y)).unwrap();
        let n = b.finish().unwrap();
        let (opt, stats) = fold_constants(&n).unwrap();
        assert_eq!(stats.luts_shrunk, 1);
        let mut sim = Simulator::new(opt).unwrap();
        for v in [0i64, -1] {
            sim.set_input("x", v).unwrap();
            sim.settle();
            assert_eq!(sim.peek("o").unwrap(), v, "x={v}");
        }
    }

    #[test]
    fn folding_keeps_whole_design_equivalent() {
        // Run both passes on a full design and re-verify equivalence of
        // an arbitrary streaming computation.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let one = b.vcc().unwrap();
        let masked = b.mux("m", one, &x, &x).unwrap(); // constant-select mux
        let s = b.carry_add("s", &masked, &x, 9).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        let n = b.finish().unwrap();
        let (n2, s1) = fold_constants(&n).unwrap();
        let (n3, _) = eliminate_dead_cells(&n2).unwrap();
        assert!(s1.luts_shrunk > 0);

        let run = |n: &crate::netlist::Netlist| {
            let mut sim = Simulator::new(n.clone()).unwrap();
            let mut outs = Vec::new();
            for v in [-128i64, -3, 0, 99, 127] {
                sim.set_input("x", v).unwrap();
                sim.tick();
                outs.push(sim.peek("o").unwrap());
            }
            outs
        };
        assert_eq!(run(&n), run(&n3));
    }
}
