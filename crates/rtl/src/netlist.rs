//! The netlist graph: cells, nets, ports, validation.

use std::collections::BTreeMap;

use crate::cell::{Cell, CellKind};
use crate::error::{Error, Result};
use crate::net::{Bus, NetId};

/// Direction of a named port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Driven from outside the netlist.
    Input,
    /// Observed from outside the netlist.
    Output,
}

/// A named bus crossing the netlist boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// The nets behind the port.
    pub bus: Bus,
}

/// Identifier of a cell within its netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The cell with the given raw index. Analyses iterating over
    /// `0..Netlist::cell_count()` use this to get back to a typed id;
    /// no range check is (or can be) performed here.
    #[must_use]
    pub fn from_index(idx: usize) -> CellId {
        CellId(idx as u32)
    }
}

/// A validated netlist.
///
/// Construction goes through [`crate::builder::NetlistBuilder`]; the
/// `validate` step run at `finish` time guarantees:
///
/// * every net has exactly one driver (cell output, input port, or
///   constant),
/// * the combinational cells are acyclic,
/// * port names are unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) cells: Vec<Cell>,
    pub(crate) net_count: u32,
    pub(crate) ports: BTreeMap<String, Port>,
    /// For each net, the cells reading it.
    pub(crate) fanout: Vec<Vec<CellId>>,
    /// For each net, the cell driving it (None for input ports).
    pub(crate) driver: Vec<Option<CellId>>,
    /// Combinational cells in topological order.
    pub(crate) topo: Vec<CellId>,
    /// Register cells, cached at validation time so analyses do not
    /// re-scan the cell list per call.
    pub(crate) registers: Vec<CellId>,
}

impl Netlist {
    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count as usize
    }

    /// The cells, indexable by [`CellId::index`].
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// One cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The ports, keyed by name.
    #[must_use]
    pub fn ports(&self) -> &BTreeMap<String, Port> {
        &self.ports
    }

    /// Looks up a port by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPort`] if it does not exist.
    pub fn port(&self, name: &str) -> Result<&Port> {
        self.ports.get(name).ok_or_else(|| Error::UnknownPort { name: name.to_owned() })
    }

    /// Cells reading the given net.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[CellId] {
        &self.fanout[net.index()]
    }

    /// The cell driving the given net, or `None` when it is driven by an
    /// input port.
    #[must_use]
    pub fn driver(&self, net: NetId) -> Option<CellId> {
        self.driver[net.index()]
    }

    /// Combinational cells in topological (input-to-output) order.
    #[must_use]
    pub fn topo_order(&self) -> &[CellId] {
        &self.topo
    }

    /// Ids of all register cells (cached at construction time).
    #[must_use]
    pub fn registers(&self) -> &[CellId] {
        &self.registers
    }

    fn scan_registers(cells: &[Cell]) -> Vec<CellId> {
        cells
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.kind, CellKind::Register { .. }))
            .map(|(i, _)| CellId(i as u32))
            .collect()
    }

    /// Validates the graph and computes fanout and topological order.
    pub(crate) fn validate(
        cells: Vec<Cell>,
        net_count: u32,
        ports: BTreeMap<String, Port>,
    ) -> Result<Self> {
        let n = net_count as usize;
        // Single-driver check.
        let mut driver: Vec<Option<CellId>> = vec![None; n];
        let mut driven_by_input = vec![false; n];
        for (name, port) in &ports {
            if port.direction == PortDirection::Input {
                for &b in port.bus.bits() {
                    if driven_by_input[b.index()] {
                        return Err(Error::MultipleDrivers {
                            net: b.0,
                            driver: format!("input port '{name}'"),
                        });
                    }
                    driven_by_input[b.index()] = true;
                }
            }
        }
        for (i, cell) in cells.iter().enumerate() {
            for net in cell.kind.output_nets() {
                if driver[net.index()].is_some() || driven_by_input[net.index()] {
                    return Err(Error::MultipleDrivers { net: net.0, driver: cell.name.clone() });
                }
                driver[net.index()] = Some(CellId(i as u32));
            }
        }
        // Only nets something actually reads must be driven: optimization
        // passes may strand allocated-but-unused net ids.
        let mut used = vec![false; n];
        for cell in &cells {
            for net in cell.kind.input_nets() {
                used[net.index()] = true;
            }
        }
        for port in ports.values() {
            if port.direction == PortDirection::Output {
                for &net in port.bus.bits() {
                    used[net.index()] = true;
                }
            }
        }
        for net in 0..n {
            if used[net] && driver[net].is_none() && !driven_by_input[net] {
                let id = NetId(net as u32);
                let reader = cells
                    .iter()
                    .find(|c| c.kind.input_nets().contains(&id))
                    .map(|c| c.name.clone())
                    .or_else(|| {
                        ports.iter().find_map(|(name, p)| {
                            (p.direction == PortDirection::Output && p.bus.bits().contains(&id))
                                .then(|| format!("output port '{name}'"))
                        })
                    })
                    .unwrap_or_default();
                return Err(Error::Undriven { net: net as u32, reader });
            }
        }

        // Fanout.
        let mut fanout: Vec<Vec<CellId>> = vec![Vec::new(); n];
        for (i, cell) in cells.iter().enumerate() {
            for net in cell.kind.input_nets() {
                fanout[net.index()].push(CellId(i as u32));
            }
        }

        // Topological order over combinational cells (Kahn's algorithm);
        // register outputs and input ports are sources.
        let mut indegree: Vec<u32> = vec![0; cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            if !cell.kind.is_combinational() {
                continue;
            }
            let mut deg = 0;
            for net in cell.kind.comb_input_nets() {
                if let Some(d) = driver[net.index()] {
                    if cells[d.index()].kind.is_combinational() {
                        deg += 1;
                    }
                }
            }
            indegree[i] = deg;
        }
        let mut queue: Vec<CellId> = cells
            .iter()
            .enumerate()
            .filter(|(i, c)| c.kind.is_combinational() && indegree[*i] == 0)
            .map(|(i, _)| CellId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(cells.len());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            topo.push(id);
            for net in cells[id.index()].kind.output_nets() {
                // Fanout lists a reader once per *any* input occurrence
                // (a RAM's write port included), but indegree only counts
                // combinational reads — so visit each reader once and
                // subtract its combinational multiplicity for this net.
                let mut visited: Vec<CellId> = Vec::new();
                for &reader in &fanout[net.index()] {
                    if visited.contains(&reader) {
                        continue;
                    }
                    visited.push(reader);
                    let rc = &cells[reader.index()];
                    if !rc.kind.is_combinational() {
                        continue;
                    }
                    let edges =
                        rc.kind.comb_input_nets().iter().filter(|&&n| n == net).count() as u32;
                    if edges > 0 {
                        indegree[reader.index()] -= edges;
                        if indegree[reader.index()] == 0 {
                            queue.push(reader);
                        }
                    }
                }
            }
        }
        let comb_count = cells.iter().filter(|c| c.kind.is_combinational()).count();
        if topo.len() != comb_count {
            let stuck = cells
                .iter()
                .enumerate()
                .find(|(i, c)| c.kind.is_combinational() && indegree[*i] > 0)
                .map(|(_, c)| c.name.clone())
                .unwrap_or_default();
            return Err(Error::CombinationalLoop { cell: stuck });
        }

        let registers = Netlist::scan_registers(&cells);
        Ok(Netlist { cells, net_count, ports, fanout, driver, topo, registers })
    }

    /// Assembles and **validates** a netlist from raw parts.
    ///
    /// This is the public counterpart of the builder's `finish` step for
    /// tooling that restructures existing netlists — the partitioning
    /// pass carves sub-netlists out of a parent graph (reusing the
    /// parent's net-id space, so stranded unused ids are expected and
    /// legal) and `stitch` reassembles them. The full validation suite
    /// runs: single driver per used net, acyclic combinational logic,
    /// and fanout/topological-order construction.
    ///
    /// # Errors
    ///
    /// Returns the same [`Error`] variants as
    /// [`crate::builder::NetlistBuilder::finish`]: [`Error::MultipleDrivers`],
    /// [`Error::Undriven`], or [`Error::CombinationalLoop`].
    pub fn from_parts(
        cells: Vec<Cell>,
        net_count: u32,
        ports: BTreeMap<String, Port>,
    ) -> Result<Self> {
        Netlist::validate(cells, net_count, ports)
    }

    /// Assembles a netlist from raw parts **without** validating it.
    ///
    /// Unlike [`crate::builder::NetlistBuilder::finish`], this accepts
    /// graphs that are structurally broken — undriven nets, multiple
    /// drivers (the first claiming cell wins the `driver` table), and
    /// combinational cycles (the topological order then covers only the
    /// acyclic prefix). It exists so that *analysis* tooling — the
    /// `dwt-lint` passes and their mutation harness — can inspect and
    /// diagnose invalid netlists that `finish`/`revalidate` would
    /// reject. Do not simulate the result: [`crate::sim::Simulator`]
    /// assumes a validated graph.
    #[must_use]
    pub fn assemble_unchecked(
        cells: Vec<Cell>,
        net_count: u32,
        ports: BTreeMap<String, Port>,
    ) -> Self {
        let n = net_count as usize;
        let mut driver: Vec<Option<CellId>> = vec![None; n];
        for (i, cell) in cells.iter().enumerate() {
            for net in cell.kind.output_nets() {
                if driver[net.index()].is_none() {
                    driver[net.index()] = Some(CellId(i as u32));
                }
            }
        }
        let mut fanout: Vec<Vec<CellId>> = vec![Vec::new(); n];
        for (i, cell) in cells.iter().enumerate() {
            for net in cell.kind.input_nets() {
                fanout[net.index()].push(CellId(i as u32));
            }
        }
        // Kahn's algorithm over the combinational cells; cells caught in
        // a cycle simply never enter the (partial) order.
        let mut indegree: Vec<u32> = vec![0; cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            if !cell.kind.is_combinational() {
                continue;
            }
            let mut deg = 0;
            for net in cell.kind.comb_input_nets() {
                if let Some(d) = driver[net.index()] {
                    if cells[d.index()].kind.is_combinational() {
                        deg += 1;
                    }
                }
            }
            indegree[i] = deg;
        }
        let mut queue: Vec<CellId> = cells
            .iter()
            .enumerate()
            .filter(|(i, c)| c.kind.is_combinational() && indegree[*i] == 0)
            .map(|(i, _)| CellId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(cells.len());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            topo.push(id);
            for net in cells[id.index()].kind.output_nets() {
                let mut visited: Vec<CellId> = Vec::new();
                for &reader in &fanout[net.index()] {
                    if visited.contains(&reader) {
                        continue;
                    }
                    visited.push(reader);
                    let rc = &cells[reader.index()];
                    if !rc.kind.is_combinational() {
                        continue;
                    }
                    let edges =
                        rc.kind.comb_input_nets().iter().filter(|&&n| n == net).count() as u32;
                    if edges > 0 && driver[net.index()].is_some() {
                        indegree[reader.index()] = indegree[reader.index()].saturating_sub(edges);
                        if indegree[reader.index()] == 0 {
                            queue.push(reader);
                        }
                    }
                }
            }
        }
        let registers = Netlist::scan_registers(&cells);
        Netlist { cells, net_count, ports, fanout, driver, topo, registers }
    }

    /// Re-validates this netlist's ports against a modified cell list —
    /// the rebuild step of the optimization passes.
    pub(crate) fn revalidate(template: &Netlist, cells: Vec<Cell>) -> crate::error::Result<Self> {
        Netlist::validate(cells, template.net_count, template.ports.clone())
    }

    /// Counts cells of each kind, useful for reports and tests.
    #[must_use]
    pub fn census(&self) -> NetlistCensus {
        let mut census = NetlistCensus::default();
        for cell in &self.cells {
            match &cell.kind {
                CellKind::Lut { .. } => census.luts += 1,
                CellKind::FullAdder { .. } => census.full_adders += 1,
                CellKind::CarryAdd { out, .. } => {
                    census.carry_adders += 1;
                    census.carry_adder_bits += out.width();
                }
                CellKind::CarrySub { out, .. } => {
                    census.carry_adders += 1;
                    census.carry_adder_bits += out.width();
                }
                CellKind::Register { q, .. } => {
                    census.registers += 1;
                    census.register_bits += q.width();
                }
                CellKind::Constant { .. } => census.constants += 1,
                CellKind::Ram { words, rdata, .. } => {
                    census.rams += 1;
                    census.ram_bits += words * rdata.width();
                }
            }
        }
        census
    }
}

/// Cell-kind population counts for one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistCensus {
    /// Raw LUT cells.
    pub luts: usize,
    /// Structural full adders.
    pub full_adders: usize,
    /// Behavioral carry-chain adders/subtractors.
    pub carry_adders: usize,
    /// Total result bits across carry-chain adders.
    pub carry_adder_bits: usize,
    /// Register banks.
    pub registers: usize,
    /// Total flip-flop bits.
    pub register_bits: usize,
    /// Constant drivers.
    pub constants: usize,
    /// Memory blocks.
    pub rams: usize,
    /// Total memory bits across RAM cells.
    pub ram_bits: usize,
}

#[cfg(test)]
mod tests {
    use crate::builder::NetlistBuilder;

    #[test]
    fn builder_output_is_validated() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a", 4).unwrap();
        let c = b.input("b", 4).unwrap();
        let sum = b.carry_add("sum", &a, &c, 5).unwrap();
        b.output("out", &sum).unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.census().carry_adders, 1);
        assert!(n.port("out").is_ok());
        assert!(n.port("nope").is_err());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a", 4).unwrap();
        let c = b.input("b", 4).unwrap();
        let s1 = b.carry_add("s1", &a, &c, 5).unwrap();
        let s2 = b.carry_add("s2", &s1, &a, 6).unwrap();
        let s3 = b.carry_add("s3", &s2, &s1, 7).unwrap();
        b.output("out", &s3).unwrap();
        let n = b.finish().unwrap();
        let order: Vec<&str> = n
            .topo_order()
            .iter()
            .map(|&id| n.cell(id).name.as_str())
            .filter(|name| name.starts_with('s'))
            .collect();
        let pos = |x: &str| order.iter().position(|&n| n == x).unwrap();
        assert!(pos("s1") < pos("s2"));
        assert!(pos("s2") < pos("s3"));
    }

    #[test]
    fn register_breaks_cycles() {
        // A counter: q + 1 -> d is fine because the register is
        // sequential.
        let mut b = NetlistBuilder::new();
        let one = b.constant(1, 4).unwrap();
        let (q, feed) = b.register_loop("count", 4).unwrap();
        let next = b.carry_add("inc", &q, &one, 4).unwrap();
        feed.connect(&mut b, &next).unwrap();
        b.output("count", &q).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn census_counts_bits() {
        let mut b = NetlistBuilder::new();
        let a = b.input("a", 8).unwrap();
        let r = b.register("r", &a).unwrap();
        b.output("q", &r).unwrap();
        let n = b.finish().unwrap();
        let census = n.census();
        assert_eq!(census.registers, 1);
        assert_eq!(census.register_bits, 8);
    }
}
