//! Error type for netlist construction and simulation.

use std::error::Error as StdError;
use std::fmt;

/// Errors reported while building, validating or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// The conflicting net.
        net: u32,
    },
    /// A net has no driver and is not a primary input.
    Undriven {
        /// The floating net.
        net: u32,
    },
    /// The combinational cells form a cycle.
    CombinationalLoop {
        /// A cell on the cycle.
        cell: String,
    },
    /// A port name was used twice.
    DuplicatePort {
        /// The clashing name.
        name: String,
    },
    /// A named port does not exist.
    UnknownPort {
        /// The requested name.
        name: String,
    },
    /// A bus was built with zero width, or wider than the 63 bits the
    /// word-level evaluators support.
    BadWidth {
        /// The offending width.
        width: usize,
    },
    /// A LUT cell was given more than four inputs.
    TooManyLutInputs {
        /// Number of inputs supplied.
        count: usize,
    },
    /// A value does not fit the width of the port it was applied to.
    ValueOutOfRange {
        /// The value.
        value: i64,
        /// The port width in bits.
        width: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MultipleDrivers { net } => write!(f, "net {net} has multiple drivers"),
            Error::Undriven { net } => write!(f, "net {net} has no driver"),
            Error::CombinationalLoop { cell } => {
                write!(f, "combinational loop through cell '{cell}'")
            }
            Error::DuplicatePort { name } => write!(f, "duplicate port name '{name}'"),
            Error::UnknownPort { name } => write!(f, "unknown port '{name}'"),
            Error::BadWidth { width } => write!(f, "unsupported bus width {width}"),
            Error::TooManyLutInputs { count } => {
                write!(f, "lut cell with {count} inputs (max 4)")
            }
            Error::ValueOutOfRange { value, width } => {
                write!(f, "value {value} does not fit a signed {width}-bit bus")
            }
        }
    }
}

impl StdError for Error {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_its_payload() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::MultipleDrivers { net: 4 }, "4"),
            (Error::Undriven { net: 9 }, "9"),
            (Error::CombinationalLoop { cell: "acc".into() }, "acc"),
            (Error::DuplicatePort { name: "x".into() }, "x"),
            (Error::UnknownPort { name: "y".into() }, "y"),
            (Error::BadWidth { width: 77 }, "77"),
            (Error::TooManyLutInputs { count: 5 }, "5"),
            (Error::ValueOutOfRange { value: -300, width: 8 }, "-300"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} missing {needle}");
        }
    }
}
