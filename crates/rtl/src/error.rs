//! Error type for netlist construction and simulation.

use std::error::Error as StdError;
use std::fmt;

/// Errors reported while building, validating or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// The conflicting net.
        net: u32,
        /// The second driver claiming the net (cell name, or
        /// `input port '<name>'`).
        driver: String,
    },
    /// A net has no driver and is not a primary input.
    Undriven {
        /// The floating net.
        net: u32,
        /// Who reads the floating net (cell name, or
        /// `output port '<name>'`).
        reader: String,
    },
    /// The combinational cells form a cycle.
    CombinationalLoop {
        /// A cell on the cycle.
        cell: String,
    },
    /// A port name was used twice.
    DuplicatePort {
        /// The clashing name.
        name: String,
    },
    /// A named port does not exist.
    UnknownPort {
        /// The requested name.
        name: String,
    },
    /// A bus was built with zero width, or wider than the 63 bits the
    /// word-level evaluators support.
    BadWidth {
        /// The offending width.
        width: usize,
    },
    /// A LUT cell was given more than four inputs.
    TooManyLutInputs {
        /// Number of inputs supplied.
        count: usize,
    },
    /// A value does not fit the width of the port it was applied to.
    ValueOutOfRange {
        /// The value.
        value: i64,
        /// The port width in bits.
        width: usize,
    },
    /// A fault injection named a target the netlist does not have, or
    /// addressed it out of bounds.
    FaultTarget {
        /// The net / register / RAM name the fault addressed.
        target: String,
        /// What exactly went wrong with the reference.
        detail: String,
    },
    /// A snapshot was restored into a simulator whose netlist does not
    /// match the one the snapshot was taken from.
    SnapshotMismatch {
        /// Net count recorded in the snapshot.
        snapshot_nets: usize,
        /// Net count of the restoring simulator's netlist.
        simulator_nets: usize,
        /// Cell count recorded in the snapshot.
        snapshot_cells: usize,
        /// Cell count of the restoring simulator's netlist.
        simulator_cells: usize,
    },
    /// Lowering a netlist into a compiled op program found an internal
    /// inconsistency (e.g. an emitted RAM read op with no matching RAM
    /// cell in the schedule). Unreachable for netlists that passed
    /// validation; malformed programs surface here instead of aborting
    /// the process.
    MalformedProgram {
        /// What the lowering pass found inconsistent.
        detail: String,
    },
    /// A serialized snapshot failed to decode: truncated, corrupted,
    /// or produced by an incompatible encoder version. The snapshot
    /// byte codecs ([`engine::PortableSnapshot`](crate::engine::PortableSnapshot))
    /// raise this instead of panicking so torn store records and
    /// hostile bytes surface as recoverable errors.
    SnapshotDecode {
        /// What the decoder found malformed.
        detail: String,
    },
    /// A backend name failed to parse. The canonical spelling set is
    /// [`engine::Backend`](crate::engine::Backend)'s — every consumer
    /// (campaign CLIs, factories) reports unknown backends through this
    /// one variant so the message is uniform everywhere.
    UnknownBackend {
        /// The unrecognised name.
        name: String,
    },
    /// The operation needs a capability this backend does not have
    /// (see [`engine::EngineCaps`](crate::engine::EngineCaps)) — e.g.
    /// multi-lane I/O on the single-lane event-driven simulator.
    Unsupported {
        /// The backend's report name.
        backend: String,
        /// The capability that is missing.
        what: String,
    },
    /// The native-codegen (`jit`) backend failed to generate, compile
    /// or load its kernel. `stage` names the pipeline step ("codegen",
    /// "rustc", "dlopen", …).
    NativeCodegen {
        /// Pipeline step that failed.
        stage: String,
        /// What went wrong.
        detail: String,
    },
    /// The event loop exceeded its iteration budget inside one cycle —
    /// the netlist (possibly under an injected fault) is oscillating
    /// instead of settling.
    SimulationDiverged {
        /// The cell evaluated when the budget ran out.
        cell: String,
        /// The clock cycle (absolute tick count) being simulated.
        cycle: u64,
        /// Events processed before giving up.
        events: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MultipleDrivers { net, driver } => {
                write!(f, "net {net} has multiple drivers (second: {driver})")
            }
            Error::Undriven { net, reader } => {
                write!(f, "net {net} has no driver but is read by {reader}")
            }
            Error::CombinationalLoop { cell } => {
                write!(f, "combinational loop through cell '{cell}'")
            }
            Error::DuplicatePort { name } => write!(f, "duplicate port name '{name}'"),
            Error::UnknownPort { name } => write!(f, "unknown port '{name}'"),
            Error::BadWidth { width } => write!(f, "unsupported bus width {width}"),
            Error::TooManyLutInputs { count } => {
                write!(f, "lut cell with {count} inputs (max 4)")
            }
            Error::ValueOutOfRange { value, width } => {
                write!(f, "value {value} does not fit a signed {width}-bit bus")
            }
            Error::FaultTarget { target, detail } => {
                write!(f, "fault target '{target}': {detail}")
            }
            Error::SnapshotMismatch {
                snapshot_nets,
                simulator_nets,
                snapshot_cells,
                simulator_cells,
            } => write!(
                f,
                "snapshot taken from a different netlist: {snapshot_nets} nets / \
                 {snapshot_cells} cells vs simulator's {simulator_nets} nets / \
                 {simulator_cells} cells"
            ),
            Error::MalformedProgram { detail } => {
                write!(f, "malformed compiled program: {detail}")
            }
            Error::SnapshotDecode { detail } => {
                write!(f, "snapshot bytes failed to decode: {detail}")
            }
            Error::UnknownBackend { name } => {
                write!(
                    f,
                    "unknown backend '{name}' (expected {})",
                    crate::engine::Backend::EXPECTED
                )
            }
            Error::Unsupported { backend, what } => {
                write!(f, "backend '{backend}' does not support {what}")
            }
            Error::NativeCodegen { stage, detail } => {
                write!(f, "native codegen failed at {stage}: {detail}")
            }
            Error::SimulationDiverged { cell, cycle, events } => write!(
                f,
                "simulation diverged at cycle {cycle}: {events} events without settling \
                 (last evaluated cell '{cell}')"
            ),
        }
    }
}

impl StdError for Error {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_its_payload() {
        let cases: Vec<(Error, Vec<&str>)> = vec![
            (Error::MultipleDrivers { net: 4, driver: "acc2".into() }, vec!["4", "acc2"]),
            (
                Error::Undriven { net: 9, reader: "output port 'low'".into() },
                vec!["9", "output port 'low'"],
            ),
            (Error::CombinationalLoop { cell: "acc".into() }, vec!["acc"]),
            (Error::DuplicatePort { name: "x".into() }, vec!["x"]),
            (Error::UnknownPort { name: "y".into() }, vec!["y"]),
            (Error::BadWidth { width: 77 }, vec!["77"]),
            (Error::TooManyLutInputs { count: 5 }, vec!["5"]),
            (Error::ValueOutOfRange { value: -300, width: 8 }, vec!["-300"]),
            (
                Error::FaultTarget {
                    target: "alpha_r".into(),
                    detail: "bit 31 out of range".into(),
                },
                vec!["alpha_r", "bit 31"],
            ),
            (
                Error::MalformedProgram { detail: "RamRead op without a Ram cell".into() },
                vec!["RamRead op without a Ram cell"],
            ),
            (
                Error::SimulationDiverged { cell: "osc".into(), cycle: 12, events: 99 },
                vec!["osc", "12", "99"],
            ),
            (Error::SnapshotDecode { detail: "7 trailing bytes".into() }, vec!["7 trailing bytes"]),
            (
                Error::UnknownBackend { name: "quantum".into() },
                vec!["quantum", "event|compiled|jit"],
            ),
            (
                Error::Unsupported { backend: "event-driven".into(), what: "lane I/O".into() },
                vec!["event-driven", "lane I/O"],
            ),
            (
                Error::NativeCodegen { stage: "rustc".into(), detail: "exit status 1".into() },
                vec!["rustc", "exit status 1"],
            ),
            (
                Error::SnapshotMismatch {
                    snapshot_nets: 10,
                    simulator_nets: 20,
                    snapshot_cells: 3,
                    simulator_cells: 4,
                },
                vec!["10", "20", "3", "4"],
            ),
        ];
        for (err, needles) in cases {
            let text = err.to_string();
            for needle in needles {
                assert!(text.contains(needle), "{text} missing {needle}");
            }
        }
    }
}
