//! Structural netlist statistics: logic-depth and fanout distributions,
//! the numbers an architect reads before trusting a timing report.

use crate::cell::CellKind;
use crate::netlist::Netlist;

/// Structural summary of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Combinational depth (cell evaluations) per register/output
    /// endpoint, as a histogram: `depth_histogram[d]` = endpoints with
    /// depth `d`.
    pub depth_histogram: Vec<usize>,
    /// Largest combinational depth.
    pub max_depth: usize,
    /// Fanout histogram over nets: `fanout_histogram[f]` = nets with
    /// fanout `f` (saturated at the last bucket).
    pub fanout_histogram: Vec<usize>,
    /// The highest fanout and the name of the driving cell.
    pub max_fanout: (usize, String),
    /// Nets in total.
    pub nets: usize,
    /// Cells in total.
    pub cells: usize,
}

/// Number of buckets in the fanout histogram (the last bucket collects
/// everything at or above it).
const FANOUT_BUCKETS: usize = 17;

/// Computes the statistics.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_rtl::builder::NetlistBuilder;
/// use dwt_rtl::stats::analyze_structure;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 8)?;
/// let s1 = b.carry_add("s1", &x, &x, 9)?;
/// let s2 = b.carry_add("s2", &s1, &x, 10)?;
/// let q = b.register("q", &s2)?;
/// b.output("o", &q)?;
/// let stats = analyze_structure(&b.finish()?);
/// assert_eq!(stats.max_depth, 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn analyze_structure(netlist: &Netlist) -> NetlistStats {
    // Per-net combinational depth, via the shared query helper.
    let depth = netlist.net_comb_depths();

    // Endpoint depths.
    let mut endpoint_depths: Vec<usize> = Vec::new();
    for cell in netlist.cells() {
        if let CellKind::Register { d, .. } = &cell.kind {
            endpoint_depths.push(d.bits().iter().map(|n| depth[n.index()]).max().unwrap_or(0));
        }
    }
    for port in netlist.ports().values() {
        if port.direction == crate::netlist::PortDirection::Output {
            endpoint_depths
                .push(port.bus.bits().iter().map(|n| depth[n.index()]).max().unwrap_or(0));
        }
    }
    let max_depth = endpoint_depths.iter().copied().max().unwrap_or(0);
    let mut depth_histogram = vec![0usize; max_depth + 1];
    for d in &endpoint_depths {
        depth_histogram[*d] += 1;
    }

    // Fanout histogram.
    let mut fanout_histogram = vec![0usize; FANOUT_BUCKETS];
    let mut max_fanout = (0usize, String::from("(none)"));
    for net in 0..netlist.net_count() {
        let f = netlist.fanout(crate::net::NetId(net as u32)).len();
        fanout_histogram[f.min(FANOUT_BUCKETS - 1)] += 1;
        if f > max_fanout.0 {
            let name = netlist
                .driver(crate::net::NetId(net as u32))
                .map(|c| netlist.cell(c).name.clone())
                .unwrap_or_else(|| "(input)".to_owned());
            max_fanout = (f, name);
        }
    }

    NetlistStats {
        depth_histogram,
        max_depth,
        fanout_histogram,
        max_fanout,
        nets: netlist.net_count(),
        cells: netlist.cell_count(),
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} cells, {} nets, max depth {}", self.cells, self.nets, self.max_depth)?;
        write!(f, "depth histogram:")?;
        for (d, n) in self.depth_histogram.iter().enumerate() {
            if *n > 0 {
                write!(f, " {d}:{n}")?;
            }
        }
        writeln!(f)?;
        write!(f, "max fanout {} at '{}'", self.max_fanout.0, self.max_fanout.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn depths_follow_the_chain_length() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let mut acc = x.clone();
        for i in 0..5 {
            acc = b.carry_add(&format!("s{i}"), &acc, &x, 8).unwrap();
        }
        let q = b.register("q", &acc).unwrap();
        b.output("o", &q).unwrap();
        let s = analyze_structure(&b.finish().unwrap());
        assert_eq!(s.max_depth, 5);
        // Output port endpoint (through the register) has depth 0.
        assert!(s.depth_histogram[0] >= 1);
    }

    #[test]
    fn pipelining_cuts_reported_depth() {
        let build = |piped: bool| {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 4).unwrap();
            let s1 = b.carry_add("s1", &x, &x, 6).unwrap();
            let mid = if piped { b.register("p", &s1).unwrap() } else { s1 };
            let s2 = b.carry_add("s2", &mid, &x, 7).unwrap();
            let q = b.register("q", &s2).unwrap();
            b.output("o", &q).unwrap();
            analyze_structure(&b.finish().unwrap()).max_depth
        };
        assert_eq!(build(false), 2);
        assert_eq!(build(true), 1);
    }

    #[test]
    fn fanout_identifies_the_hub() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 1).unwrap();
        let hub = b.register("hub", &x).unwrap();
        for i in 0..6 {
            let y = b.carry_add(&format!("s{i}"), &hub, &hub, 2).unwrap();
            b.output(&format!("o{i}"), &y).unwrap();
        }
        let s = analyze_structure(&b.finish().unwrap());
        assert_eq!(s.max_fanout.1, "hub");
        assert!(s.max_fanout.0 >= 6);
    }

    #[test]
    fn display_is_nonempty() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 2).unwrap();
        b.output("o", &x).unwrap();
        let s = analyze_structure(&b.finish().unwrap());
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn design_depths_match_their_pipelining() {
        // Cross-crate sanity lives in dwt-arch; here just confirm the
        // histogram sums to the endpoint count.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let s1 = b.carry_add("s1", &x, &x, 5).unwrap();
        let q1 = b.register("q1", &s1).unwrap();
        let q2 = b.register("q2", &q1).unwrap();
        b.output("o", &q2).unwrap();
        let s = analyze_structure(&b.finish().unwrap());
        let endpoints: usize = s.depth_histogram.iter().sum();
        assert_eq!(endpoints, 3); // two registers + one output port
    }
}
