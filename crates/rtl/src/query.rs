//! Structural path queries over a netlist: sequential topological
//! orders, per-net combinational depth, and register-latency ranges
//! between nets.
//!
//! These are the primitives static analyses build on. `dwt-lint`'s
//! pipeline-balance pass (L004) is a client, and so is
//! [`crate::stats::analyze_structure`], which derives its logic-depth
//! histogram from [`Netlist::net_comb_depths`].

use crate::cell::CellKind;
use crate::net::NetId;
use crate::netlist::{CellId, Netlist};

/// Register-latency range over all structural paths between two nets.
///
/// For a balanced pipeline `min == max`; a spread means reconvergent
/// paths carry different register counts and word alignment is broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLatency {
    /// Fewest registers along any path.
    pub min: usize,
    /// Most registers along any path.
    pub max: usize,
}

impl PathLatency {
    /// Whether every path carries the same number of registers.
    #[must_use]
    pub fn is_balanced(self) -> bool {
        self.min == self.max
    }
}

impl Netlist {
    /// Per-net combinational depth (cell evaluations since the last
    /// register output, input port, or constant), indexed by net id.
    ///
    /// Nets driven by registers, constants, or input ports have depth 0;
    /// each combinational cell adds one level on top of its deepest
    /// input.
    #[must_use]
    pub fn net_comb_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.net_count()];
        for &id in self.topo_order() {
            let cell = self.cell(id);
            let d_in =
                cell.kind.comb_input_nets().iter().map(|n| depth[n.index()]).max().unwrap_or(0);
            let d_out = match cell.kind {
                CellKind::Constant { .. } => 0,
                _ => d_in + 1,
            };
            for net in cell.kind.output_nets() {
                depth[net.index()] = d_out;
            }
        }
        depth
    }

    /// Topological order over *all* cells, registers included, treating
    /// each register as an ordinary node with an edge from its `d`
    /// driver to its `q` readers (a RAM contributes only its
    /// combinational read path, like the validator's loop check).
    ///
    /// Returns `None` when the netlist has a sequential feedback loop
    /// (e.g. an accumulator register feeding its own adder): no global
    /// order exists then, and path-latency analyses must fall back to
    /// local reasoning.
    #[must_use]
    pub fn sequential_topo(&self) -> Option<Vec<CellId>> {
        let mut indegree: Vec<u32> = vec![0; self.cell_count()];
        for (i, cell) in self.cells().iter().enumerate() {
            let mut deg = 0;
            for net in cell.kind.comb_input_nets() {
                if self.driver(net).is_some() {
                    deg += 1;
                }
            }
            indegree[i] = deg;
        }
        let mut queue: Vec<CellId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| CellId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(self.cell_count());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for net in self.cell(id).kind.output_nets() {
                let mut visited: Vec<CellId> = Vec::new();
                for &reader in self.fanout(net) {
                    if visited.contains(&reader) {
                        continue;
                    }
                    visited.push(reader);
                    let edges = self
                        .cell(reader)
                        .kind
                        .comb_input_nets()
                        .iter()
                        .filter(|&&n| n == net)
                        .count() as u32;
                    if edges > 0 {
                        indegree[reader.index()] -= edges;
                        if indegree[reader.index()] == 0 {
                            queue.push(reader);
                        }
                    }
                }
            }
        }
        (order.len() == self.cell_count()).then_some(order)
    }

    /// Register latency (pipeline-stage count) over all structural paths
    /// from net `from` to net `to`.
    ///
    /// Returns `None` when no path exists, or when the netlist has a
    /// sequential feedback loop (see [`Self::sequential_topo`]). A
    /// register adds one stage from its `d` input to its `q` output;
    /// combinational cells, constants, and a RAM's read path add none.
    #[must_use]
    pub fn register_latency(&self, from: NetId, to: NetId) -> Option<PathLatency> {
        let order = self.sequential_topo()?;
        let mut lat: Vec<Option<PathLatency>> = vec![None; self.net_count()];
        lat[from.index()] = Some(PathLatency { min: 0, max: 0 });
        for id in order {
            let cell = self.cell(id);
            let step = usize::from(matches!(cell.kind, CellKind::Register { .. }));
            let mut incoming: Option<PathLatency> = None;
            for net in cell.kind.comb_input_nets() {
                if let Some(l) = lat[net.index()] {
                    incoming = Some(match incoming {
                        None => l,
                        Some(acc) => {
                            PathLatency { min: acc.min.min(l.min), max: acc.max.max(l.max) }
                        }
                    });
                }
            }
            if let Some(l) = incoming {
                let out = PathLatency { min: l.min + step, max: l.max + step };
                for net in cell.kind.output_nets() {
                    // `from` itself may be cell-driven; keep its anchor.
                    if net != from {
                        lat[net.index()] = Some(match lat[net.index()] {
                            None => out,
                            Some(acc) => {
                                PathLatency { min: acc.min.min(out.min), max: acc.max.max(out.max) }
                            }
                        });
                    }
                }
            }
        }
        lat[to.index()]
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetlistBuilder;

    #[test]
    fn latency_counts_registers_on_a_chain() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let q1 = b.register("q1", &x).unwrap();
        let s = b.carry_add("s", &q1, &q1, 5).unwrap();
        let q2 = b.register("q2", &s).unwrap();
        b.output("o", &q2).unwrap();
        let n = b.finish().unwrap();
        let from = n.port("x").unwrap().bus.bit(0);
        let to = n.port("o").unwrap().bus.bit(0);
        let l = n.register_latency(from, to).unwrap();
        assert_eq!((l.min, l.max), (2, 2));
        assert!(l.is_balanced());
    }

    #[test]
    fn latency_spread_reveals_imbalance() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let q1 = b.register("q1", &x).unwrap();
        // One arm registered, the other not: min 0 via x, max 1 via q1.
        let s = b.carry_add("s", &q1, &x, 5).unwrap();
        b.output("o", &s).unwrap();
        let n = b.finish().unwrap();
        let from = n.port("x").unwrap().bus.bit(0);
        let to = n.port("o").unwrap().bus.bit(0);
        let l = n.register_latency(from, to).unwrap();
        assert_eq!((l.min, l.max), (0, 1));
        assert!(!l.is_balanced());
    }

    #[test]
    fn unreachable_nets_have_no_latency() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 2).unwrap();
        let y = b.input("y", 2).unwrap();
        b.output("ox", &x).unwrap();
        b.output("oy", &y).unwrap();
        let n = b.finish().unwrap();
        let from = n.port("x").unwrap().bus.bit(0);
        let to = n.port("oy").unwrap().bus.bit(0);
        assert!(n.register_latency(from, to).is_none());
    }

    #[test]
    fn sequential_topo_orders_register_chains() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 2).unwrap();
        let q1 = b.register("q1", &x).unwrap();
        let q2 = b.register("q2", &q1).unwrap();
        b.output("o", &q2).unwrap();
        let n = b.finish().unwrap();
        let order = n.sequential_topo().unwrap();
        assert_eq!(order.len(), n.cell_count());
        let pos = |name: &str| order.iter().position(|&id| n.cell(id).name == name).unwrap();
        assert!(pos("q1") < pos("q2"));
    }
}
