//! Cell library.
//!
//! Two abstraction levels coexist in one netlist, mirroring the paper's
//! behavioral-vs-structural dichotomy:
//!
//! * **Word-level cells** ([`CellKind::CarryAdd`], [`CellKind::CarrySub`])
//!   correspond to behavioral VHDL `+`/`-` operators. The FPGA mapper
//!   implements them on dedicated fast-carry chains (1 logic element per
//!   bit — Section 4: "an 8-bit adder is mapped onto just 8 LEs").
//! * **Bit-level cells** ([`CellKind::FullAdder`], [`CellKind::Lut`])
//!   correspond to structural descriptions built from full-adder
//!   components. They map to ordinary LUT logic without carry chains
//!   (2 LEs per adder bit — "an 8-bit adder requires 16 LEs").
//!
//! [`CellKind::Register`] is the sequential element; its flip-flops fold
//! into the logic element driving each data bit when that LE has no other
//! fanout, as the APEX LE's built-in FF allows.

use crate::net::{Bus, NetId};

/// The operation a cell performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellKind {
    /// A ≤4-input lookup table. Bit `i` of `table` gives the output for
    /// the input combination whose bits (in `inputs` order, input 0 =
    /// least significant selector bit) encode `i`.
    Lut {
        /// Input nets (1 to 4).
        inputs: Vec<NetId>,
        /// Truth table, one bit per input combination.
        table: u16,
        /// Output net.
        output: NetId,
    },
    /// A structural full adder (optionally with inverted `b`, which turns
    /// a ripple-carry adder into a subtractor when fed carry-in 1).
    FullAdder {
        /// First operand bit.
        a: NetId,
        /// Second operand bit.
        b: NetId,
        /// Carry input.
        cin: NetId,
        /// Sum output.
        sum: NetId,
        /// Carry output.
        cout: NetId,
        /// Whether `b` is complemented before use.
        invert_b: bool,
    },
    /// Behavioral signed addition on a fast-carry chain. All three buses
    /// must share one width; the result wraps modulo 2^width.
    CarryAdd {
        /// First operand.
        a: Bus,
        /// Second operand.
        b: Bus,
        /// Result.
        out: Bus,
    },
    /// Behavioral signed subtraction (`a - b`) on a fast-carry chain.
    CarrySub {
        /// Minuend.
        a: Bus,
        /// Subtrahend.
        b: Bus,
        /// Result.
        out: Bus,
    },
    /// A bank of D flip-flops: `q` takes the value of `d` at each clock
    /// edge. `d` and `q` must share one width.
    Register {
        /// Data input.
        d: Bus,
        /// Registered output.
        q: Bus,
    },
    /// A constant driver.
    Constant {
        /// The signed value driven.
        value: i64,
        /// Output bus.
        out: Bus,
    },
    /// A simple dual-port synchronous-write / asynchronous-read memory
    /// (one read port, one write port), the shape of an APEX embedded
    /// system block. `rdata` follows `raddr` combinationally; the write
    /// (`waddr`/`wdata` when `wen` is high) commits at the clock edge.
    Ram {
        /// Number of words.
        words: usize,
        /// Read address.
        raddr: Bus,
        /// Read data (combinational).
        rdata: Bus,
        /// Write address (sampled at the clock edge).
        waddr: Bus,
        /// Write data (sampled at the clock edge).
        wdata: Bus,
        /// Write enable (sampled at the clock edge).
        wen: NetId,
    },
}

impl CellKind {
    /// Whether the cell is combinational (participates in the settle
    /// phase and in combinational-loop checks).
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        !matches!(self, CellKind::Register { .. })
    }

    /// Nets the cell reads (for driver/fanout bookkeeping).
    #[must_use]
    pub fn input_nets(&self) -> Vec<NetId> {
        match self {
            CellKind::Lut { inputs, .. } => inputs.clone(),
            CellKind::FullAdder { a, b, cin, .. } => vec![*a, *b, *cin],
            CellKind::CarryAdd { a, b, .. } | CellKind::CarrySub { a, b, .. } => {
                a.bits().iter().chain(b.bits()).copied().collect()
            }
            CellKind::Register { d, .. } => d.bits().to_vec(),
            CellKind::Constant { .. } => vec![],
            CellKind::Ram { raddr, waddr, wdata, wen, .. } => raddr
                .bits()
                .iter()
                .chain(waddr.bits())
                .chain(wdata.bits())
                .chain(std::iter::once(wen))
                .copied()
                .collect(),
        }
    }

    /// Nets whose changes propagate *combinationally* through the cell —
    /// a subset of [`Self::input_nets`]: a RAM's write port is sampled at
    /// the clock edge, so only the read address feeds the read data
    /// combinationally (this is what permits the synchronous read→logic→
    /// write feedback every memory system has).
    #[must_use]
    pub fn comb_input_nets(&self) -> Vec<NetId> {
        match self {
            CellKind::Ram { raddr, .. } => raddr.bits().to_vec(),
            other => other.input_nets(),
        }
    }

    /// Nets the cell drives.
    #[must_use]
    pub fn output_nets(&self) -> Vec<NetId> {
        match self {
            CellKind::Lut { output, .. } => vec![*output],
            CellKind::FullAdder { sum, cout, .. } => vec![*sum, *cout],
            CellKind::CarryAdd { out, .. } | CellKind::CarrySub { out, .. } => out.bits().to_vec(),
            CellKind::Register { q, .. } => q.bits().to_vec(),
            CellKind::Constant { out, .. } => out.bits().to_vec(),
            CellKind::Ram { rdata, .. } => rdata.bits().to_vec(),
        }
    }
}

/// A named cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name (used in diagnostics, reports and VCD scopes).
    pub name: String,
    /// The operation.
    pub kind: CellKind,
}

/// Common 2-input truth tables for [`CellKind::Lut`] (input 0 is the
/// least significant selector bit).
pub mod tables {
    /// 2-input AND.
    pub const AND2: u16 = 0b1000;
    /// 2-input OR.
    pub const OR2: u16 = 0b1110;
    /// 2-input XOR.
    pub const XOR2: u16 = 0b0110;
    /// Inverter (1 input).
    pub const NOT1: u16 = 0b01;
    /// Buffer (1 input).
    pub const BUF1: u16 = 0b10;
    /// 3-input XOR (full-adder sum).
    pub const XOR3: u16 = 0b1001_0110;
    /// 3-input majority (full-adder carry).
    pub const MAJ3: u16 = 0b1110_1000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Bus;

    fn bus(ids: std::ops::Range<u32>) -> Bus {
        Bus::new(ids.map(NetId).collect()).unwrap()
    }

    #[test]
    fn io_nets_of_lut() {
        let k = CellKind::Lut {
            inputs: vec![NetId(1), NetId(2)],
            table: tables::AND2,
            output: NetId(3),
        };
        assert_eq!(k.input_nets(), vec![NetId(1), NetId(2)]);
        assert_eq!(k.output_nets(), vec![NetId(3)]);
        assert!(k.is_combinational());
    }

    #[test]
    fn io_nets_of_carry_add() {
        let k = CellKind::CarryAdd { a: bus(0..4), b: bus(4..8), out: bus(8..12) };
        assert_eq!(k.input_nets().len(), 8);
        assert_eq!(k.output_nets().len(), 4);
    }

    #[test]
    fn register_is_sequential() {
        let k = CellKind::Register { d: bus(0..4), q: bus(4..8) };
        assert!(!k.is_combinational());
        assert_eq!(k.input_nets().len(), 4);
    }

    #[test]
    fn constant_has_no_inputs() {
        let k = CellKind::Constant { value: 5, out: bus(0..4) };
        assert!(k.input_nets().is_empty());
        assert_eq!(k.output_nets().len(), 4);
    }

    #[test]
    fn truth_tables_are_correct() {
        let eval = |table: u16, bits: &[bool]| {
            let idx =
                bits.iter().enumerate().fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
            table & (1 << idx) != 0
        };
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(eval(tables::AND2, &[a, b]), a && b);
                assert_eq!(eval(tables::OR2, &[a, b]), a || b);
                assert_eq!(eval(tables::XOR2, &[a, b]), a ^ b);
                for c in [false, true] {
                    assert_eq!(eval(tables::XOR3, &[a, b, c]), a ^ b ^ c);
                    let maj = (a & b) | (a & c) | (b & c);
                    assert_eq!(eval(tables::MAJ3, &[a, b, c]), maj);
                }
            }
            assert_eq!(eval(tables::NOT1, &[a]), !a);
            assert_eq!(eval(tables::BUF1, &[a]), a);
        }
    }
}
