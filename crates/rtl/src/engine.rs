//! The unified execution surface over simulation backends.
//!
//! Every layer above the RTL substrate — the recovery executor, the
//! multi-lane pool, the campaign harnesses — drives a netlist through
//! the same small verbs: stage inputs, tick the clock, sample outputs,
//! checkpoint and roll back, inject faults. [`Engine`] names exactly
//! that surface so those layers can be generic over *how* a cycle is
//! evaluated:
//!
//! * [`sim::Simulator`](crate::sim::Simulator) — the event-driven
//!   backend, unit-delay with glitch modelling and activity statistics
//!   (the power-estimation substrate of the paper reproduction);
//! * [`compile::CompiledEngine`](crate::compile::CompiledEngine) — the
//!   levelized, 64-way bit-sliced backend, which trades the glitch
//!   model away for throughput.
//!
//! Backends self-describe through [`EngineCaps`] so callers can check
//! at runtime which fidelity features (activity stats, divergence
//! detection, lane width, native codegen, fault families) are actually
//! present. [`Backend`] names the three backends and is the single
//! selection API: parse it from a `--backend` flag, then either
//! [`Backend::build`] a boxed engine or [`Backend::dispatch`] a
//! generic runner on the concrete type.

use crate::fault::FaultSpec;
use crate::netlist::Netlist;
use crate::{Error, Result};

/// Static capability description of a simulation backend.
///
/// Obtained from [`Engine::caps`]; lets generic code (and reports)
/// distinguish backends without naming concrete types. This is the
/// single capability gate: callers check `lanes` before lane-wide I/O,
/// the `fault_*` family flags before arming a fault class, and
/// `native_codegen` to know whether a `rustc`-compiled kernel (not an
/// interpreter) is on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCaps {
    /// Short backend name for reports ("event-driven", "compiled",
    /// "jit").
    pub backend: &'static str,
    /// Independent sample streams advanced per tick (1 for the scalar
    /// event-driven simulator, 64 for the bit-sliced interpreter, 256
    /// for the jit backend).
    pub lanes: usize,
    /// Whether the backend records switching-activity statistics.
    pub activity_stats: bool,
    /// Whether combinational settling models glitches (unit-delay
    /// event propagation) rather than a single functional pass.
    pub glitch_model: bool,
    /// Whether runaway combinational activity is detected and reported
    /// as [`Error::SimulationDiverged`](crate::Error::SimulationDiverged).
    pub divergence_detection: bool,
    /// Whether cycles execute through natively compiled code (codegen →
    /// `rustc` → loaded kernel) rather than an interpreter loop.
    pub native_codegen: bool,
    /// Whether [`FaultSpec::StuckAt`] faults are supported.
    pub fault_stuck_at: bool,
    /// Whether [`FaultSpec::BitFlip`] register faults are supported.
    pub fault_bit_flip: bool,
    /// Whether [`FaultSpec::RamUpset`] array faults are supported.
    pub fault_ram_upset: bool,
}

/// A snapshot that can cross address spaces: encodable to a
/// self-contained byte string and decodable back, bit-exactly.
///
/// The partition layer's process-isolated emulation mode is the
/// customer: worker processes ship their engine snapshot to the
/// supervisor at every barrier, the supervisor parks it in a durable
/// on-disk store, and a respawned worker is re-seeded from those same
/// bytes. Round-tripping must be identity (`from_bytes(to_bytes(s)) ==
/// s`), so a restore from decoded bytes resumes execution exactly like
/// a restore from the original in-memory snapshot.
///
/// Encodings are backend-tagged and versioned; decoding bytes produced
/// by a different backend, a truncated record, or corrupt data yields
/// [`Error::SnapshotDecode`](crate::Error::SnapshotDecode), never a
/// panic. Shape compatibility with the restoring engine's netlist is
/// *not* checked here — [`Engine::restore`] performs that check and
/// reports [`Error::SnapshotMismatch`](crate::Error::SnapshotMismatch).
pub trait PortableSnapshot: Sized {
    /// Encodes the complete snapshot as a self-contained byte string.
    fn to_bytes(&self) -> Vec<u8>;

    /// Decodes a byte string produced by [`to_bytes`](PortableSnapshot::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotDecode`](crate::Error::SnapshotDecode)
    /// for truncated, corrupted, wrong-backend or wrong-version bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self>;
}

/// A cycle-accurate netlist execution backend.
///
/// The trait captures the contract the event-driven
/// [`Simulator`](crate::sim::Simulator) always had: inputs staged with
/// [`set_input`](Engine::set_input) take effect at the next
/// [`try_tick`](Engine::try_tick) (or immediately after
/// [`try_settle`](Engine::try_settle)); outputs read back settled
/// values; snapshots capture the complete architectural state
/// (registers, memories, staged inputs, armed faults) and restoring
/// one resumes execution bit-exactly.
///
/// Backends with more than one lane (see [`EngineCaps::lanes`])
/// broadcast scalar `set_input` values to every lane and report lane 0
/// from `peek`, so scalar code behaves identically on every backend.
pub trait Engine: Sized + std::fmt::Debug {
    /// Opaque architectural-state checkpoint for this backend.
    type Snapshot: Clone + std::fmt::Debug;

    /// Builds an engine for a validated netlist, with all state at
    /// power-on defaults (registers and memories zeroed, combinational
    /// logic settled).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation/simulation errors.
    fn from_netlist(netlist: Netlist) -> Result<Self>;

    /// The netlist under execution.
    fn netlist(&self) -> &Netlist;

    /// Capability flags of this backend.
    fn caps(&self) -> EngineCaps;

    /// Stages a value on an input port; it is applied by the next
    /// [`try_tick`](Engine::try_tick) or
    /// [`try_settle`](Engine::try_settle). Multi-lane backends
    /// broadcast the value to every lane.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ports, non-input ports, or values
    /// outside the port's two's-complement range.
    fn set_input(&mut self, name: &str, value: i64) -> Result<()>;

    /// Advances one clock cycle: registers capture, staged inputs
    /// apply, combinational logic settles.
    ///
    /// # Errors
    ///
    /// Backend-specific; the event-driven simulator reports
    /// [`Error::SimulationDiverged`](crate::Error::SimulationDiverged)
    /// when settling exceeds the event cap.
    fn try_tick(&mut self) -> Result<()>;

    /// Applies staged inputs and settles combinational logic without
    /// advancing the clock.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`try_tick`](Engine::try_tick).
    fn try_settle(&mut self) -> Result<()>;

    /// Reads the settled value of a port (lane 0 on multi-lane
    /// backends), sign-extended from the port width.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ports.
    fn peek(&self, name: &str) -> Result<i64>;

    /// Captures the complete architectural state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Restores a snapshot previously taken from a compatible engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotMismatch`](crate::Error::SnapshotMismatch)
    /// when the snapshot belongs to a different netlist shape.
    fn restore(&mut self, snapshot: &Self::Snapshot) -> Result<()>;

    /// Arms a fault. Stuck-at faults take effect immediately;
    /// transient faults fire at their scheduled cycle. Multi-lane
    /// backends apply faults to every lane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FaultTarget`](crate::Error::FaultTarget) when
    /// the spec does not resolve against the netlist.
    fn inject(&mut self, spec: &FaultSpec) -> Result<()>;

    /// Removes all armed faults (stuck-at clamps and pending
    /// transients). See backend docs for how already-forced values
    /// decay afterwards.
    fn clear_faults(&mut self);

    /// Clock cycles executed since power-on (or since the restored
    /// snapshot was taken).
    fn cycle(&self) -> u64;

    /// Bounds the per-cycle settling work used for divergence
    /// detection. A no-op on backends without an event loop
    /// ([`EngineCaps::divergence_detection`] is `false`).
    fn set_event_cap(&mut self, cap: u64);

    /// Stages per-lane values on an input port: `values[i]` goes to
    /// lane `i`, and when fewer than [`EngineCaps::lanes`] values are
    /// given the remaining lanes keep their previously staged or
    /// settled value.
    ///
    /// Gated by [`EngineCaps::lanes`] > 1; the default implementation
    /// (used by single-lane backends) returns
    /// [`Error::Unsupported`](crate::Error::Unsupported).
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`](crate::Error::Unsupported) on single-lane
    /// backends; otherwise the same failure modes as
    /// [`set_input`](Engine::set_input), plus an error when `values` is
    /// empty or longer than the lane count.
    fn set_input_lanes(&mut self, name: &str, values: &[i64]) -> Result<()> {
        let _ = values;
        let _ = name;
        Err(Error::Unsupported {
            backend: self.caps().backend.to_owned(),
            what: "lane I/O (set_input_lanes)".to_owned(),
        })
    }

    /// Reads the settled value of a port on one specific lane,
    /// sign-extended from the port width.
    ///
    /// Gated by [`EngineCaps::lanes`] > 1; the default implementation
    /// returns [`Error::Unsupported`](crate::Error::Unsupported).
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`](crate::Error::Unsupported) on single-lane
    /// backends; otherwise unknown ports and out-of-range lanes.
    fn peek_lane(&self, name: &str, lane: usize) -> Result<i64> {
        let _ = lane;
        let _ = name;
        Err(Error::Unsupported {
            backend: self.caps().backend.to_owned(),
            what: "lane I/O (peek_lane)".to_owned(),
        })
    }

    /// Reads the settled value of a port on every lane
    /// (`result.len() == EngineCaps::lanes`).
    ///
    /// Gated by [`EngineCaps::lanes`] > 1; the default implementation
    /// returns [`Error::Unsupported`](crate::Error::Unsupported).
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`](crate::Error::Unsupported) on single-lane
    /// backends; otherwise unknown ports.
    fn peek_lanes(&self, name: &str) -> Result<Vec<i64>> {
        let _ = name;
        Err(Error::Unsupported {
            backend: self.caps().backend.to_owned(),
            what: "lane I/O (peek_lanes)".to_owned(),
        })
    }
}

impl Engine for crate::sim::Simulator {
    type Snapshot = crate::sim::Snapshot;

    fn from_netlist(netlist: Netlist) -> Result<Self> {
        crate::sim::Simulator::new(netlist)
    }

    fn netlist(&self) -> &Netlist {
        self.netlist()
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "event-driven",
            lanes: 1,
            activity_stats: true,
            glitch_model: true,
            divergence_detection: true,
            native_codegen: false,
            fault_stuck_at: true,
            fault_bit_flip: true,
            fault_ram_upset: true,
        }
    }

    fn set_input(&mut self, name: &str, value: i64) -> Result<()> {
        self.set_input(name, value)
    }

    fn try_tick(&mut self) -> Result<()> {
        self.try_tick()
    }

    fn try_settle(&mut self) -> Result<()> {
        self.try_settle()
    }

    fn peek(&self, name: &str) -> Result<i64> {
        self.peek(name)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.snapshot()
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) -> Result<()> {
        self.restore(snapshot)
    }

    fn inject(&mut self, spec: &FaultSpec) -> Result<()> {
        self.inject(spec)
    }

    fn clear_faults(&mut self) {
        self.clear_faults();
    }

    fn cycle(&self) -> u64 {
        self.cycle()
    }

    fn set_event_cap(&mut self, cap: u64) {
        self.set_event_cap(cap);
    }
}

/// The canonical backend selector: one name per execution backend,
/// one parse, one factory.
///
/// Every executor that used to grow its own per-crate constructor
/// family or ad-hoc selector enum plumbs through this one instead. Two
/// ways to go from a `Backend` value to running code:
///
/// * [`Backend::build`] — erase the concrete type behind
///   [`BoxedEngine`] when the caller only needs the [`DynEngine`]
///   verbs;
/// * [`Backend::dispatch`] — hand a [`BackendRunner`] the *concrete*
///   engine type, for callers that are generic over `E: Engine`
///   (executors, pools, partition workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The scalar event-driven simulator
    /// ([`sim::Simulator`](crate::sim::Simulator)): full fidelity,
    /// glitch model, activity statistics, 1 lane.
    #[default]
    Event,
    /// The levelized bit-sliced interpreter
    /// ([`compile::CompiledEngine`](crate::compile::CompiledEngine)):
    /// 64 lanes, functional two-phase clocking.
    Compiled,
    /// The native-codegen backend
    /// ([`jit::JitEngine`](crate::jit::JitEngine)): the op program is
    /// emitted as Rust, compiled by `rustc` into a cached `cdylib`,
    /// and executed 256 lanes wide.
    Jit,
}

impl Backend {
    /// The accepted spellings, for usage strings and error messages.
    pub const EXPECTED: &'static str = "event|compiled|jit";

    /// Every backend, in fidelity-to-throughput order.
    pub const ALL: [Backend; 3] = [Backend::Event, Backend::Compiled, Backend::Jit];

    /// The canonical flag spelling (`"event"`, `"compiled"`, `"jit"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Event => "event",
            Backend::Compiled => "compiled",
            Backend::Jit => "jit",
        }
    }

    /// Builds a type-erased engine for `netlist` on this backend.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors, and for [`Backend::Jit`]
    /// the codegen/compile/load pipeline errors
    /// ([`Error::NativeCodegen`](crate::Error::NativeCodegen)).
    pub fn build(self, netlist: Netlist) -> Result<BoxedEngine> {
        struct Build(Netlist);
        impl BackendRunner for Build {
            type Output = Result<BoxedEngine>;
            fn run<E>(self) -> Self::Output
            where
                E: Engine + Send + 'static,
                E::Snapshot: PortableSnapshot + Send,
            {
                Ok(Box::new(E::from_netlist(self.0)?))
            }
        }
        self.dispatch(Build(netlist))
    }

    /// Resolves this backend to its concrete engine type and invokes
    /// `runner` with it.
    ///
    /// This is the one `match` over backends in the workspace: a caller
    /// generic over `E: Engine` writes a small [`BackendRunner`] and
    /// gets monomorphized entry points for every backend without
    /// repeating the dispatch.
    pub fn dispatch<R: BackendRunner>(self, runner: R) -> R::Output {
        match self {
            Backend::Event => runner.run::<crate::sim::Simulator>(),
            Backend::Compiled => runner.run::<crate::compile::CompiledEngine>(),
            Backend::Jit => runner.run::<crate::jit::JitEngine>(),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "event" => Ok(Backend::Event),
            "compiled" => Ok(Backend::Compiled),
            "jit" => Ok(Backend::Jit),
            other => Err(Error::UnknownBackend { name: other.to_owned() }),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A generic continuation for [`Backend::dispatch`]: `run` is called
/// with the concrete engine type the backend names.
///
/// The bounds are the superset every executor in the workspace needs —
/// engines move into worker threads (serve, pool, partition) and their
/// snapshots cross process boundaries (partition's process-isolation
/// mode), so `Send + 'static` and [`PortableSnapshot`] are part of the
/// dispatch contract rather than re-negotiated at each call site.
pub trait BackendRunner {
    /// What the continuation produces (typically `Result<...>` or an
    /// exit code).
    type Output;

    /// Invoked with the concrete engine type selected by the backend.
    fn run<E>(self) -> Self::Output
    where
        E: Engine + Send + 'static,
        E::Snapshot: PortableSnapshot + Send + 'static;
}

/// Object-safe subset of [`Engine`] for callers that pick a backend at
/// runtime and don't need to be generic.
///
/// Snapshots are carried as portable bytes (the associated `Snapshot`
/// type can't appear in an object-safe trait); every backend's
/// snapshot codec round-trips bit-exactly, so `restore_bytes ∘
/// snapshot_bytes` is identity on the architectural state.
pub trait DynEngine: std::fmt::Debug + Send {
    /// See [`Engine::netlist`].
    fn netlist(&self) -> &Netlist;
    /// See [`Engine::caps`].
    fn caps(&self) -> EngineCaps;
    /// See [`Engine::set_input`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::set_input`].
    fn set_input(&mut self, name: &str, value: i64) -> Result<()>;
    /// See [`Engine::try_tick`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::try_tick`].
    fn try_tick(&mut self) -> Result<()>;
    /// See [`Engine::try_settle`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::try_settle`].
    fn try_settle(&mut self) -> Result<()>;
    /// See [`Engine::peek`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::peek`].
    fn peek(&self, name: &str) -> Result<i64>;
    /// Captures the architectural state as portable snapshot bytes.
    fn snapshot_bytes(&self) -> Vec<u8>;
    /// Restores state captured by
    /// [`snapshot_bytes`](DynEngine::snapshot_bytes).
    ///
    /// # Errors
    ///
    /// [`Error::SnapshotDecode`](crate::Error::SnapshotDecode) for
    /// malformed bytes,
    /// [`Error::SnapshotMismatch`](crate::Error::SnapshotMismatch) for
    /// a different netlist shape.
    fn restore_bytes(&mut self, bytes: &[u8]) -> Result<()>;
    /// See [`Engine::inject`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::inject`].
    fn inject(&mut self, spec: &FaultSpec) -> Result<()>;
    /// See [`Engine::clear_faults`].
    fn clear_faults(&mut self);
    /// See [`Engine::cycle`].
    fn cycle(&self) -> u64;
    /// See [`Engine::set_event_cap`].
    fn set_event_cap(&mut self, cap: u64);
    /// See [`Engine::set_input_lanes`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::set_input_lanes`].
    fn set_input_lanes(&mut self, name: &str, values: &[i64]) -> Result<()>;
    /// See [`Engine::peek_lane`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::peek_lane`].
    fn peek_lane(&self, name: &str, lane: usize) -> Result<i64>;
    /// See [`Engine::peek_lanes`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::peek_lanes`].
    fn peek_lanes(&self, name: &str) -> Result<Vec<i64>>;
}

impl<E> DynEngine for E
where
    E: Engine + Send + 'static,
    E::Snapshot: PortableSnapshot,
{
    fn netlist(&self) -> &Netlist {
        Engine::netlist(self)
    }
    fn caps(&self) -> EngineCaps {
        Engine::caps(self)
    }
    fn set_input(&mut self, name: &str, value: i64) -> Result<()> {
        Engine::set_input(self, name, value)
    }
    fn try_tick(&mut self) -> Result<()> {
        Engine::try_tick(self)
    }
    fn try_settle(&mut self) -> Result<()> {
        Engine::try_settle(self)
    }
    fn peek(&self, name: &str) -> Result<i64> {
        Engine::peek(self, name)
    }
    fn snapshot_bytes(&self) -> Vec<u8> {
        Engine::snapshot(self).to_bytes()
    }
    fn restore_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let snapshot = E::Snapshot::from_bytes(bytes)?;
        Engine::restore(self, &snapshot)
    }
    fn inject(&mut self, spec: &FaultSpec) -> Result<()> {
        Engine::inject(self, spec)
    }
    fn clear_faults(&mut self) {
        Engine::clear_faults(self)
    }
    fn cycle(&self) -> u64 {
        Engine::cycle(self)
    }
    fn set_event_cap(&mut self, cap: u64) {
        Engine::set_event_cap(self, cap);
    }
    fn set_input_lanes(&mut self, name: &str, values: &[i64]) -> Result<()> {
        Engine::set_input_lanes(self, name, values)
    }
    fn peek_lane(&self, name: &str, lane: usize) -> Result<i64> {
        Engine::peek_lane(self, name, lane)
    }
    fn peek_lanes(&self, name: &str) -> Result<Vec<i64>> {
        Engine::peek_lanes(self, name)
    }
}

/// A runtime-selected, type-erased engine as produced by
/// [`Backend::build`].
pub type BoxedEngine = Box<dyn DynEngine>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("y", &q).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn backend_parses_every_canonical_name_and_round_trips() {
        for backend in Backend::ALL {
            let parsed: Backend = backend.name().parse().unwrap();
            assert_eq!(parsed, backend);
            assert_eq!(backend.to_string(), backend.name());
        }
    }

    #[test]
    fn unknown_backend_name_is_a_typed_error() {
        let err = "quantum".parse::<Backend>().unwrap_err();
        assert_eq!(err, Error::UnknownBackend { name: "quantum".into() });
        assert!(err.to_string().contains(Backend::EXPECTED));
    }

    #[test]
    fn default_backend_is_event() {
        assert_eq!(Backend::default(), Backend::Event);
    }

    #[test]
    fn build_produces_working_engines_on_every_backend() {
        for backend in Backend::ALL {
            let mut engine = backend.build(tiny_netlist()).unwrap();
            assert_eq!(
                engine.caps().backend,
                match backend {
                    Backend::Event => "event-driven",
                    Backend::Compiled => "compiled",
                    Backend::Jit => "jit",
                }
            );
            // Staged inputs apply after register capture, so the
            // registered output needs two edges on every backend.
            engine.set_input("x", 42).unwrap();
            engine.try_tick().unwrap();
            engine.try_tick().unwrap();
            assert_eq!(engine.peek("y").unwrap(), 42, "{backend}");
            assert_eq!(engine.cycle(), 2);
        }
    }

    #[test]
    fn boxed_snapshot_bytes_round_trip() {
        for backend in Backend::ALL {
            let mut engine = backend.build(tiny_netlist()).unwrap();
            engine.set_input("x", -7).unwrap();
            engine.try_tick().unwrap();
            engine.try_tick().unwrap();
            let bytes = engine.snapshot_bytes();
            engine.set_input("x", 3).unwrap();
            engine.try_tick().unwrap();
            engine.try_tick().unwrap();
            assert_eq!(engine.peek("y").unwrap(), 3, "{backend}");
            engine.restore_bytes(&bytes).unwrap();
            assert_eq!(engine.peek("y").unwrap(), -7, "{backend}");
        }
    }

    #[test]
    fn dispatch_hands_the_runner_the_concrete_type() {
        struct CapsOf;
        impl BackendRunner for CapsOf {
            type Output = (&'static str, usize);
            fn run<E>(self) -> Self::Output
            where
                E: Engine + Send + 'static,
                E::Snapshot: PortableSnapshot + Send,
            {
                let engine = E::from_netlist(tiny_netlist()).unwrap();
                let caps = engine.caps();
                (caps.backend, caps.lanes)
            }
        }
        assert_eq!(Backend::Event.dispatch(CapsOf), ("event-driven", 1));
        assert_eq!(Backend::Compiled.dispatch(CapsOf), ("compiled", 64));
        assert_eq!(Backend::Jit.dispatch(CapsOf), ("jit", 256));
    }

    #[test]
    fn single_lane_backend_reports_unsupported_lane_io() {
        let mut sim = crate::sim::Simulator::new(tiny_netlist()).unwrap();
        assert_eq!(Engine::caps(&sim).lanes, 1);
        let err = Engine::set_input_lanes(&mut sim, "x", &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            Error::Unsupported {
                backend: "event-driven".into(),
                what: "lane I/O (set_input_lanes)".into(),
            }
        );
        assert!(matches!(Engine::peek_lane(&sim, "y", 0), Err(Error::Unsupported { .. })));
        assert!(matches!(Engine::peek_lanes(&sim, "y"), Err(Error::Unsupported { .. })));
    }
}
