//! The unified execution surface over simulation backends.
//!
//! Every layer above the RTL substrate — the recovery executor, the
//! multi-lane pool, the campaign harnesses — drives a netlist through
//! the same small verbs: stage inputs, tick the clock, sample outputs,
//! checkpoint and roll back, inject faults. [`Engine`] names exactly
//! that surface so those layers can be generic over *how* a cycle is
//! evaluated:
//!
//! * [`sim::Simulator`](crate::sim::Simulator) — the event-driven
//!   backend, unit-delay with glitch modelling and activity statistics
//!   (the power-estimation substrate of the paper reproduction);
//! * [`compile::CompiledEngine`](crate::compile::CompiledEngine) — the
//!   levelized, 64-way bit-sliced backend, which trades the glitch
//!   model away for throughput.
//!
//! Backends self-describe through [`EngineCaps`] so callers can check
//! at runtime which fidelity features (activity stats, divergence
//! detection) are actually present, and how many independent sample
//! lanes one engine instance advances per tick.

use crate::fault::FaultSpec;
use crate::netlist::Netlist;
use crate::Result;

/// Static capability description of a simulation backend.
///
/// Obtained from [`Engine::caps`]; lets generic code (and reports)
/// distinguish backends without naming concrete types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCaps {
    /// Short backend name for reports ("event-driven", "compiled").
    pub backend: &'static str,
    /// Independent sample streams advanced per tick (1 for the scalar
    /// event-driven simulator, 64 for the bit-sliced engine).
    pub lanes: usize,
    /// Whether the backend records switching-activity statistics.
    pub activity_stats: bool,
    /// Whether combinational settling models glitches (unit-delay
    /// event propagation) rather than a single functional pass.
    pub glitch_model: bool,
    /// Whether runaway combinational activity is detected and reported
    /// as [`Error::SimulationDiverged`](crate::Error::SimulationDiverged).
    pub divergence_detection: bool,
}

/// A snapshot that can cross address spaces: encodable to a
/// self-contained byte string and decodable back, bit-exactly.
///
/// The partition layer's process-isolated emulation mode is the
/// customer: worker processes ship their engine snapshot to the
/// supervisor at every barrier, the supervisor parks it in a durable
/// on-disk store, and a respawned worker is re-seeded from those same
/// bytes. Round-tripping must be identity (`from_bytes(to_bytes(s)) ==
/// s`), so a restore from decoded bytes resumes execution exactly like
/// a restore from the original in-memory snapshot.
///
/// Encodings are backend-tagged and versioned; decoding bytes produced
/// by a different backend, a truncated record, or corrupt data yields
/// [`Error::SnapshotDecode`](crate::Error::SnapshotDecode), never a
/// panic. Shape compatibility with the restoring engine's netlist is
/// *not* checked here — [`Engine::restore`] performs that check and
/// reports [`Error::SnapshotMismatch`](crate::Error::SnapshotMismatch).
pub trait PortableSnapshot: Sized {
    /// Encodes the complete snapshot as a self-contained byte string.
    fn to_bytes(&self) -> Vec<u8>;

    /// Decodes a byte string produced by [`to_bytes`](PortableSnapshot::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotDecode`](crate::Error::SnapshotDecode)
    /// for truncated, corrupted, wrong-backend or wrong-version bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self>;
}

/// A cycle-accurate netlist execution backend.
///
/// The trait captures the contract the event-driven
/// [`Simulator`](crate::sim::Simulator) always had: inputs staged with
/// [`set_input`](Engine::set_input) take effect at the next
/// [`try_tick`](Engine::try_tick) (or immediately after
/// [`try_settle`](Engine::try_settle)); outputs read back settled
/// values; snapshots capture the complete architectural state
/// (registers, memories, staged inputs, armed faults) and restoring
/// one resumes execution bit-exactly.
///
/// Backends with more than one lane (see [`EngineCaps::lanes`])
/// broadcast scalar `set_input` values to every lane and report lane 0
/// from `peek`, so scalar code behaves identically on every backend.
pub trait Engine: Sized + std::fmt::Debug {
    /// Opaque architectural-state checkpoint for this backend.
    type Snapshot: Clone + std::fmt::Debug;

    /// Builds an engine for a validated netlist, with all state at
    /// power-on defaults (registers and memories zeroed, combinational
    /// logic settled).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation/simulation errors.
    fn from_netlist(netlist: Netlist) -> Result<Self>;

    /// The netlist under execution.
    fn netlist(&self) -> &Netlist;

    /// Capability flags of this backend.
    fn caps(&self) -> EngineCaps;

    /// Stages a value on an input port; it is applied by the next
    /// [`try_tick`](Engine::try_tick) or
    /// [`try_settle`](Engine::try_settle). Multi-lane backends
    /// broadcast the value to every lane.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ports, non-input ports, or values
    /// outside the port's two's-complement range.
    fn set_input(&mut self, name: &str, value: i64) -> Result<()>;

    /// Advances one clock cycle: registers capture, staged inputs
    /// apply, combinational logic settles.
    ///
    /// # Errors
    ///
    /// Backend-specific; the event-driven simulator reports
    /// [`Error::SimulationDiverged`](crate::Error::SimulationDiverged)
    /// when settling exceeds the event cap.
    fn try_tick(&mut self) -> Result<()>;

    /// Applies staged inputs and settles combinational logic without
    /// advancing the clock.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`try_tick`](Engine::try_tick).
    fn try_settle(&mut self) -> Result<()>;

    /// Reads the settled value of a port (lane 0 on multi-lane
    /// backends), sign-extended from the port width.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ports.
    fn peek(&self, name: &str) -> Result<i64>;

    /// Captures the complete architectural state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Restores a snapshot previously taken from a compatible engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SnapshotMismatch`](crate::Error::SnapshotMismatch)
    /// when the snapshot belongs to a different netlist shape.
    fn restore(&mut self, snapshot: &Self::Snapshot) -> Result<()>;

    /// Arms a fault. Stuck-at faults take effect immediately;
    /// transient faults fire at their scheduled cycle. Multi-lane
    /// backends apply faults to every lane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FaultTarget`](crate::Error::FaultTarget) when
    /// the spec does not resolve against the netlist.
    fn inject(&mut self, spec: &FaultSpec) -> Result<()>;

    /// Removes all armed faults (stuck-at clamps and pending
    /// transients). See backend docs for how already-forced values
    /// decay afterwards.
    fn clear_faults(&mut self);

    /// Clock cycles executed since power-on (or since the restored
    /// snapshot was taken).
    fn cycle(&self) -> u64;

    /// Bounds the per-cycle settling work used for divergence
    /// detection. A no-op on backends without an event loop
    /// ([`EngineCaps::divergence_detection`] is `false`).
    fn set_event_cap(&mut self, cap: u64);
}

impl Engine for crate::sim::Simulator {
    type Snapshot = crate::sim::Snapshot;

    fn from_netlist(netlist: Netlist) -> Result<Self> {
        crate::sim::Simulator::new(netlist)
    }

    fn netlist(&self) -> &Netlist {
        self.netlist()
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "event-driven",
            lanes: 1,
            activity_stats: true,
            glitch_model: true,
            divergence_detection: true,
        }
    }

    fn set_input(&mut self, name: &str, value: i64) -> Result<()> {
        self.set_input(name, value)
    }

    fn try_tick(&mut self) -> Result<()> {
        self.try_tick()
    }

    fn try_settle(&mut self) -> Result<()> {
        self.try_settle()
    }

    fn peek(&self, name: &str) -> Result<i64> {
        self.peek(name)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.snapshot()
    }

    fn restore(&mut self, snapshot: &Self::Snapshot) -> Result<()> {
        self.restore(snapshot)
    }

    fn inject(&mut self, spec: &FaultSpec) -> Result<()> {
        self.inject(spec)
    }

    fn clear_faults(&mut self) {
        self.clear_faults();
    }

    fn cycle(&self) -> u64 {
        self.cycle()
    }

    fn set_event_cap(&mut self, cap: u64) {
        self.set_event_cap(cap);
    }
}
