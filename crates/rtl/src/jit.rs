//! Native-codegen (`jit`) simulation backend: netlist → Rust → `rustc`
//! → loaded kernel.
//!
//! The levelized op [`Program`] the bit-sliced interpreter replays is
//! instead *emitted as Rust source* — one straight-line function per
//! design, registers as explicit capture/commit phases — compiled by
//! `rustc` into a `cdylib` at a content-hashed cache path, loaded with
//! a minimal `dlopen` shim, and wrapped in [`JitEngine`], a full
//! [`Engine`] implementation (snapshot/restore, stuck-at clamps,
//! scheduled bit-flips and RAM upsets included).
//!
//! Two things distinguish the generated kernel from the interpreter:
//!
//! * **Wider data plane.** Words are `[u64; 4]` blocks: [`LANES`]
//!   (256) independent sample lanes per pass instead of the
//!   interpreter's 64, with no per-op dispatch — the whole pass is
//!   branch-free straight-line code `rustc` can keep in registers and
//!   auto-vectorize.
//! * **Word-lowered adders.** Behavioral `CarryAdd`/`CarrySub` cells
//!   whose result provably fits fewer bits than their output bus get
//!   their high output bits emitted as sign copies and the dead carry
//!   chain above them dropped. Legality uses only *structural,
//!   fault-invariant* facts (see [`effective_width`]): a
//!   sign-replication strip (repeated top net of a bus is
//!   value-invariant sign extension, even under a stuck-at on that
//!   shared net) and full signed ranges by width. Propagated value
//!   intervals and dwt-lint L003 range anchors are deliberately *not*
//!   used: they assume fault-free operation, and a stuck-at can force
//!   values outside them.
//!
//! Cycle semantics (edge ordering, fault application points, clamp
//! masks) mirror [`CompiledEngine`](crate::compile::CompiledEngine)
//! exactly; the differential suite in `dwt-bench` holds all three
//! backends bit-identical under fault injection.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use crate::cell::CellKind;
use crate::compile::{slot, Op, Program, StagedInput};
use crate::engine::{Engine, EngineCaps};
use crate::fault::{self, FaultSpec, ResolvedFault};
use crate::net::{signed_to_bits, Bus};
use crate::netlist::{CellId, Netlist, PortDirection};
use crate::snapbytes::{ByteReader, ByteWriter};
use crate::{Error, Result};

/// Independent sample streams advanced per tick.
pub const LANES: usize = 256;

/// `u64` blocks per word (`LANES / 64`).
const BLOCKS: usize = 4;

/// All 64 lanes of one block set.
const ALL: u64 = !0;

/// Effective signed width of a bus: its width after stripping the
/// sign-replication strip (a run of repeated top `NetId`s).
///
/// This is the fault-invariant core of dwt-lint's L003 width analysis:
/// replicated top bits are the *same net*, so whatever value that net
/// takes — including a stuck-at forced value, since the clamp applies
/// to the net once — the bus reads back as a sign extension of its low
/// `effective_width` bits. The bus value is therefore always inside
/// the full signed range of that effective width.
fn effective_width(bus: &Bus) -> usize {
    let mut w = bus.width();
    while w > 1 && bus.bit(w - 1) == bus.bit(w - 2) {
        w -= 1;
    }
    w
}

/// Smallest signed width whose range contains `[lo, hi]`.
fn bits_for(lo: i128, hi: i128) -> usize {
    for w in 1..=64usize {
        if lo >= -(1i128 << (w - 1)) && hi < (1i128 << (w - 1)) {
            return w;
        }
    }
    64
}

/// Codegen decisions worth reporting: how much word-lowering narrowing
/// actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodegenStats {
    /// Adder output bits emitted as sign copies instead of full-adder
    /// sums.
    pub elided_bits: usize,
    /// Ops dropped entirely (dead carry-chain temporaries above the
    /// proven width).
    pub skipped_ops: usize,
}

/// Everything the host needs from one codegen run.
struct Generated {
    source: String,
    abi: u64,
    /// Flat RAM buffer length in `u64`s (all arrays concatenated,
    /// plane-major, [`BLOCKS`] words per plane).
    ram_len: usize,
    /// Per-RAM base offset into the flat buffer, in `u64`s.
    ram_offsets: Vec<usize>,
    stats: CodegenStats,
}

/// Maps adder output-bit slots proven redundant to the slot of the
/// sign bit they replicate, using only structural facts (see module
/// docs for the legality argument).
fn elision_map(netlist: &Netlist, stats: &mut CodegenStats) -> HashMap<u32, u32> {
    let mut elide = HashMap::new();
    for cell in netlist.cells() {
        let (a, b, out, sub) = match &cell.kind {
            CellKind::CarryAdd { a, b, out } => (a, b, out, false),
            CellKind::CarrySub { a, b, out } => (a, b, out, true),
            _ => continue,
        };
        let full = |w: usize| (-(1i128 << (w - 1)), (1i128 << (w - 1)) - 1);
        let (alo, ahi) = full(effective_width(a));
        let (blo, bhi) = full(effective_width(b));
        let (lo, hi) = if sub { (alo - bhi, ahi - blo) } else { (alo + blo, ahi + bhi) };
        let wp = bits_for(lo, hi);
        if wp < out.width() {
            let src = slot(out.bit(wp - 1));
            for i in wp..out.width() {
                elide.insert(slot(out.bit(i)), src);
            }
            stats.elided_bits += out.width() - wp;
        }
    }
    elide
}

/// Destination slot of an op, if it has one.
fn op_dst(op: &Op) -> Option<u32> {
    match *op {
        Op::Const { dst, .. }
        | Op::Copy { dst, .. }
        | Op::Not { dst, .. }
        | Op::And { dst, .. }
        | Op::Or { dst, .. }
        | Op::Xor { dst, .. }
        | Op::FaSum { dst, .. }
        | Op::FaCarry { dst, .. }
        | Op::Lut { dst, .. } => Some(dst),
        Op::RamRead { .. } => None,
    }
}

/// Slots an op reads.
fn op_reads(op: &Op, program: &Program) -> Vec<u32> {
    match *op {
        Op::Const { .. } => Vec::new(),
        Op::Copy { a, .. } | Op::Not { a, .. } => vec![a],
        Op::And { a, b, .. } | Op::Or { a, b, .. } | Op::Xor { a, b, .. } => vec![a, b],
        Op::FaSum { a, b, cin, .. } | Op::FaCarry { a, b, cin, .. } => vec![a, b, cin],
        Op::Lut { ref inputs, .. } => inputs.to_vec(),
        Op::RamRead { port } => program.rams[port as usize].raddr.clone(),
    }
}

/// Emission state for the straight-line eval body: which slots already
/// have a post-clamp local (`t{slot}`) or a pre-clamp local
/// (`r{slot}`) in scope.
struct Emitter {
    src: String,
    loaded: HashSet<u32>,
    computed: HashSet<u32>,
    zero: u32,
    one: u32,
}

impl Emitter {
    /// Rust expression for the post-clamp value of a slot, emitting a
    /// load-on-first-use for slots not computed in this pass
    /// (registers, inputs).
    fn val(&mut self, s: u32) -> String {
        if s == self.zero {
            return "ZEROW".into();
        }
        if s == self.one {
            return "ALLW".into();
        }
        if self.computed.contains(&s) || self.loaded.contains(&s) {
            return format!("t{s}");
        }
        let _ = writeln!(self.src, "    let t{s} = ld(w, {});", s as usize * BLOCKS);
        self.loaded.insert(s);
        format!("t{s}")
    }

    /// Emits one computed op: pre-clamp local, clamped store, post-clamp
    /// local.
    fn define(&mut self, dst: u32, expr: &str) {
        let _ = writeln!(self.src, "    let r{dst} = {expr};");
        let _ = writeln!(
            self.src,
            "    let t{dst} = stc::<C>(w, am, om, {}, r{dst});",
            dst as usize * BLOCKS
        );
        self.computed.insert(dst);
    }
}

/// FNV-1a 64-bit hash (cache keying; not cryptographic).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Translates a compiled program into a self-contained Rust `cdylib`
/// source exporting the kernel entry points.
fn generate(netlist: &Netlist, program: &Program) -> Generated {
    let mut stats = CodegenStats::default();
    let elide = elision_map(netlist, &mut stats);

    // Flat RAM layout: arrays concatenated, BLOCKS u64s per bit-plane.
    let mut ram_offsets = Vec::with_capacity(program.rams.len());
    let mut ram_len = 0usize;
    for r in &program.rams {
        ram_offsets.push(ram_len);
        ram_len += r.words * r.width * BLOCKS;
    }

    let abi = fnv64(
        format!(
            "dwt-jit-abi v1 slots={} regbits={} ram={}",
            program.slots, program.reg_bits, ram_len
        )
        .as_bytes(),
    );

    // Reverse liveness over temp slots: a carry temporary is emitted
    // only if a live op reads it. Elided destinations read just their
    // sign-bit source, so the carry chain above the proven width dies.
    let first_temp = program.one + 1;
    let mut needed: HashSet<u32> = HashSet::new();
    let mut emit = vec![true; program.ops.len()];
    for (i, op) in program.ops.iter().enumerate().rev() {
        if let Some(dst) = op_dst(op) {
            if dst >= first_temp && !needed.contains(&dst) {
                emit[i] = false;
                continue;
            }
            if let Some(&src) = elide.get(&dst) {
                needed.insert(src);
                continue;
            }
        }
        for s in op_reads(op, program) {
            needed.insert(s);
        }
    }
    stats.skipped_ops = emit.iter().filter(|&&e| !e).count();

    let mut e = Emitter {
        src: String::with_capacity(64 * 1024),
        loaded: HashSet::new(),
        computed: HashSet::new(),
        zero: program.zero,
        one: program.one,
    };

    let _ = writeln!(
        e.src,
        "// Generated by dwt-rtl jit codegen; do not edit.\n\
         #![allow(unused_variables, unused_mut, clippy::all)]\n\
         type W = [u64; 4];\n\
         const ZEROW: W = [0u64; 4];\n\
         const ALLW: W = [!0u64; 4];\n\
         #[inline(always)]\n\
         unsafe fn ld(p: *const u64, o: usize) -> W {{\n\
             [*p.add(o), *p.add(o + 1), *p.add(o + 2), *p.add(o + 3)]\n\
         }}\n\
         #[inline(always)]\n\
         unsafe fn st(p: *mut u64, o: usize, v: W) {{\n\
             *p.add(o) = v[0];\n\
             *p.add(o + 1) = v[1];\n\
             *p.add(o + 2) = v[2];\n\
             *p.add(o + 3) = v[3];\n\
         }}\n\
         #[inline(always)]\n\
         fn andw(a: W, b: W) -> W {{ [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]] }}\n\
         #[inline(always)]\n\
         fn orw(a: W, b: W) -> W {{ [a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]] }}\n\
         #[inline(always)]\n\
         fn xorw(a: W, b: W) -> W {{ [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]] }}\n\
         #[inline(always)]\n\
         fn notw(a: W) -> W {{ [!a[0], !a[1], !a[2], !a[3]] }}\n\
         #[inline(always)]\n\
         fn majw(a: W, b: W, c: W) -> W {{ orw(orw(andw(a, b), andw(a, c)), andw(b, c)) }}\n\
         #[inline(always)]\n\
         fn any(a: W) -> bool {{ (a[0] | a[1] | a[2] | a[3]) != 0 }}\n\
         #[inline(always)]\n\
         unsafe fn stc<const C: bool>(w: *mut u64, am: *const u64, om: *const u64, o: usize, v: W) -> W {{\n\
             let x = if C {{ orw(andw(v, ld(am, o)), ld(om, o)) }} else {{ v }};\n\
             st(w, o, x);\n\
             x\n\
         }}\n\
         #[no_mangle]\n\
         pub extern \"C\" fn dwt_jit_abi() -> u64 {{ {abi:#018x} }}"
    );

    // --- eval -------------------------------------------------------
    let _ = writeln!(
        e.src,
        "unsafe fn eval<const C: bool>(w: *mut u64, ram: *const u64, am: *const u64, om: *const u64) {{"
    );
    for (i, op) in program.ops.iter().enumerate() {
        if !emit[i] {
            continue;
        }
        if let Some(dst) = op_dst(op) {
            if let Some(&src) = elide.get(&dst) {
                // Sign copy of the pre-clamp value: the event-driven
                // simulator computes high sum bits from the word add,
                // independent of any clamp forced onto the sign net.
                let expr = if e.computed.contains(&src) { format!("r{src}") } else { e.val(src) };
                e.define(dst, &expr);
                continue;
            }
        }
        match *op {
            Op::Const { dst, ones } => {
                let expr = if ones { "ALLW" } else { "ZEROW" };
                e.define(dst, expr);
            }
            Op::Copy { dst, a } => {
                let a = e.val(a);
                e.define(dst, &a);
            }
            Op::Not { dst, a } => {
                let a = e.val(a);
                e.define(dst, &format!("notw({a})"));
            }
            Op::And { dst, a, b } => {
                let (a, b) = (e.val(a), e.val(b));
                e.define(dst, &format!("andw({a}, {b})"));
            }
            Op::Or { dst, a, b } => {
                let (a, b) = (e.val(a), e.val(b));
                e.define(dst, &format!("orw({a}, {b})"));
            }
            Op::Xor { dst, a, b } => {
                let (a, b) = (e.val(a), e.val(b));
                e.define(dst, &format!("xorw({a}, {b})"));
            }
            Op::FaSum { dst, a, b, cin, invert_b } => {
                let (a, b, c) = (e.val(a), e.val(b), e.val(cin));
                let b = if invert_b { format!("notw({b})") } else { b };
                e.define(dst, &format!("xorw(xorw({a}, {b}), {c})"));
            }
            Op::FaCarry { dst, a, b, cin, invert_b } => {
                let (a, b, c) = (e.val(a), e.val(b), e.val(cin));
                let b = if invert_b { format!("notw({b})") } else { b };
                e.define(dst, &format!("majw({a}, {b}, {c})"));
            }
            Op::Lut { dst, ref inputs, table } => {
                let names: Vec<String> = inputs.iter().map(|&s| e.val(s)).collect();
                let mut terms = Vec::new();
                for m in 0..(1u32 << inputs.len()) {
                    if table & (1u16 << m) != 0 {
                        let mut term = "ALLW".to_owned();
                        for (i, name) in names.iter().enumerate() {
                            let lit = if (m >> i) & 1 == 1 {
                                name.clone()
                            } else {
                                format!("notw({name})")
                            };
                            term = format!("andw({term}, {lit})");
                        }
                        terms.push(term);
                    }
                }
                let expr = terms
                    .into_iter()
                    .reduce(|acc, t| format!("orw({acc}, {t})"))
                    .unwrap_or_else(|| "ZEROW".to_owned());
                e.define(dst, &expr);
            }
            Op::RamRead { port } => {
                let p = port as usize;
                let r = &program.rams[p];
                let names: Vec<String> = r.raddr.clone().iter().map(|&a| e.val(a)).collect();
                for j in 0..r.width {
                    let _ = writeln!(e.src, "    let mut acc{p}_{j} = ZEROW;");
                }
                let _ = writeln!(e.src, "    let mut wd{p} = 0usize;");
                let _ = writeln!(e.src, "    while wd{p} < {} {{", r.words);
                let _ = writeln!(e.src, "        let mut dec = ALLW;");
                for (i, name) in names.iter().enumerate() {
                    let _ = writeln!(
                        e.src,
                        "        dec = andw(dec, if (wd{p} >> {i}) & 1 == 1 {{ {name} }} else {{ notw({name}) }});"
                    );
                }
                let _ = writeln!(e.src, "        if any(dec) {{");
                let _ = writeln!(
                    e.src,
                    "            let base = {} + wd{p} * {};",
                    ram_offsets[p],
                    r.width * BLOCKS
                );
                for j in 0..r.width {
                    let _ = writeln!(
                        e.src,
                        "            acc{p}_{j} = orw(acc{p}_{j}, andw(dec, ld(ram, base + {})));",
                        j * BLOCKS
                    );
                }
                let _ = writeln!(e.src, "        }}");
                let _ = writeln!(e.src, "        wd{p} += 1;");
                let _ = writeln!(e.src, "    }}");
                for (j, &d) in r.rdata.clone().iter().enumerate() {
                    e.define(d, &format!("acc{p}_{j}"));
                }
            }
        }
    }
    let _ = writeln!(e.src, "}}");
    let _ = writeln!(
        e.src,
        "#[no_mangle]\n\
         pub unsafe extern \"C\" fn dwt_jit_eval(w: *mut u64, ram: *const u64) {{\n\
             eval::<false>(w, ram, core::ptr::null(), core::ptr::null());\n\
         }}\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn dwt_jit_eval_clamped(w: *mut u64, ram: *const u64, am: *const u64, om: *const u64) {{\n\
             eval::<true>(w, ram, am, om);\n\
         }}"
    );

    // --- register capture / commit ---------------------------------
    let _ = writeln!(
        e.src,
        "#[no_mangle]\n\
         pub unsafe extern \"C\" fn dwt_jit_capture(w: *const u64, s: *mut u64) {{"
    );
    for reg in &program.regs {
        for (k, &d) in reg.d.iter().enumerate() {
            let _ = writeln!(
                e.src,
                "    st(s, {}, ld(w, {}));",
                (reg.offset + k) * BLOCKS,
                d as usize * BLOCKS
            );
        }
    }
    let _ = writeln!(e.src, "}}");

    let _ = writeln!(
        e.src,
        "unsafe fn commit<const C: bool>(w: *mut u64, s: *const u64, am: *const u64, om: *const u64) {{"
    );
    for reg in &program.regs {
        for (k, &q) in reg.q.iter().enumerate() {
            let _ = writeln!(
                e.src,
                "    let _ = stc::<C>(w, am, om, {}, ld(s, {}));",
                q as usize * BLOCKS,
                (reg.offset + k) * BLOCKS
            );
        }
    }
    let _ = writeln!(
        e.src,
        "}}\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn dwt_jit_commit(w: *mut u64, s: *const u64) {{\n\
             commit::<false>(w, s, core::ptr::null(), core::ptr::null());\n\
         }}\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn dwt_jit_commit_clamped(w: *mut u64, s: *const u64, am: *const u64, om: *const u64) {{\n\
             commit::<true>(w, s, am, om);\n\
         }}"
    );

    // --- RAM write commit -------------------------------------------
    let _ = writeln!(
        e.src,
        "#[no_mangle]\n\
         pub unsafe extern \"C\" fn dwt_jit_ram_commit(w: *const u64, ram: *mut u64) {{"
    );
    for (p, r) in program.rams.iter().enumerate() {
        let _ = writeln!(e.src, "    let wen{p} = ld(w, {});", r.wen as usize * BLOCKS);
        let _ = writeln!(e.src, "    if any(wen{p}) {{");
        for (i, &a) in r.waddr.iter().enumerate() {
            let _ = writeln!(e.src, "        let wa{p}_{i} = ld(w, {});", a as usize * BLOCKS);
        }
        for (j, &d) in r.wdata.iter().enumerate() {
            let _ = writeln!(e.src, "        let wv{p}_{j} = ld(w, {});", d as usize * BLOCKS);
        }
        let _ = writeln!(e.src, "        let mut wd{p} = 0usize;");
        let _ = writeln!(e.src, "        while wd{p} < {} {{", r.words);
        let _ = writeln!(e.src, "            let mut sel = wen{p};");
        for i in 0..r.waddr.len() {
            let _ = writeln!(
                e.src,
                "            sel = andw(sel, if (wd{p} >> {i}) & 1 == 1 {{ wa{p}_{i} }} else {{ notw(wa{p}_{i}) }});"
            );
        }
        let _ = writeln!(e.src, "            if any(sel) {{");
        let _ = writeln!(
            e.src,
            "                let base = {} + wd{p} * {};",
            ram_offsets[p],
            r.width * BLOCKS
        );
        for j in 0..r.width {
            let _ = writeln!(
                e.src,
                "                let o = base + {};\n\
                 \x20               let old = ld(ram as *const u64, o);\n\
                 \x20               st(ram, o, orw(andw(old, notw(sel)), andw(wv{p}_{j}, sel)));",
                j * BLOCKS
            );
        }
        let _ = writeln!(e.src, "            }}");
        let _ = writeln!(e.src, "            wd{p} += 1;");
        let _ = writeln!(e.src, "        }}");
        let _ = writeln!(e.src, "    }}");
    }
    let _ = writeln!(e.src, "}}");

    Generated { source: e.src, abi, ram_len, ram_offsets, stats }
}

/// Minimal `dlopen`/`dlsym` shim — the only unsafe code in the crate.
///
/// Library handles are intentionally leaked: kernels are cached for
/// the process lifetime and never unloaded, so the code behind the
/// resolved function pointers cannot disappear under a live engine.
#[allow(unsafe_code)]
mod native {
    use std::ffi::{c_char, c_int, c_void, CStr, CString};
    use std::path::Path;

    use crate::{Error, Result};

    extern "C" {
        fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        fn dlerror() -> *mut c_char;
    }

    const RTLD_NOW: c_int = 0x2;

    pub(super) type EvalFn = unsafe extern "C" fn(*mut u64, *const u64);
    pub(super) type EvalClampedFn =
        unsafe extern "C" fn(*mut u64, *const u64, *const u64, *const u64);
    pub(super) type CaptureFn = unsafe extern "C" fn(*const u64, *mut u64);
    pub(super) type CommitFn = unsafe extern "C" fn(*mut u64, *const u64);
    pub(super) type CommitClampedFn =
        unsafe extern "C" fn(*mut u64, *const u64, *const u64, *const u64);
    pub(super) type RamCommitFn = unsafe extern "C" fn(*const u64, *mut u64);
    type AbiFn = unsafe extern "C" fn() -> u64;

    /// Resolved entry points of one loaded kernel library.
    #[derive(Debug, Clone, Copy)]
    pub(super) struct JitFns {
        pub(super) eval: EvalFn,
        pub(super) eval_clamped: EvalClampedFn,
        pub(super) capture: CaptureFn,
        pub(super) commit: CommitFn,
        pub(super) commit_clamped: CommitClampedFn,
        pub(super) ram_commit: RamCommitFn,
    }

    fn last_error() -> String {
        let p = unsafe { dlerror() };
        if p.is_null() {
            "unknown dl error".into()
        } else {
            unsafe { CStr::from_ptr(p) }.to_string_lossy().into_owned()
        }
    }

    fn err(stage: &str, detail: String) -> Error {
        Error::NativeCodegen { stage: stage.into(), detail }
    }

    /// Opens a kernel library, checks its ABI fingerprint, and
    /// resolves every entry point.
    pub(super) fn load(path: &Path, expected_abi: u64) -> Result<JitFns> {
        let text = path
            .to_str()
            .ok_or_else(|| err("dlopen", format!("non-UTF8 path {}", path.display())))?;
        let cpath =
            CString::new(text).map_err(|_| err("dlopen", "NUL byte in library path".into()))?;
        let handle = unsafe { dlopen(cpath.as_ptr(), RTLD_NOW) };
        if handle.is_null() {
            return Err(err("dlopen", last_error()));
        }
        let sym = |name: &str| -> Result<*mut c_void> {
            let cname = CString::new(name).expect("symbol names contain no NUL");
            let p = unsafe { dlsym(handle, cname.as_ptr()) };
            if p.is_null() {
                Err(err("dlsym", format!("{name}: {}", last_error())))
            } else {
                Ok(p)
            }
        };
        // Raw dl pointers are transmuted to the exact extern "C"
        // signatures the generated source exports; the ABI fingerprint
        // check below rejects stale or foreign libraries first.
        unsafe {
            let abi = std::mem::transmute::<*mut c_void, AbiFn>(sym("dwt_jit_abi")?);
            let got = abi();
            if got != expected_abi {
                return Err(err(
                    "abi",
                    format!("kernel fingerprint {got:#018x}, expected {expected_abi:#018x}"),
                ));
            }
            Ok(JitFns {
                eval: std::mem::transmute::<*mut c_void, EvalFn>(sym("dwt_jit_eval")?),
                eval_clamped: std::mem::transmute::<*mut c_void, EvalClampedFn>(sym(
                    "dwt_jit_eval_clamped",
                )?),
                capture: std::mem::transmute::<*mut c_void, CaptureFn>(sym("dwt_jit_capture")?),
                commit: std::mem::transmute::<*mut c_void, CommitFn>(sym("dwt_jit_commit")?),
                commit_clamped: std::mem::transmute::<*mut c_void, CommitClampedFn>(sym(
                    "dwt_jit_commit_clamped",
                )?),
                ram_commit: std::mem::transmute::<*mut c_void, RamCommitFn>(sym(
                    "dwt_jit_ram_commit",
                )?),
            })
        }
    }
}

/// Safe call surface over the raw kernel entry points: every slice
/// length is asserted against the geometry the kernel was generated
/// for before a pointer crosses the FFI boundary.
#[derive(Debug, Clone, Copy)]
struct Kernel {
    fns: native::JitFns,
    words_len: usize,
    ram_len: usize,
    scratch_len: usize,
}

#[allow(unsafe_code)]
impl Kernel {
    fn check(&self, words: usize, ram: usize) {
        assert_eq!(words, self.words_len, "word buffer length");
        assert_eq!(ram, self.ram_len, "ram buffer length");
    }

    fn eval(&self, words: &mut [u64], ram: &[u64]) {
        self.check(words.len(), ram.len());
        unsafe { (self.fns.eval)(words.as_mut_ptr(), ram.as_ptr()) }
    }

    fn eval_clamped(&self, words: &mut [u64], ram: &[u64], am: &[u64], om: &[u64]) {
        self.check(words.len(), ram.len());
        assert_eq!(am.len(), self.words_len);
        assert_eq!(om.len(), self.words_len);
        unsafe {
            (self.fns.eval_clamped)(words.as_mut_ptr(), ram.as_ptr(), am.as_ptr(), om.as_ptr());
        }
    }

    fn capture(&self, words: &[u64], scratch: &mut [u64]) {
        assert_eq!(words.len(), self.words_len);
        assert_eq!(scratch.len(), self.scratch_len);
        unsafe { (self.fns.capture)(words.as_ptr(), scratch.as_mut_ptr()) }
    }

    fn commit(&self, words: &mut [u64], scratch: &[u64]) {
        assert_eq!(words.len(), self.words_len);
        assert_eq!(scratch.len(), self.scratch_len);
        unsafe { (self.fns.commit)(words.as_mut_ptr(), scratch.as_ptr()) }
    }

    fn commit_clamped(&self, words: &mut [u64], scratch: &[u64], am: &[u64], om: &[u64]) {
        assert_eq!(words.len(), self.words_len);
        assert_eq!(scratch.len(), self.scratch_len);
        assert_eq!(am.len(), self.words_len);
        assert_eq!(om.len(), self.words_len);
        unsafe {
            (self.fns.commit_clamped)(
                words.as_mut_ptr(),
                scratch.as_ptr(),
                am.as_ptr(),
                om.as_ptr(),
            );
        }
    }

    fn ram_commit(&self, words: &[u64], ram: &mut [u64]) {
        self.check(words.len(), ram.len());
        unsafe { (self.fns.ram_commit)(words.as_ptr(), ram.as_mut_ptr()) }
    }
}

/// Process-wide kernel registry keyed by source hash: each distinct
/// generated source is compiled and loaded at most once per process.
static KERNELS: OnceLock<Mutex<HashMap<u64, native::JitFns>>> = OnceLock::new();

/// Kernel cache directory: `$DWT_JIT_CACHE`, or
/// `<tmp>/dwt-jit-cache`.
fn cache_dir() -> std::path::PathBuf {
    match std::env::var_os("DWT_JIT_CACHE") {
        Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => std::env::temp_dir().join("dwt-jit-cache"),
    }
}

fn stage_err(stage: &str) -> impl Fn(std::io::Error) -> Error + '_ {
    move |e| Error::NativeCodegen { stage: stage.into(), detail: e.to_string() }
}

/// Compiles (or reuses from cache) and loads the kernel for one
/// generated source.
///
/// The cache key is the FNV-1a hash of the source itself, so any
/// codegen change reissues `rustc`; the library is compiled to a
/// process-unique temp name and atomically renamed into place, which
/// makes concurrent builds of the same design (parallel test binaries)
/// race-free.
fn build_kernel(source: &str, abi: u64) -> Result<native::JitFns> {
    let hash = fnv64(source.as_bytes());
    let registry = KERNELS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&fns) = map.get(&hash) {
        return Ok(fns);
    }

    let dir = cache_dir();
    std::fs::create_dir_all(&dir).map_err(stage_err("cache"))?;
    let lib = dir.join(format!("dwt_jit_{hash:016x}{}", std::env::consts::DLL_SUFFIX));
    if !lib.exists() {
        let src_path = dir.join(format!("dwt_jit_{hash:016x}.rs"));
        std::fs::write(&src_path, source).map_err(stage_err("codegen"))?;
        let tmp = dir.join(format!("dwt_jit_{hash:016x}.{}.tmp", std::process::id()));
        let rustc = std::env::var("DWT_JIT_RUSTC").unwrap_or_else(|_| "rustc".into());
        let output = std::process::Command::new(&rustc)
            .args(["--edition=2021", "--crate-type=cdylib", "-C", "opt-level=3"])
            .args(["-C", "codegen-units=1", "-C", "debuginfo=0"])
            .arg("-o")
            .arg(&tmp)
            .arg(&src_path)
            .output()
            .map_err(|e| Error::NativeCodegen {
                stage: "rustc".into(),
                detail: format!("spawning '{rustc}': {e}"),
            })?;
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            return Err(Error::NativeCodegen {
                stage: "rustc".into(),
                detail: format!(
                    "{}: {}",
                    output.status,
                    stderr.lines().take(12).collect::<Vec<_>>().join("\n")
                ),
            });
        }
        std::fs::rename(&tmp, &lib).map_err(stage_err("cache"))?;
    }
    let fns = native::load(&lib, abi)?;
    map.insert(hash, fns);
    Ok(fns)
}

/// Leading tag byte of a serialized jit snapshot (`'J'`).
const SNAPSHOT_TAG: u8 = b'J';
/// Encoding version; bump on any field/layout change.
const SNAPSHOT_VERSION: u8 = 1;

/// Complete architectural state of a [`JitEngine`]: net words (256
/// lanes), flat RAM planes, staged inputs, armed faults and the cycle
/// counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JitSnapshot {
    nets: usize,
    cells: usize,
    words: Vec<u64>,
    ram: Vec<u64>,
    staged: Vec<StagedInput>,
    stuck: Vec<(u32, bool)>,
    flips: Vec<(CellId, usize, u64)>,
    ram_upsets: Vec<(CellId, usize, usize, u64)>,
    cycle: u64,
}

impl JitSnapshot {
    /// The clock cycle at which the snapshot was taken.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

fn write_bus(w: &mut ByteWriter, bus: &Bus) {
    w.len(bus.width());
    for &net in bus.bits() {
        w.u32(net.index() as u32);
    }
}

fn read_bus(r: &mut ByteReader<'_>) -> Result<Bus> {
    let width = r.len(4)?;
    let mut bits = Vec::with_capacity(width);
    for _ in 0..width {
        bits.push(crate::net::NetId(r.u32()?));
    }
    Bus::new(bits).map_err(|e| Error::SnapshotDecode { detail: format!("bad bus: {e}") })
}

impl crate::engine::PortableSnapshot for JitSnapshot {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(SNAPSHOT_TAG);
        w.u8(SNAPSHOT_VERSION);
        w.usize(self.nets);
        w.usize(self.cells);
        w.len(self.words.len());
        for &word in &self.words {
            w.u64(word);
        }
        w.len(self.ram.len());
        for &word in &self.ram {
            w.u64(word);
        }
        w.len(self.staged.len());
        for staged in &self.staged {
            match staged {
                StagedInput::Broadcast(bus, value) => {
                    w.u8(0);
                    write_bus(&mut w, bus);
                    w.i64(*value);
                }
                StagedInput::Lane(bus, lane, value) => {
                    w.u8(1);
                    write_bus(&mut w, bus);
                    w.usize(*lane);
                    w.i64(*value);
                }
                StagedInput::Lanes(bus, values) => {
                    w.u8(2);
                    write_bus(&mut w, bus);
                    w.len(values.len());
                    for &v in values {
                        w.i64(v);
                    }
                }
            }
        }
        w.len(self.stuck.len());
        for &(net, value) in &self.stuck {
            w.u32(net);
            w.bool(value);
        }
        w.len(self.flips.len());
        for &(cell, bit, cycle) in &self.flips {
            w.u32(cell.index() as u32);
            w.usize(bit);
            w.u64(cycle);
        }
        w.len(self.ram_upsets.len());
        for &(cell, addr, bit, cycle) in &self.ram_upsets {
            w.u32(cell.index() as u32);
            w.usize(addr);
            w.usize(bit);
            w.u64(cycle);
        }
        w.u64(self.cycle);
        w.finish()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.u8()?;
        if tag != SNAPSHOT_TAG {
            return Err(Error::SnapshotDecode {
                detail: format!("tag {tag:#04x} is not a jit snapshot"),
            });
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::SnapshotDecode {
                detail: format!("unsupported snapshot version {version}"),
            });
        }
        let nets = r.usize()?;
        let cells = r.usize()?;
        let mut words = Vec::with_capacity(r.len(8)?);
        for _ in 0..words.capacity() {
            words.push(r.u64()?);
        }
        let mut ram = Vec::with_capacity(r.len(8)?);
        for _ in 0..ram.capacity() {
            ram.push(r.u64()?);
        }
        let mut staged = Vec::with_capacity(r.len(5)?);
        for _ in 0..staged.capacity() {
            let entry = match r.u8()? {
                0 => {
                    let bus = read_bus(&mut r)?;
                    StagedInput::Broadcast(bus, r.i64()?)
                }
                1 => {
                    let bus = read_bus(&mut r)?;
                    let lane = r.usize()?;
                    StagedInput::Lane(bus, lane, r.i64()?)
                }
                2 => {
                    let bus = read_bus(&mut r)?;
                    let mut values = Vec::with_capacity(r.len(8)?);
                    for _ in 0..values.capacity() {
                        values.push(r.i64()?);
                    }
                    StagedInput::Lanes(bus, values)
                }
                other => {
                    return Err(Error::SnapshotDecode {
                        detail: format!("bad staged-input tag {other}"),
                    })
                }
            };
            staged.push(entry);
        }
        let mut stuck = Vec::with_capacity(r.len(5)?);
        for _ in 0..stuck.capacity() {
            let net = r.u32()?;
            let value = r.bool()?;
            stuck.push((net, value));
        }
        let mut flips = Vec::with_capacity(r.len(20)?);
        for _ in 0..flips.capacity() {
            let cell = CellId(r.u32()?);
            let bit = r.usize()?;
            let due = r.u64()?;
            flips.push((cell, bit, due));
        }
        let mut ram_upsets = Vec::with_capacity(r.len(28)?);
        for _ in 0..ram_upsets.capacity() {
            let cell = CellId(r.u32()?);
            let addr = r.usize()?;
            let bit = r.usize()?;
            let due = r.u64()?;
            ram_upsets.push((cell, addr, bit, due));
        }
        let cycle = r.u64()?;
        r.finish()?;
        Ok(JitSnapshot { nets, cells, words, ram, staged, stuck, flips, ram_upsets, cycle })
    }
}

/// The native-codegen simulation backend.
///
/// Cycle semantics, fault application points and [`Engine`] behavior
/// mirror [`CompiledEngine`](crate::compile::CompiledEngine) — same
/// two-phase clocking, same clamp-mask stuck-at model, same
/// documented divergences from the event-driven simulator (no glitch
/// model, no activity statistics, stuck nets heal on the pass after
/// [`clear_faults`](Engine::clear_faults)) — but every pass runs
/// through a `rustc`-compiled kernel over [`LANES`] (256) lanes.
///
/// Word layout: slot `s`, lane `l` lives at
/// `words[s * 4 + l / 64]` bit `l % 64`. RAM planes are concatenated
/// into one flat buffer with the same 4-block layout.
#[derive(Debug, Clone)]
pub struct JitEngine {
    netlist: Netlist,
    program: Program,
    kernel: Kernel,
    stats: CodegenStats,
    words: Vec<u64>,
    ram: Vec<u64>,
    /// Per-RAM base offset into `ram`, in `u64`s.
    ram_offsets: Vec<usize>,
    scratch: Vec<u64>,
    staged: Vec<StagedInput>,
    and_mask: Vec<u64>,
    or_mask: Vec<u64>,
    has_stuck: bool,
    stuck: Vec<(u32, bool)>,
    flips: Vec<(CellId, usize, u64)>,
    ram_upsets: Vec<(CellId, usize, usize, u64)>,
    cycle: u64,
}

impl JitEngine {
    /// Generates, compiles (or reuses from cache), loads and
    /// power-cycles the kernel for a validated netlist: registers and
    /// RAM zeroed in every lane, combinational logic settled.
    ///
    /// # Errors
    ///
    /// [`Error::MalformedProgram`] from lowering, or
    /// [`Error::NativeCodegen`] when codegen, `rustc`, or the dynamic
    /// loader fails.
    pub fn new(netlist: Netlist) -> Result<Self> {
        let program = Program::compile(&netlist)?;
        let generated = generate(&netlist, &program);
        let fns = build_kernel(&generated.source, generated.abi)?;
        let slots = program.slots;
        let kernel = Kernel {
            fns,
            words_len: slots * BLOCKS,
            ram_len: generated.ram_len,
            scratch_len: program.reg_bits * BLOCKS,
        };
        let mut engine = JitEngine {
            words: vec![0; slots * BLOCKS],
            ram: vec![0; generated.ram_len],
            ram_offsets: generated.ram_offsets,
            scratch: vec![0; program.reg_bits * BLOCKS],
            staged: Vec::new(),
            and_mask: vec![ALL; slots * BLOCKS],
            or_mask: vec![0; slots * BLOCKS],
            has_stuck: false,
            stuck: Vec::new(),
            flips: Vec::new(),
            ram_upsets: Vec::new(),
            cycle: 0,
            stats: generated.stats,
            kernel,
            program,
            netlist,
        };
        for j in 0..BLOCKS {
            engine.words[engine.program.one as usize * BLOCKS + j] = ALL;
        }
        engine.eval();
        Ok(engine)
    }

    /// The compiled schedule the kernel was generated from.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// How much word-lowering narrowing fired during codegen.
    #[must_use]
    pub fn codegen_stats(&self) -> CodegenStats {
        self.stats
    }

    /// Stages a value on an input port for one lane only; other lanes
    /// keep their current bits.
    ///
    /// # Errors
    ///
    /// Same port/range validation as [`Engine::set_input`]; rejects
    /// `lane >=` [`LANES`].
    pub fn set_input_lane(&mut self, name: &str, lane: usize, value: i64) -> Result<()> {
        let bus = self.input_bus(name, value)?;
        check_lane(lane)?;
        self.staged.push(StagedInput::Lane(bus, lane, value));
        Ok(())
    }

    /// Signed value of a bus in one lane.
    fn read_bus_lane(&self, bus: &Bus, lane: usize) -> i64 {
        let (blk, bit) = (lane / 64, lane % 64);
        let width = bus.width();
        let mut v = 0u64;
        for (i, &n) in bus.bits().iter().enumerate() {
            v |= ((self.words[n.index() * BLOCKS + blk] >> bit) & 1) << i;
        }
        sign_extend(v, width)
    }

    /// Signed values of a bus across all lanes, gathered bit-major: one
    /// word read per (bit, block) instead of one per (bit, lane), and
    /// no per-lane allocation — this is the hot readback path of the
    /// throughput benchmark.
    fn read_bus_lanes(&self, bus: &Bus) -> Vec<i64> {
        let width = bus.width();
        let mut raw = vec![0u64; LANES];
        for (i, &n) in bus.bits().iter().enumerate() {
            for blk in 0..BLOCKS {
                let mut w = self.words[n.index() * BLOCKS + blk];
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    raw[blk * 64 + b] |= 1 << i;
                    w &= w - 1;
                }
            }
        }
        raw.into_iter().map(|v| sign_extend(v, width)).collect()
    }

    /// Validates an input-port write and returns the target bus.
    fn input_bus(&self, name: &str, value: i64) -> Result<Bus> {
        let port = self.netlist.port(name)?;
        if port.direction != PortDirection::Input {
            return Err(Error::UnknownPort { name: name.to_owned() });
        }
        port.bus.check_value(value)?;
        Ok(port.bus.clone())
    }

    /// Writes one word index through the stuck-at clamp masks when
    /// `CLAMPED`.
    #[inline]
    fn store_idx<const CLAMPED: bool>(&mut self, idx: usize, v: u64) {
        self.words[idx] = if CLAMPED { (v & self.and_mask[idx]) | self.or_mask[idx] } else { v };
    }

    /// Applies staged input writes into the word file.
    fn apply_staged<const CLAMPED: bool>(&mut self) {
        let staged = std::mem::take(&mut self.staged);
        for input in staged {
            match input {
                StagedInput::Broadcast(bus, value) => {
                    for (i, &b) in signed_to_bits(value, bus.width()).iter().enumerate() {
                        let w = if b { ALL } else { 0 };
                        let s = slot(bus.bit(i)) as usize;
                        for j in 0..BLOCKS {
                            self.store_idx::<CLAMPED>(s * BLOCKS + j, w);
                        }
                    }
                }
                StagedInput::Lane(bus, lane, value) => {
                    self.write_lanes::<CLAMPED>(&bus, lane, &[value]);
                }
                StagedInput::Lanes(bus, values) => {
                    self.write_lanes::<CLAMPED>(&bus, 0, &values);
                }
            }
        }
    }

    /// Writes `values[k]` into lane `first + k` of a bus. The
    /// full-width case (all [`LANES`] lanes at once, the benchmark hot
    /// path) assembles each block's word in a register and stores it
    /// once instead of read-modify-writing per lane.
    fn write_lanes<const CLAMPED: bool>(&mut self, bus: &Bus, first: usize, values: &[i64]) {
        if first == 0 && values.len() == LANES {
            for (i, &net) in bus.bits().iter().enumerate() {
                let s = slot(net) as usize;
                for blk in 0..BLOCKS {
                    let mut w = 0u64;
                    for b in 0..64 {
                        w |= (((values[blk * 64 + b] >> i) as u64) & 1) << b;
                    }
                    self.store_idx::<CLAMPED>(s * BLOCKS + blk, w);
                }
            }
            return;
        }
        for (i, &net) in bus.bits().iter().enumerate() {
            let s = slot(net) as usize;
            for (k, &v) in values.iter().enumerate() {
                let lane = first + k;
                let (blk, bit) = (lane / 64, lane % 64);
                let idx = s * BLOCKS + blk;
                let m = 1u64 << bit;
                let w = (self.words[idx] & !m) | ((((v >> i) as u64) & 1) << bit);
                self.store_idx::<CLAMPED>(idx, w);
            }
        }
    }

    /// One settle pass through the kernel.
    fn eval(&mut self) {
        if self.has_stuck {
            self.kernel.eval_clamped(&mut self.words, &self.ram, &self.and_mask, &self.or_mask);
        } else {
            self.kernel.eval(&mut self.words, &self.ram);
        }
    }

    /// One clock edge; identical ordering to the interpreter's
    /// (`CompiledEngine::step`): RAM upsets strike storage, registers
    /// capture settled D, transient flips hit the captured bits, RAM
    /// writes commit from settled values, then Q and staged inputs
    /// apply and the combinational pass settles.
    fn step(&mut self) {
        let now = self.cycle;

        // 0. Due RAM upsets strike the array (every lane).
        let mut due_ram = Vec::new();
        self.ram_upsets.retain(|&u| {
            if u.3 == now {
                due_ram.push(u);
                false
            } else {
                true
            }
        });
        for (cell, addr, bit, _) in due_ram {
            if let Some(idx) = self.program.rams.iter().position(|r| r.cell == cell) {
                let width = self.program.rams[idx].width;
                let base = self.ram_offsets[idx] + (addr * width + bit) * BLOCKS;
                for j in 0..BLOCKS {
                    self.ram[base + j] ^= ALL;
                }
            }
        }

        // 1. Capture register D from the settled state.
        self.kernel.capture(&self.words, &mut self.scratch);

        // 1a. Due transient flips strike the captured bits.
        let mut due_flips = Vec::new();
        self.flips.retain(|&f| {
            if f.2 == now {
                due_flips.push(f);
                false
            } else {
                true
            }
        });
        for (cell, bit, _) in due_flips {
            if let Some(reg) = self.program.regs.iter().find(|r| r.cell == cell) {
                let base = (reg.offset + bit) * BLOCKS;
                for j in 0..BLOCKS {
                    self.scratch[base + j] ^= ALL;
                }
            }
        }

        // 1b. Commit RAM writes from the settled (pre-edge) values.
        self.kernel.ram_commit(&self.words, &mut self.ram);

        // 2. Q and staged inputs apply together.
        if self.has_stuck {
            self.kernel.commit_clamped(
                &mut self.words,
                &self.scratch,
                &self.and_mask,
                &self.or_mask,
            );
            self.apply_staged::<true>();
        } else {
            self.kernel.commit(&mut self.words, &self.scratch);
            self.apply_staged::<false>();
        }

        // 3. Settle.
        self.eval();
        self.cycle += 1;
    }

    /// Rebuilds the clamp masks from the stuck list.
    fn rebuild_masks(&mut self) {
        self.and_mask.iter_mut().for_each(|m| *m = ALL);
        self.or_mask.iter_mut().for_each(|m| *m = 0);
        for &(net, value) in &self.stuck {
            for j in 0..BLOCKS {
                let idx = net as usize * BLOCKS + j;
                if value {
                    self.or_mask[idx] = ALL;
                } else {
                    self.and_mask[idx] = 0;
                }
            }
        }
        self.has_stuck = !self.stuck.is_empty();
    }
}

/// Validates a lane index.
/// Two's-complement interpretation of `width` LSB-first raw bits.
#[inline]
fn sign_extend(raw: u64, width: usize) -> i64 {
    let v = raw as i64;
    if width < 64 && raw >> (width - 1) & 1 == 1 {
        v - (1 << width)
    } else {
        v
    }
}

fn check_lane(lane: usize) -> Result<()> {
    if lane >= LANES {
        return Err(Error::FaultTarget {
            target: format!("lane {lane}"),
            detail: format!("engine has {LANES} lanes"),
        });
    }
    Ok(())
}

impl Engine for JitEngine {
    type Snapshot = JitSnapshot;

    fn from_netlist(netlist: Netlist) -> Result<Self> {
        JitEngine::new(netlist)
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            backend: "jit",
            lanes: LANES,
            activity_stats: false,
            glitch_model: false,
            divergence_detection: false,
            native_codegen: true,
            fault_stuck_at: true,
            fault_bit_flip: true,
            fault_ram_upset: true,
        }
    }

    fn set_input(&mut self, name: &str, value: i64) -> Result<()> {
        let bus = self.input_bus(name, value)?;
        self.staged.push(StagedInput::Broadcast(bus, value));
        Ok(())
    }

    fn try_tick(&mut self) -> Result<()> {
        self.step();
        Ok(())
    }

    fn try_settle(&mut self) -> Result<()> {
        if self.has_stuck {
            self.apply_staged::<true>();
        } else {
            self.apply_staged::<false>();
        }
        self.eval();
        Ok(())
    }

    fn peek(&self, name: &str) -> Result<i64> {
        Engine::peek_lane(self, name, 0)
    }

    fn set_input_lanes(&mut self, name: &str, values: &[i64]) -> Result<()> {
        if values.is_empty() || values.len() > LANES {
            return Err(Error::FaultTarget {
                target: name.to_owned(),
                detail: format!("expected 1..={LANES} lane values, got {}", values.len()),
            });
        }
        let port = self.netlist.port(name)?;
        if port.direction != PortDirection::Input {
            return Err(Error::UnknownPort { name: name.to_owned() });
        }
        for &v in values {
            port.bus.check_value(v)?;
        }
        let bus = port.bus.clone();
        self.staged.push(StagedInput::Lanes(bus, values.to_vec()));
        Ok(())
    }

    fn peek_lane(&self, name: &str, lane: usize) -> Result<i64> {
        check_lane(lane)?;
        let port = self.netlist.port(name)?;
        Ok(self.read_bus_lane(&port.bus, lane))
    }

    fn peek_lanes(&self, name: &str) -> Result<Vec<i64>> {
        let port = self.netlist.port(name)?;
        Ok(self.read_bus_lanes(&port.bus))
    }

    fn snapshot(&self) -> JitSnapshot {
        JitSnapshot {
            nets: self.netlist.net_count(),
            cells: self.netlist.cell_count(),
            words: self.words.clone(),
            ram: self.ram.clone(),
            staged: self.staged.clone(),
            stuck: self.stuck.clone(),
            flips: self.flips.clone(),
            ram_upsets: self.ram_upsets.clone(),
            cycle: self.cycle,
        }
    }

    fn restore(&mut self, snapshot: &JitSnapshot) -> Result<()> {
        if snapshot.nets != self.netlist.net_count()
            || snapshot.cells != self.netlist.cell_count()
            || snapshot.words.len() != self.words.len()
            || snapshot.ram.len() != self.ram.len()
        {
            return Err(Error::SnapshotMismatch {
                snapshot_nets: snapshot.nets,
                simulator_nets: self.netlist.net_count(),
                snapshot_cells: snapshot.cells,
                simulator_cells: self.netlist.cell_count(),
            });
        }
        self.words.clone_from(&snapshot.words);
        self.ram.clone_from(&snapshot.ram);
        self.staged.clone_from(&snapshot.staged);
        self.stuck.clone_from(&snapshot.stuck);
        self.flips.clone_from(&snapshot.flips);
        self.ram_upsets.clone_from(&snapshot.ram_upsets);
        self.cycle = snapshot.cycle;
        self.rebuild_masks();
        Ok(())
    }

    fn inject(&mut self, spec: &FaultSpec) -> Result<()> {
        match fault::resolve(&self.netlist, spec)? {
            ResolvedFault::Stuck { net, value } => {
                let s = slot(net);
                match self.stuck.iter_mut().find(|(n, _)| *n == s) {
                    Some(entry) => entry.1 = value,
                    None => self.stuck.push((s, value)),
                }
                self.rebuild_masks();
                // Force the net now and re-settle downstream logic.
                for j in 0..BLOCKS {
                    let idx = s as usize * BLOCKS + j;
                    self.words[idx] = (self.words[idx] & self.and_mask[idx]) | self.or_mask[idx];
                }
                self.eval();
            }
            ResolvedFault::Flip { register, bit, cycle } => {
                self.flips.push((register, bit, cycle));
            }
            ResolvedFault::Ram { cell, addr, bit, cycle } => {
                self.ram_upsets.push((cell, addr, bit, cycle));
            }
        }
        Ok(())
    }

    fn clear_faults(&mut self) {
        self.stuck.clear();
        self.flips.clear();
        self.ram_upsets.clear();
        self.rebuild_masks();
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn set_event_cap(&mut self, _cap: u64) {
        // Straight-line kernels cannot diverge; nothing to bound.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::engine::PortableSnapshot;
    use crate::sim::Simulator;

    /// Same fixture as the interpreter's test suite: every lowered
    /// cell class in one netlist.
    fn mixed_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let sum = b.carry_add("sum", &x, &y, 10).unwrap();
        let dif = b.carry_sub("dif", &x, &y, 10).unwrap();
        let rs = b.register("rs", &sum).unwrap();
        let rd = b.register("rd", &dif).unwrap();
        let rip = b.ripple_add("rip", &rs, &rd, 11).unwrap();
        let sel = b.eq_const("sel", &x, 3).unwrap();
        let rs_w = b.sign_extend(&rs, 11).unwrap();
        let m = b.mux("m", sel, &rip, &rs_w).unwrap();
        let par = b.xor_tree("par", m.bits()).unwrap();
        b.output("s", &m).unwrap();
        b.output("p", &Bus::new(vec![par]).unwrap()).unwrap();
        b.finish().unwrap()
    }

    fn ram_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let raddr = b.input("raddr", 3).unwrap();
        let waddr = b.input("waddr", 3).unwrap();
        let wdata = b.input("wdata", 6).unwrap();
        let wen = b.input("wen", 1).unwrap();
        let rdata = b.ram("m", 4, 6, &raddr, &waddr, &wdata, wen.bit(0)).unwrap();
        b.output("rdata", &rdata).unwrap();
        b.finish().unwrap()
    }

    /// Narrow operands into a wide adder: sign extension replicates
    /// the top nets, so the word-lowering proof must fire and elide
    /// the high output bits.
    fn elision_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let sum = b.carry_add("sum", &x, &y, 14).unwrap();
        let dif = b.carry_sub("dif", &sum, &y, 15).unwrap();
        let q = b.register("q", &dif).unwrap();
        b.output("s", &sum).unwrap();
        b.output("d", &q).unwrap();
        b.finish().unwrap()
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % (hi - lo + 1) as u64) as i64
        }
    }

    /// Drives the event-driven simulator and the jit engine in
    /// lockstep and compares the named output ports every cycle.
    fn lockstep(
        netlist: Netlist,
        inputs: &[(&str, i64, i64)],
        outputs: &[&str],
        ticks: usize,
        seed: u64,
        mut faults: impl FnMut(usize) -> Vec<FaultSpec>,
    ) {
        let mut sim = Simulator::new(netlist.clone()).unwrap();
        let mut eng = JitEngine::new(netlist).unwrap();
        let mut rng = Lcg(seed);
        for t in 0..ticks {
            for spec in faults(t) {
                sim.inject(&spec).unwrap();
                eng.inject(&spec).unwrap();
            }
            for &(name, lo, hi) in inputs {
                let v = rng.in_range(lo, hi);
                sim.set_input(name, v).unwrap();
                Engine::set_input(&mut eng, name, v).unwrap();
            }
            sim.try_tick().unwrap();
            eng.try_tick().unwrap();
            for &out in outputs {
                assert_eq!(
                    sim.peek(out).unwrap(),
                    Engine::peek(&eng, out).unwrap(),
                    "output {out} diverged at tick {t}"
                );
            }
        }
    }

    #[test]
    fn mixed_logic_matches_event_sim() {
        lockstep(
            mixed_netlist(),
            &[("x", -128, 127), ("y", -128, 127)],
            &["s", "p"],
            200,
            7,
            |_| Vec::new(),
        );
    }

    #[test]
    fn ram_matches_event_sim() {
        lockstep(
            ram_netlist(),
            &[("raddr", -4, 3), ("waddr", -4, 3), ("wdata", -32, 31), ("wen", -1, 0)],
            &["rdata"],
            300,
            11,
            |_| Vec::new(),
        );
    }

    #[test]
    fn faults_match_event_sim() {
        lockstep(
            mixed_netlist(),
            &[("x", -128, 127), ("y", -128, 127)],
            &["s", "p"],
            120,
            13,
            |t| match t {
                10 => vec![FaultSpec::StuckAt { net: "s".into(), bit: 2, value: true }],
                40 => vec![FaultSpec::BitFlip { register: "rs".into(), bit: 1, cycle: 45 }],
                _ => Vec::new(),
            },
        );
        lockstep(
            ram_netlist(),
            &[("raddr", -4, 3), ("waddr", -4, 3), ("wdata", -32, 31), ("wen", -1, 0)],
            &["rdata"],
            120,
            17,
            |t| match t {
                5 => vec![FaultSpec::RamUpset { ram: "m".into(), addr: 2, bit: 3, cycle: 20 }],
                _ => Vec::new(),
            },
        );
    }

    #[test]
    fn word_lowering_fires_and_stays_bit_exact_under_faults() {
        let eng = JitEngine::new(elision_netlist()).unwrap();
        let stats = eng.codegen_stats();
        // x, y are 8-bit: the 14-bit sum fits 9 bits, so its top 5
        // bits become sign copies and their carry chain dies. The
        // subtractor must NOT narrow: its operand's high bits are
        // *fresh nets* that merely equal the sign bit in fault-free
        // runs — a stuck-at on one of them breaks that equality, so
        // only same-net replication (true sign extension) is a sound
        // width proof.
        assert_eq!(stats.elided_bits, 5, "structural elision should fire for 'sum' only");
        assert!(stats.skipped_ops > 0, "dead carry temporaries were not dropped");
        drop(eng);
        // Bit-exactness under faults *on the elided cone*: a stuck-at
        // forced onto the sign bit the copies replicate, and one on an
        // elided high bit itself.
        lockstep(
            elision_netlist(),
            &[("x", -128, 127), ("y", -128, 127)],
            &["s", "d"],
            150,
            23,
            |t| match t {
                20 => vec![FaultSpec::StuckAt { net: "s".into(), bit: 8, value: true }],
                60 => vec![FaultSpec::StuckAt { net: "s".into(), bit: 12, value: false }],
                90 => vec![FaultSpec::BitFlip { register: "q".into(), bit: 9, cycle: 95 }],
                _ => Vec::new(),
            },
        );
    }

    #[test]
    fn lane_verbs_drive_all_256_lanes() {
        let mut eng = JitEngine::new(mixed_netlist()).unwrap();
        let xs: Vec<i64> = (0..LANES as i64).map(|l| (l % 255) - 127).collect();
        let ys: Vec<i64> = (0..LANES as i64).map(|l| ((l * 7) % 255) - 127).collect();
        Engine::set_input_lanes(&mut eng, "x", &xs).unwrap();
        Engine::set_input_lanes(&mut eng, "y", &ys).unwrap();
        eng.try_tick().unwrap();
        eng.try_tick().unwrap();
        let got = Engine::peek_lanes(&eng, "s").unwrap();
        assert_eq!(got.len(), LANES);
        // Check a sample of lanes against a scalar reference engine.
        for &lane in &[0usize, 1, 63, 64, 127, 128, 200, 255] {
            let mut reference = Simulator::new(mixed_netlist()).unwrap();
            reference.set_input("x", xs[lane]).unwrap();
            reference.set_input("y", ys[lane]).unwrap();
            reference.try_tick().unwrap();
            reference.try_tick().unwrap();
            assert_eq!(got[lane], reference.peek("s").unwrap(), "lane {lane}");
            assert_eq!(
                Engine::peek_lane(&eng, "s", lane).unwrap(),
                got[lane],
                "peek_lane vs peek_lanes at {lane}"
            );
        }
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let mut eng = JitEngine::new(mixed_netlist()).unwrap();
        Engine::set_input(&mut eng, "x", -5).unwrap();
        Engine::set_input(&mut eng, "y", 77).unwrap();
        eng.try_tick().unwrap();
        eng.inject(&FaultSpec::BitFlip { register: "rs".into(), bit: 0, cycle: 9 }).unwrap();
        let snap = eng.snapshot();
        let decoded = JitSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);

        // Diverge, restore, and check both engines evolve identically.
        let mut other = JitEngine::new(mixed_netlist()).unwrap();
        Engine::set_input(&mut other, "x", 100).unwrap();
        other.try_tick().unwrap();
        other.restore(&decoded).unwrap();
        for _ in 0..12 {
            eng.try_tick().unwrap();
            other.try_tick().unwrap();
            assert_eq!(Engine::peek(&eng, "s").unwrap(), Engine::peek(&other, "s").unwrap());
        }
        assert_eq!(eng.cycle(), other.cycle());
    }

    #[test]
    fn snapshot_rejects_other_netlists_and_bad_bytes() {
        let eng = JitEngine::new(mixed_netlist()).unwrap();
        let snap = eng.snapshot();
        let mut other = JitEngine::new(ram_netlist()).unwrap();
        assert!(matches!(other.restore(&snap), Err(Error::SnapshotMismatch { .. })));
        assert!(matches!(
            JitSnapshot::from_bytes(&[0xff, 0x01]),
            Err(Error::SnapshotDecode { .. })
        ));
        let mut truncated = snap.to_bytes();
        truncated.truncate(truncated.len() - 3);
        assert!(matches!(JitSnapshot::from_bytes(&truncated), Err(Error::SnapshotDecode { .. })));
    }

    #[test]
    fn second_engine_reuses_the_cached_kernel() {
        let a = JitEngine::new(mixed_netlist()).unwrap();
        let b = JitEngine::new(mixed_netlist()).unwrap();
        assert_eq!(a.codegen_stats(), b.codegen_stats());
        assert_eq!(Engine::caps(&a).lanes, LANES);
        assert!(Engine::caps(&b).native_codegen);
    }
}
