//! Nets and buses.
//!
//! A [`NetId`] identifies one single-bit wire. A [`Bus`] is an ordered,
//! LSB-first collection of nets interpreted as a signed two's-complement
//! word. Buses are cheap handles: wiring operations (sign extension,
//! shifts, slices) just rearrange net ids and cost no hardware, exactly
//! as they cost nothing in a synthesized design.

use crate::error::{Error, Result};

/// Identifier of one single-bit net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index (useful for diagnostics and VCD dumping).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The net with the given raw index. Analyses iterating over
    /// `0..Netlist::net_count()` use this to get back to a typed id;
    /// no range check is (or can be) performed here.
    #[must_use]
    pub fn from_index(idx: usize) -> NetId {
        NetId(idx as u32)
    }
}

/// An LSB-first bundle of nets carrying a signed two's-complement value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bus {
    bits: Vec<NetId>,
}

impl Bus {
    /// Maximum width the word-level evaluators support.
    pub const MAX_WIDTH: usize = 63;

    /// Creates a bus from LSB-first nets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadWidth`] for an empty bundle or one wider than
    /// [`Bus::MAX_WIDTH`].
    pub fn new(bits: Vec<NetId>) -> Result<Self> {
        if bits.is_empty() || bits.len() > Self::MAX_WIDTH {
            return Err(Error::BadWidth { width: bits.len() });
        }
        Ok(Bus { bits })
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The net carrying bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn bit(&self, i: usize) -> NetId {
        self.bits[i]
    }

    /// The sign (most significant) bit.
    #[must_use]
    pub fn msb(&self) -> NetId {
        *self.bits.last().expect("buses are non-empty")
    }

    /// All nets, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// A sub-bus of `self` covering bits `from..to` (LSB-relative).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    #[must_use]
    pub fn slice(&self, from: usize, to: usize) -> Bus {
        assert!(from < to && to <= self.bits.len(), "bad slice {from}..{to}");
        Bus { bits: self.bits[from..to].to_vec() }
    }

    /// Checks that `value` fits this bus as a signed word.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueOutOfRange`] if it does not.
    pub fn check_value(&self, value: i64) -> Result<()> {
        let w = self.width() as u32;
        let min = -(1i64 << (w - 1));
        let max = (1i64 << (w - 1)) - 1;
        if value < min || value > max {
            return Err(Error::ValueOutOfRange { value, width: self.width() });
        }
        Ok(())
    }
}

impl From<NetId> for Bus {
    fn from(net: NetId) -> Self {
        Bus { bits: vec![net] }
    }
}

/// Interprets raw bit values (LSB first) as a signed two's-complement
/// integer.
#[must_use]
pub fn bits_to_signed(bits: &[bool]) -> i64 {
    let mut v: i64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            v |= 1 << i;
        }
    }
    if *bits.last().expect("non-empty") {
        // Sign-extend.
        v -= 1 << bits.len();
    }
    v
}

/// Expands a signed integer to `width` LSB-first bits (two's complement,
/// truncating silently like hardware does).
#[must_use]
pub fn signed_to_bits(value: i64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_basic_ops() {
        let bus = Bus::new((0..8).map(NetId).collect()).unwrap();
        assert_eq!(bus.width(), 8);
        assert_eq!(bus.bit(0), NetId(0));
        assert_eq!(bus.msb(), NetId(7));
        let s = bus.slice(2, 5);
        assert_eq!(s.bits(), &[NetId(2), NetId(3), NetId(4)]);
    }

    #[test]
    fn empty_bus_rejected() {
        assert_eq!(Bus::new(vec![]).unwrap_err(), Error::BadWidth { width: 0 });
    }

    #[test]
    fn oversized_bus_rejected() {
        let bits = (0..64).map(NetId).collect();
        assert!(Bus::new(bits).is_err());
    }

    #[test]
    fn value_range_check() {
        let bus = Bus::new((0..4).map(NetId).collect()).unwrap();
        assert!(bus.check_value(7).is_ok());
        assert!(bus.check_value(-8).is_ok());
        assert!(bus.check_value(8).is_err());
        assert!(bus.check_value(-9).is_err());
    }

    #[test]
    fn signed_roundtrip() {
        for v in [-8i64, -1, 0, 1, 7] {
            let bits = signed_to_bits(v, 4);
            assert_eq!(bits_to_signed(&bits), v, "v={v}");
        }
    }

    #[test]
    fn truncation_wraps_like_hardware() {
        // 9 in 4 bits -> 1001 -> -7.
        let bits = signed_to_bits(9, 4);
        assert_eq!(bits_to_signed(&bits), -7);
    }

    #[test]
    fn single_net_to_bus() {
        let b: Bus = NetId(5).into();
        assert_eq!(b.width(), 1);
    }
}
