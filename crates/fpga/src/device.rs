//! Device model: an APEX-20KE-style FPGA logic-element architecture.
//!
//! The model captures the two properties of the Altera APEX 20KE family
//! that drive every trade-off in the paper:
//!
//! * each logic element (LE) is a 4-input LUT with an optional flip-flop
//!   and a **dedicated fast-carry chain** to its neighbour, so a
//!   behavioral n-bit adder costs n LEs and ripples through the fast
//!   chain, while a structural full-adder netlist costs 2n LEs and
//!   ripples through general routing;
//! * general routing is slow relative to the carry chain, so logic depth
//!   between registers — not LE count — sets the maximum frequency.
//!
//! ## Calibration policy
//!
//! The *structure* of the timing model (which path uses which delay) is
//! architectural; only the constants below are numeric. They were fitted
//! once against the five synthesis results the paper reports in Table 3
//! and then frozen — the same constants serve all five designs and the
//! filter-bank baseline, so every ratio and ranking is emergent.

/// Propagation-delay parameters, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// LUT evaluation delay.
    pub t_lut_ns: f64,
    /// One hop along the dedicated fast-carry chain.
    pub t_carry_ns: f64,
    /// General-purpose routing, per net hop.
    pub t_route_ns: f64,
    /// Local routing (full-adder carry to the neighbouring LE).
    pub t_route_local_ns: f64,
    /// Feeding a word onto a carry-chain column (LAB input muxes).
    pub t_lab_feed_ns: f64,
    /// Register clock-to-output delay.
    pub t_clk_to_q_ns: f64,
    /// Register setup time.
    pub t_setup_ns: f64,
    /// Embedded-system-block (RAM) access time, read address to data.
    pub t_esb_ns: f64,
}

/// Switching-energy parameters, one per capacitance class (see
/// [`dwt_rtl::sim::ActivityStats`] for the classification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Energy {
    /// Transition on a generally routed net, in picojoules.
    pub e_routed_pj: f64,
    /// Transition on a LAB-local net (folded-FF feed, FA-chain hop).
    pub e_local_pj: f64,
    /// Internal fast-carry-chain transition.
    pub e_carry_pj: f64,
    /// Flip-flop output transition.
    pub e_ff_toggle_pj: f64,
    /// Clock-tree energy per flip-flop bit per cycle, regardless of
    /// data activity.
    pub e_clock_pj: f64,
    /// Static power floor, in milliwatts.
    pub static_mw: f64,
}

/// A complete device description.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Family/device name used in reports.
    pub name: &'static str,
    /// Delay parameters.
    pub timing: Timing,
    /// Energy parameters.
    pub energy: Energy,
    /// Logic elements available (EP20K200E-class device).
    pub le_capacity: usize,
}

impl Device {
    /// The calibrated APEX 20KE model used by every experiment.
    ///
    /// # Examples
    ///
    /// ```
    /// use dwt_fpga::device::Device;
    ///
    /// let dev = Device::apex20ke();
    /// assert!(dev.timing.t_carry_ns < dev.timing.t_route_ns);
    /// ```
    #[must_use]
    pub fn apex20ke() -> Self {
        Device {
            name: "APEX20KE (EP20K200E-class model)",
            timing: Timing {
                t_lut_ns: 0.45,
                t_carry_ns: 0.24,
                t_route_ns: 0.95,
                t_route_local_ns: 0.08,
                t_lab_feed_ns: 0.60,
                t_clk_to_q_ns: 0.30,
                t_setup_ns: 0.40,
                t_esb_ns: 3.80,
            },
            energy: Energy {
                e_routed_pj: 22.0,
                e_local_pj: 19.0,
                e_carry_pj: 3.0,
                e_ff_toggle_pj: 2.0,
                e_clock_pj: 0.5,
                static_mw: 12.0,
            },
            le_capacity: 8320,
        }
    }
}

impl Device {
    /// A later-generation low-cost device model (Cyclone-class): the
    /// same logic-element architecture with roughly twice-as-fast LUTs,
    /// carry chains and routing, and lower switching energies. Used by
    /// the device-migration study to show how the paper's trade-off
    /// points shift on newer silicon while the orderings persist.
    #[must_use]
    pub fn cyclone_like() -> Self {
        Device {
            name: "Cyclone-class model",
            timing: Timing {
                t_lut_ns: 0.25,
                t_carry_ns: 0.08,
                t_route_ns: 0.50,
                t_route_local_ns: 0.05,
                t_lab_feed_ns: 0.30,
                t_clk_to_q_ns: 0.18,
                t_setup_ns: 0.22,
                t_esb_ns: 2.00,
            },
            energy: Energy {
                e_routed_pj: 7.0,
                e_local_pj: 5.5,
                e_carry_pj: 1.0,
                e_ff_toggle_pj: 0.8,
                e_clock_pj: 0.2,
                static_mw: 35.0,
            },
            le_capacity: 20_060,
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::apex20ke()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_paths_are_faster_than_general_routing() {
        // Both the fast-carry hop and the LAB-local full-adder hop must
        // beat general routing; the local hop comes out fastest in the
        // calibration because consecutive full adders pack into adjacent
        // LEs and ripple over cascade lines.
        let d = Device::apex20ke();
        assert!(d.timing.t_carry_ns < d.timing.t_route_ns);
        assert!(d.timing.t_route_local_ns < d.timing.t_route_ns);
    }

    #[test]
    fn all_delays_positive() {
        let t = Device::apex20ke().timing;
        for v in [
            t.t_lut_ns,
            t.t_carry_ns,
            t.t_route_ns,
            t.t_route_local_ns,
            t.t_lab_feed_ns,
            t.t_clk_to_q_ns,
            t.t_setup_ns,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn capacity_fits_all_paper_designs() {
        // The largest design in Table 3 is 1002 LEs.
        assert!(Device::apex20ke().le_capacity > 1002);
    }

    #[test]
    fn cyclone_class_is_uniformly_faster() {
        let a = Device::apex20ke().timing;
        let c = Device::cyclone_like().timing;
        assert!(c.t_lut_ns < a.t_lut_ns);
        assert!(c.t_carry_ns < a.t_carry_ns);
        assert!(c.t_route_ns < a.t_route_ns);
        assert!(c.t_esb_ns < a.t_esb_ns);
    }
}
