//! LAB-level floorplan estimation.
//!
//! APEX 20KE logic elements live in logic array blocks (LABs) of ten;
//! a carry chain must occupy physically contiguous LEs, so a behavioral
//! adder wider than what remains in the current LAB spills into the
//! next. This module packs a mapped netlist into LABs under those
//! rules, giving the block-level utilization a fitter would report and
//! letting the tests confirm every paper design fits its target device.

use dwt_rtl::cell::CellKind;
use dwt_rtl::netlist::Netlist;

use crate::map::MappedNetlist;

/// Logic elements per LAB in the APEX architecture.
pub const LES_PER_LAB: usize = 10;

/// The outcome of LAB packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    /// LABs used.
    pub labs: usize,
    /// Logic elements actually occupied.
    pub les_used: usize,
    /// LEs left stranded by carry-chain alignment (allocated but empty).
    pub fragmentation_les: usize,
    /// The longest single carry chain, in LEs.
    pub longest_chain: usize,
}

impl Floorplan {
    /// Fraction of allocated LE slots that hold logic.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.labs == 0 {
            1.0
        } else {
            self.les_used as f64 / (self.labs * LES_PER_LAB) as f64
        }
    }
}

/// Packs a mapped netlist into LABs.
///
/// Carry chains are placed greedily: a chain that does not fit in the
/// space remaining in the open LAB starts a fresh one (APEX chains can
/// continue across adjacent LABs, but the fitter prefers alignment; the
/// stranded LEs are what the fragmentation counter reports). All other
/// LEs fill the gaps afterwards.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_fpga::floorplan::pack;
/// use dwt_fpga::map::map_netlist;
/// use dwt_rtl::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 8)?;
/// let s = b.carry_add("s", &x, &x, 12)?;
/// b.output("o", &s)?;
/// let netlist = b.finish()?;
/// let plan = pack(&netlist, &map_netlist(&netlist));
/// assert_eq!(plan.labs, 2); // a 12-LE chain spans two LABs
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn pack(netlist: &Netlist, mapped: &MappedNetlist) -> Floorplan {
    // Gather carry-chain lengths and the pool of loose LEs.
    let mut chains: Vec<usize> = Vec::new();
    let mut loose = 0usize;
    for (i, cell) in netlist.cells().iter().enumerate() {
        match &cell.kind {
            CellKind::CarryAdd { out, .. } | CellKind::CarrySub { out, .. } => {
                chains.push(out.width());
            }
            _ => loose += mapped.cell_les[i],
        }
    }
    // Longest chains first: the classic bin-packing heuristic.
    chains.sort_unstable_by(|a, b| b.cmp(a));
    let longest_chain = chains.first().copied().unwrap_or(0);

    let mut labs = 0usize;
    let mut open_space = 0usize; // LEs free in the open LAB run
    let mut fragmentation = 0usize;
    for chain in &chains {
        let need = *chain;
        if need > open_space {
            // Start fresh LAB(s) for this chain; the remainder of the
            // old LAB is only usable by loose LEs.
            fragmentation += open_space;
            let new_labs = need.div_ceil(LES_PER_LAB);
            labs += new_labs;
            open_space = new_labs * LES_PER_LAB;
        }
        open_space -= need;
    }
    // Loose LEs fill the fragmentation gaps first, then the open space,
    // then fresh LABs.
    let mut remaining_loose = loose;
    let reclaimed = remaining_loose.min(fragmentation);
    remaining_loose -= reclaimed;
    fragmentation -= reclaimed;
    if remaining_loose > open_space {
        let extra = remaining_loose - open_space;
        labs += extra.div_ceil(LES_PER_LAB);
    }

    let les_used: usize = chains.iter().sum::<usize>() + loose;
    Floorplan { labs, les_used, fragmentation_les: fragmentation, longest_chain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::map_netlist;
    use dwt_rtl::builder::NetlistBuilder;

    fn adder_netlist(widths: &[usize]) -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        for (i, &w) in widths.iter().enumerate() {
            let s = b.carry_add(&format!("s{i}"), &x, &x, w).unwrap();
            b.output(&format!("o{i}"), &s).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn single_small_chain_fits_one_lab() {
        let n = adder_netlist(&[8]);
        let plan = pack(&n, &map_netlist(&n));
        assert_eq!(plan.labs, 1);
        assert_eq!(plan.longest_chain, 8);
    }

    #[test]
    fn chains_that_do_not_share_a_lab_fragment() {
        // Two 8-LE chains cannot share a 10-LE LAB.
        let n = adder_netlist(&[8, 8]);
        let plan = pack(&n, &map_netlist(&n));
        assert_eq!(plan.labs, 2);
        assert!(plan.utilization() < 1.0);
    }

    #[test]
    fn wide_chain_spans_labs() {
        let n = adder_netlist(&[25]);
        let plan = pack(&n, &map_netlist(&n));
        assert_eq!(plan.labs, 3);
        assert_eq!(plan.longest_chain, 25);
    }

    #[test]
    fn loose_logic_fills_gaps() {
        // A 9-wide chain leaves 1 LE; loose registers should reclaim
        // fragmented space before new LABs are opened.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s = b.carry_add("s", &x, &x, 9).unwrap();
        let r1 = b.register("r1", &x).unwrap(); // 8 standalone FF LEs
        b.output("o", &s).unwrap();
        b.output("q", &r1).unwrap();
        let n = b.finish().unwrap();
        let plan = pack(&n, &map_netlist(&n));
        assert_eq!(plan.labs, 2); // 9 + 8 = 17 LEs in 2 LABs
        assert!(plan.utilization() > 0.8);
    }

    #[test]
    fn empty_netlist() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        b.output("o", &x).unwrap();
        let n = b.finish().unwrap();
        let plan = pack(&n, &map_netlist(&n));
        assert_eq!(plan.labs, 0);
        assert_eq!(plan.les_used, 0);
        assert!((plan.utilization() - 1.0).abs() < 1e-12);
    }
}
