//! Power estimation from measured switching activity.
//!
//! `P(f) = (E_le · comb_toggles + E_ff · ff_toggles + E_clk · ff_bits)
//! per cycle · f + P_static` — a vector-driven model: the transition
//! counts come from actually simulating the netlist on image data with
//! the glitch-aware simulator, so the power differences between the five
//! designs *emerge* from their structure rather than being assumed.

use dwt_rtl::sim::ActivityStats;

use crate::device::Energy;

/// A power figure at one operating frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Operating frequency used, in MHz.
    pub f_mhz: f64,
    /// Data-dependent switching power, in mW.
    pub dynamic_mw: f64,
    /// Clock-tree power, in mW.
    pub clock_mw: f64,
    /// Static floor, in mW.
    pub static_mw: f64,
}

impl PowerReport {
    /// Total power in mW — the paper's "Power @15MHz (mW)" column when
    /// `f_mhz == 15`.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.clock_mw + self.static_mw
    }
}

/// Estimates power at `f_mhz` from measured activity.
///
/// `ff_bits` is the number of flip-flop bits in the mapped design (the
/// clock tree toggles them every cycle regardless of data).
///
/// # Examples
///
/// ```
/// use dwt_fpga::device::Device;
/// use dwt_fpga::power::estimate;
/// use dwt_rtl::sim::ActivityStats;
///
/// let stats = ActivityStats {
///     cell_toggles: vec![500, 500],
///     routed_toggles: 600,
///     local_toggles: 300,
///     carry_toggles: 100,
///     ff_toggles: 200,
///     cycles: 100,
/// };
/// let p = estimate(&stats, 100, &Device::apex20ke().energy, 15.0);
/// assert!(p.total_mw() > p.static_mw);
/// ```
#[must_use]
pub fn estimate(stats: &ActivityStats, ff_bits: usize, energy: &Energy, f_mhz: f64) -> PowerReport {
    let (routed, local, carry) = stats.class_toggles_per_cycle();
    let ff_tpc = stats.ff_toggles_per_cycle();
    // pJ per cycle × cycles/µs (= MHz) gives µW; /1000 gives mW.
    let dynamic_pj = routed * energy.e_routed_pj
        + local * energy.e_local_pj
        + carry * energy.e_carry_pj
        + ff_tpc * energy.e_ff_toggle_pj;
    let clock_pj = ff_bits as f64 * energy.e_clock_pj;
    PowerReport {
        f_mhz,
        dynamic_mw: dynamic_pj * f_mhz / 1000.0,
        clock_mw: clock_pj * f_mhz / 1000.0,
        static_mw: energy.static_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    fn stats(toggles: u64, cycles: u64) -> ActivityStats {
        ActivityStats {
            cell_toggles: vec![toggles],
            routed_toggles: toggles / 2,
            local_toggles: toggles / 4,
            carry_toggles: toggles / 4,
            ff_toggles: toggles / 2,
            cycles,
        }
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let e = Device::apex20ke().energy;
        let s = stats(10_000, 100);
        let p15 = estimate(&s, 120, &e, 15.0);
        let p30 = estimate(&s, 120, &e, 30.0);
        let d15 = p15.total_mw() - p15.static_mw;
        let d30 = p30.total_mw() - p30.static_mw;
        assert!((d30 / d15 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_activity_means_more_power() {
        let e = Device::apex20ke().energy;
        let low = estimate(&stats(1_000, 100), 120, &e, 15.0);
        let high = estimate(&stats(50_000, 100), 120, &e, 15.0);
        assert!(high.total_mw() > low.total_mw());
    }

    #[test]
    fn zero_cycles_gives_static_plus_nothing() {
        let e = Device::apex20ke().energy;
        let p = estimate(&ActivityStats::default(), 0, &e, 15.0);
        assert_eq!(p.dynamic_mw, 0.0);
        assert_eq!(p.clock_mw, 0.0);
        assert_eq!(p.total_mw(), e.static_mw);
    }

    #[test]
    fn clock_power_charged_per_ff_bit() {
        let e = Device::apex20ke().energy;
        let s = stats(0, 100);
        let small = estimate(&s, 10, &e, 15.0);
        let big = estimate(&s, 100, &e, 15.0);
        assert!((big.clock_mw / small.clock_mw - 10.0).abs() < 1e-9);
    }
}
