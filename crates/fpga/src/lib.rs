//! # dwt-fpga
//!
//! APEX-20KE-style FPGA synthesis model: technology mapping, static
//! timing analysis and vector-driven power estimation for netlists built
//! with [`dwt_rtl`].
//!
//! This crate plays the role Quartus II played for the paper's authors.
//! Given a netlist it produces the three quantities of Table 3:
//!
//! * **area** — [`map::map_netlist`] applies the paper's LE-counting
//!   rules (carry-chain adders 1 LE/bit, structural full adders 2 LEs,
//!   flip-flop folding);
//! * **maximum frequency** — [`timing::analyze`] runs a per-bit static
//!   timing analysis with the [`device::Device`] delay parameters;
//! * **power** — [`power::estimate`] converts the transition counts
//!   measured by the glitch-aware simulator into mW at a chosen
//!   frequency.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), dwt_rtl::Error> {
//! use dwt_fpga::device::Device;
//! use dwt_fpga::map::map_netlist;
//! use dwt_fpga::report::SynthesisReport;
//! use dwt_fpga::timing::analyze;
//! use dwt_rtl::builder::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new();
//! let x = b.input("x", 8)?;
//! let s = b.carry_add("s", &x, &x, 9)?;
//! let q = b.register("q", &s)?;
//! b.output("o", &q)?;
//! let netlist = b.finish()?;
//!
//! let device = Device::apex20ke();
//! let report = SynthesisReport::new(
//!     "toy",
//!     &map_netlist(&netlist),
//!     &analyze(&netlist, &device.timing),
//!     1,
//! );
//! assert_eq!(report.les, 9); // 9-bit carry chain, FFs folded
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod device;
pub mod floorplan;
pub mod map;
pub mod power;
pub mod report;
pub mod timing;
