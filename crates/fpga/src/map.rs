//! Technology mapping: netlist cells → logic elements.
//!
//! The LE-counting rules come straight from the paper's Section 4:
//!
//! * behavioral adders use the fast carry chain, "so an 8-bit adder is
//!   mapped onto just 8 Logic Elements" → one LE per result bit;
//! * structural adders "do not use the fast carry chain propagation, so
//!   an 8-bit adder requires 16 Logic Elements" → two LEs per full adder
//!   (one for the sum function, one for the carry function);
//! * each LE contains a flip-flop, so a register bit whose data input is
//!   the *sole* fanout of a logic cell folds into that cell's LE for
//!   free; any other register bit occupies an LE of its own.

use dwt_rtl::cell::CellKind;
use dwt_rtl::net::NetId;
use dwt_rtl::netlist::Netlist;

/// Where each logic element went, per cell-kind category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeBreakdown {
    /// LEs implementing plain LUT cells.
    pub lut_logic: usize,
    /// LEs on fast-carry chains (behavioral adders, one per bit).
    pub carry_chain: usize,
    /// LEs implementing structural full adders (two per adder).
    pub full_adder_logic: usize,
    /// LEs occupied only by a flip-flop (unfoldable register bits).
    pub standalone_ff: usize,
    /// Register bits folded into logic LEs (no area cost; informational).
    pub folded_ff_bits: usize,
    /// Memory bits mapped onto embedded system blocks (no LE cost).
    pub esb_bits: usize,
}

impl LeBreakdown {
    /// Total logic elements.
    #[must_use]
    pub fn total(&self) -> usize {
        self.lut_logic + self.carry_chain + self.full_adder_logic + self.standalone_ff
    }
}

/// The result of mapping a netlist onto the device's logic elements.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedNetlist {
    /// LE cost per cell, indexed by cell id.
    pub cell_les: Vec<usize>,
    /// Aggregate breakdown.
    pub breakdown: LeBreakdown,
    /// Total flip-flop bits (folded + standalone).
    pub ff_bits: usize,
}

impl MappedNetlist {
    /// Total logic-element count — the paper's "Area cost (LEs)" column.
    #[must_use]
    pub fn le_count(&self) -> usize {
        self.breakdown.total()
    }
}

/// Maps a netlist using the APEX LE rules.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_fpga::map::map_netlist;
/// use dwt_rtl::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 8)?;
/// let y = b.input("y", 8)?;
/// let behavioral = b.carry_add("behavioral", &x, &y, 8)?;
/// let structural = b.ripple_add("structural", &x, &y, 8)?;
/// b.output("a", &behavioral)?;
/// b.output("b", &structural)?;
///
/// let mapped = map_netlist(&b.finish()?);
/// // Section 4's rules: 8 LEs behavioral vs 16 LEs structural.
/// assert_eq!(mapped.breakdown.carry_chain, 8);
/// assert_eq!(mapped.breakdown.full_adder_logic, 16);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn map_netlist(netlist: &Netlist) -> MappedNetlist {
    let foldable = |net: NetId| -> bool {
        // A register bit folds into the LE driving it when that LE
        // belongs to a logic cell and the register is its only reader.
        match netlist.driver(net) {
            Some(d) => {
                let kind = &netlist.cell(d).kind;
                let is_logic = matches!(
                    kind,
                    CellKind::Lut { .. }
                        | CellKind::FullAdder { .. }
                        | CellKind::CarryAdd { .. }
                        | CellKind::CarrySub { .. }
                );
                is_logic && netlist.fanout(net).len() == 1
            }
            None => false, // input port or constant: no LE to fold into
        }
    };

    let mut breakdown = LeBreakdown::default();
    let mut cell_les = vec![0usize; netlist.cell_count()];
    let mut ff_bits = 0usize;

    for (i, cell) in netlist.cells().iter().enumerate() {
        let les = match &cell.kind {
            CellKind::Lut { .. } => {
                breakdown.lut_logic += 1;
                1
            }
            CellKind::FullAdder { .. } => {
                breakdown.full_adder_logic += 2;
                2
            }
            CellKind::CarryAdd { out, .. } | CellKind::CarrySub { out, .. } => {
                breakdown.carry_chain += out.width();
                out.width()
            }
            CellKind::Register { d, .. } => {
                ff_bits += d.width();
                let mut standalone = 0;
                for &bit in d.bits() {
                    if foldable(bit) {
                        breakdown.folded_ff_bits += 1;
                    } else {
                        standalone += 1;
                    }
                }
                breakdown.standalone_ff += standalone;
                standalone
            }
            CellKind::Constant { .. } => 0,
            CellKind::Ram { words, rdata, .. } => {
                // Memories map onto the APEX embedded system blocks,
                // not logic elements.
                breakdown.esb_bits += words * rdata.width();
                0
            }
        };
        cell_les[i] = les;
    }

    MappedNetlist { cell_les, breakdown, ff_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt_rtl::builder::NetlistBuilder;

    #[test]
    fn register_after_adder_folds() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s = b.carry_add("s", &x, &x, 9).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        let m = map_netlist(&b.finish().unwrap());
        assert_eq!(m.breakdown.carry_chain, 9);
        assert_eq!(m.breakdown.standalone_ff, 0);
        assert_eq!(m.breakdown.folded_ff_bits, 9);
        assert_eq!(m.le_count(), 9);
    }

    #[test]
    fn register_of_input_is_standalone() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("o", &q).unwrap();
        let m = map_netlist(&b.finish().unwrap());
        assert_eq!(m.breakdown.standalone_ff, 8);
        assert_eq!(m.le_count(), 8);
    }

    #[test]
    fn shared_adder_output_prevents_folding() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s = b.carry_add("s", &x, &x, 9).unwrap();
        let q = b.register("q", &s).unwrap();
        // Second reader of the adder output.
        let s2 = b.carry_add("s2", &s, &x, 10).unwrap();
        b.output("o", &q).unwrap();
        b.output("o2", &s2).unwrap();
        let m = map_netlist(&b.finish().unwrap());
        assert_eq!(m.breakdown.standalone_ff, 9);
        assert_eq!(m.breakdown.folded_ff_bits, 0);
    }

    #[test]
    fn register_chain_shift_register_costs_les() {
        // A shift register: r2's input is a register output, never
        // foldable.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let r1 = b.register("r1", &x).unwrap();
        let r2 = b.register("r2", &r1).unwrap();
        b.output("o", &r2).unwrap();
        let m = map_netlist(&b.finish().unwrap());
        assert_eq!(m.breakdown.standalone_ff, 8);
        assert_eq!(m.ff_bits, 8);
    }

    #[test]
    fn paper_adder_ratio_emerges() {
        // "It is expected the design 4 would have 2 times the area cost"
        // per adder: 8-bit behavioral = 8 LEs, structural = 16 LEs.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let y = b.input("y", 8).unwrap();
        let a = b.carry_add("a", &x, &y, 8).unwrap();
        let r = b.ripple_add("r", &x, &y, 8).unwrap();
        b.output("oa", &a).unwrap();
        b.output("or", &r).unwrap();
        let m = map_netlist(&b.finish().unwrap());
        assert_eq!(m.breakdown.full_adder_logic, 2 * m.breakdown.carry_chain);
    }

    #[test]
    fn constants_cost_nothing() {
        let mut b = NetlistBuilder::new();
        let c = b.constant(7, 4).unwrap();
        b.output("o", &c).unwrap();
        let m = map_netlist(&b.finish().unwrap());
        assert_eq!(m.le_count(), 0);
    }
}
