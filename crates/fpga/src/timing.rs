//! Static timing analysis over a netlist, using the device delay model.
//!
//! Arrival times are propagated per **bit**, so the analysis reproduces
//! the timing behaviour underlying the paper's Table 3:
//!
//! * A behavioral carry-chain adder starts rippling only once *all* of
//!   its input bits have been routed onto the LAB's carry column, and its
//!   result exits through LE outputs — so chained behavioral adders
//!   serialise (`Design 2` is slow), while a single adder between
//!   registers is very fast (`Design 3` reaches ~3× the frequency).
//! * A structural full-adder netlist ripples through general routing —
//!   slower per bit than the carry chain, but bit-level arrival
//!   staggering lets consecutive adders overlap, which is why the paper
//!   found Design 4 *faster* than Design 2 despite costing more area,
//!   and Design 5 slower than Design 3.

use std::collections::HashMap;

use dwt_rtl::cell::CellKind;
use dwt_rtl::net::NetId;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::device::Timing;

/// The outcome of a timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst register-to-register (or port-to-port) delay in ns,
    /// including clock-to-q and setup overheads.
    pub critical_path_ns: f64,
    /// `1000 / critical_path_ns`, the paper's "Maximum Operating
    /// frequency (MHz)".
    pub fmax_mhz: f64,
    /// Name of the cell or port where the critical path ends.
    pub endpoint: String,
    /// Purely combinational depth statistics: the maximum number of cell
    /// evaluations on any input-to-endpoint path.
    pub max_logic_depth: usize,
    /// The cells along the critical path, from the launching source to
    /// the endpoint.
    pub critical_cells: Vec<String>,
}

/// Runs the analysis with the given delay parameters.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dwt_rtl::Error> {
/// use dwt_fpga::device::Device;
/// use dwt_fpga::timing::analyze;
/// use dwt_rtl::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input("x", 8)?;
/// let s = b.carry_add("s", &x, &x, 9)?;
/// let q = b.register("q", &s)?;
/// b.output("o", &q)?;
///
/// let report = analyze(&b.finish()?, &Device::apex20ke().timing);
/// assert!(report.fmax_mhz > 50.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist, timing: &Timing) -> TimingReport {
    // Arrival time, logic depth, and worst-arrival predecessor per net.
    let mut arrival: HashMap<NetId, f64> = HashMap::new();
    let mut depth: HashMap<NetId, usize> = HashMap::new();
    let mut pred: HashMap<NetId, NetId> = HashMap::new();

    // Sources: input ports at t=0, register outputs at clk-to-q.
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            for &net in port.bus.bits() {
                arrival.insert(net, 0.0);
                depth.insert(net, 0);
            }
        }
    }
    for cell in netlist.cells() {
        if let CellKind::Register { q, .. } = &cell.kind {
            for &net in q.bits() {
                arrival.insert(net, timing.t_clk_to_q_ns);
                depth.insert(net, 0);
            }
        }
    }

    let arr = |m: &HashMap<NetId, f64>, n: NetId| *m.get(&n).unwrap_or(&0.0);
    let dep = |m: &HashMap<NetId, usize>, n: NetId| *m.get(&n).unwrap_or(&0);

    for &id in netlist.topo_order() {
        let cell = netlist.cell(id);
        match &cell.kind {
            CellKind::Constant { out, .. } => {
                for &net in out.bits() {
                    arrival.insert(net, 0.0);
                    depth.insert(net, 0);
                }
            }
            CellKind::Lut { inputs, output, .. } => {
                let worst = inputs
                    .iter()
                    .copied()
                    .max_by(|&a, &b| arr(&arrival, a).total_cmp(&arr(&arrival, b)))
                    .expect("luts have inputs");
                let t = arr(&arrival, worst) + timing.t_route_ns + timing.t_lut_ns;
                let d = inputs.iter().map(|&n| dep(&depth, n)).max().unwrap_or(0) + 1;
                arrival.insert(*output, t);
                depth.insert(*output, d);
                pred.insert(*output, worst);
            }
            CellKind::FullAdder { a, b, cin, sum, cout, .. } => {
                // Operand bits come over general routing; the carry input
                // comes from the neighbouring LE over local routing.
                let t_ab = arr(&arrival, *a).max(arr(&arrival, *b)) + timing.t_route_ns;
                let t_c = arr(&arrival, *cin) + timing.t_route_local_ns;
                let base = t_ab.max(t_c);
                let d = dep(&depth, *a).max(dep(&depth, *b)).max(dep(&depth, *cin)) + 1;
                let worst = if t_c > t_ab {
                    *cin
                } else if arr(&arrival, *a) >= arr(&arrival, *b) {
                    *a
                } else {
                    *b
                };
                arrival.insert(*sum, base + timing.t_lut_ns);
                arrival.insert(*cout, base + timing.t_lut_ns);
                depth.insert(*sum, d);
                depth.insert(*cout, d);
                pred.insert(*sum, worst);
                pred.insert(*cout, worst);
            }
            CellKind::CarryAdd { a, b, out } | CellKind::CarrySub { a, b, out } => {
                // The chain is a synchronous column: it starts once every
                // input bit has been routed onto the LAB, then ripples at
                // carry speed; each result exits through its LE output.
                let mut t0: f64 = 0.0;
                let mut d0: usize = 0;
                let mut worst = a.bit(0);
                for &n in a.bits().iter().chain(b.bits()) {
                    let t = arr(&arrival, n) + timing.t_route_ns;
                    if t > t0 {
                        t0 = t;
                        worst = n;
                    }
                    d0 = d0.max(dep(&depth, n));
                }
                t0 += timing.t_lab_feed_ns;
                for (i, &net) in out.bits().iter().enumerate() {
                    arrival.insert(net, t0 + timing.t_lut_ns + i as f64 * timing.t_carry_ns);
                    depth.insert(net, d0 + 1);
                    pred.insert(net, worst);
                }
            }
            CellKind::Ram { raddr, rdata, .. } => {
                let mut t0: f64 = 0.0;
                let mut d0: usize = 0;
                let mut worst = raddr.bit(0);
                for &n in raddr.bits() {
                    let t = arr(&arrival, n) + timing.t_route_ns;
                    if t > t0 {
                        t0 = t;
                        worst = n;
                    }
                    d0 = d0.max(dep(&depth, n));
                }
                for &net in rdata.bits() {
                    arrival.insert(net, t0 + timing.t_esb_ns);
                    depth.insert(net, d0 + 1);
                    pred.insert(net, worst);
                }
            }
            CellKind::Register { .. } => unreachable!("registers are not in topo order"),
        }
    }

    // End points.
    let mut worst = 0.0f64;
    let mut endpoint = String::from("(none)");
    let mut worst_net: Option<NetId> = None;
    let mut max_depth = 0usize;
    for cell in netlist.cells() {
        if let CellKind::Register { d, .. } = &cell.kind {
            for &net in d.bits() {
                let t = arr(&arrival, net) + timing.t_route_ns + timing.t_setup_ns;
                if t > worst {
                    worst = t;
                    endpoint = cell.name.clone();
                    worst_net = Some(net);
                }
                max_depth = max_depth.max(dep(&depth, net));
            }
        }
    }
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            for &net in port.bus.bits() {
                let t = arr(&arrival, net) + timing.t_route_ns + timing.t_setup_ns;
                if t > worst {
                    worst = t;
                    endpoint = format!("output port '{}'", port.name);
                    worst_net = Some(net);
                }
                max_depth = max_depth.max(dep(&depth, net));
            }
        }
    }

    // Walk the predecessor chain to list the cells on the critical path.
    let mut critical_cells = Vec::new();
    let mut cursor = worst_net;
    while let Some(net) = cursor {
        match netlist.driver(net) {
            Some(cell_id) => {
                let cell = netlist.cell(cell_id);
                critical_cells.push(cell.name.clone());
                if cell.kind.is_combinational() {
                    cursor = pred.get(&net).copied();
                } else {
                    cursor = None; // launched from a register
                }
            }
            None => {
                critical_cells.push("(input port)".to_owned());
                cursor = None;
            }
        }
    }
    critical_cells.reverse();

    // A netlist with no combinational path still cannot clock faster
    // than its register overheads.
    let floor = timing.t_clk_to_q_ns + timing.t_setup_ns;
    let critical = worst.max(floor);

    TimingReport {
        critical_path_ns: critical,
        fmax_mhz: 1000.0 / critical,
        endpoint,
        max_logic_depth: max_depth,
        critical_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use dwt_rtl::builder::NetlistBuilder;

    fn timing() -> Timing {
        Device::apex20ke().timing
    }

    #[test]
    fn single_carry_adder_is_fast() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 12).unwrap();
        let s = b.carry_add("s", &x, &x, 13).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        let r = analyze(&b.finish().unwrap(), &timing());
        assert!(r.fmax_mhz > 100.0, "fmax {}", r.fmax_mhz);
        assert_eq!(r.max_logic_depth, 1);
    }

    #[test]
    fn chained_carry_adders_serialise() {
        fn fmax(chain: usize) -> f64 {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 12).unwrap();
            let mut acc = x.clone();
            for i in 0..chain {
                acc = b.carry_add(&format!("s{i}"), &acc, &x, 13).unwrap();
            }
            let q = b.register("q", &acc).unwrap();
            b.output("o", &q).unwrap();
            analyze(&b.finish().unwrap(), &timing()).fmax_mhz
        }
        let f1 = fmax(1);
        let f4 = fmax(4);
        assert!(f4 < f1 / 2.5, "chain of 4 ({f4}) vs single ({f1})");
    }

    #[test]
    fn structural_adders_overlap_when_chained() {
        // One structural ripple adder is slower than one carry-chain
        // adder, but a chain of four structural adders loses less than 4x
        // because bit-level arrivals overlap.
        fn fmax(structural: bool, chain: usize) -> f64 {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 12).unwrap();
            let mut acc = x.clone();
            for i in 0..chain {
                acc = if structural {
                    b.ripple_add(&format!("s{i}"), &acc, &x, 13).unwrap()
                } else {
                    b.carry_add(&format!("s{i}"), &acc, &x, 13).unwrap()
                };
            }
            let q = b.register("q", &acc).unwrap();
            b.output("o", &q).unwrap();
            analyze(&b.finish().unwrap(), &timing()).fmax_mhz
        }
        // Single stage: behavioral wins (fast carry chain).
        assert!(fmax(false, 1) > fmax(true, 1));
        // Deep chain: structural wins (ripple overlap), the Design 4 vs
        // Design 2 surprise of Section 4.
        assert!(fmax(true, 4) > fmax(false, 4));
    }

    #[test]
    fn pipelining_raises_fmax() {
        fn build(pipelined: bool) -> f64 {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 10).unwrap();
            let s1 = b.carry_add("s1", &x, &x, 11).unwrap();
            let mid = if pipelined { b.register("p", &s1).unwrap() } else { s1 };
            let s2 = b.carry_add("s2", &mid, &x, 12).unwrap();
            let q = b.register("q", &s2).unwrap();
            b.output("o", &q).unwrap();
            analyze(&b.finish().unwrap(), &timing()).fmax_mhz
        }
        assert!(build(true) > 1.5 * build(false));
    }

    #[test]
    fn register_only_netlist_hits_overhead_floor() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("o", &q).unwrap();
        let r = analyze(&b.finish().unwrap(), &timing());
        assert!(r.fmax_mhz < 1000.0);
        assert!(r.critical_path_ns > 0.0);
    }

    #[test]
    fn endpoint_names_the_critical_register() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let fastpath = b.register("fast", &x).unwrap();
        let s1 = b.carry_add("s1", &x, &x, 12).unwrap();
        let s2 = b.carry_add("s2", &s1, &s1, 14).unwrap();
        let slow = b.register("slow", &s2).unwrap();
        b.output("a", &fastpath).unwrap();
        b.output("b", &slow).unwrap();
        let r = analyze(&b.finish().unwrap(), &timing());
        assert_eq!(r.endpoint, "slow");
        assert_eq!(r.max_logic_depth, 2);
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use crate::device::Device;
    use dwt_rtl::builder::NetlistBuilder;

    #[test]
    fn critical_path_is_traced_through_the_chain() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s1 = b.carry_add("s1", &x, &x, 10).unwrap();
        let s2 = b.carry_add("s2", &s1, &x, 11).unwrap();
        let s3 = b.carry_add("s3", &s2, &s1, 12).unwrap();
        let q = b.register("q", &s3).unwrap();
        b.output("o", &q).unwrap();
        let r = analyze(&b.finish().unwrap(), &Device::apex20ke().timing);
        assert_eq!(r.endpoint, "q");
        // The trace must include the full adder chain, in order.
        let names = r.critical_cells;
        let pos = |n: &str| names.iter().position(|x| x == n);
        assert!(pos("s1").unwrap() < pos("s2").unwrap());
        assert!(pos("s2").unwrap() < pos("s3").unwrap());
        assert_eq!(names.last().map(String::as_str), Some("s3"));
    }

    #[test]
    fn path_launches_from_register_when_present() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let r0 = b.register("launch", &x).unwrap();
        let s = b.carry_add("s", &r0, &r0, 12).unwrap();
        let q = b.register("capture", &s).unwrap();
        b.output("o", &q).unwrap();
        let r = analyze(&b.finish().unwrap(), &Device::apex20ke().timing);
        assert_eq!(r.critical_cells.first().map(String::as_str), Some("launch"));
        assert_eq!(r.endpoint, "capture");
    }

    #[test]
    fn design_critical_paths_name_their_stage() {
        // The D2 critical path runs through the beta stage (the widest
        // multiplier tree), matching the printed Table 3 analysis.
        let built = dwt_arch_stub::d2();
        let r = analyze(&built, &Device::apex20ke().timing);
        assert!(r.critical_cells.iter().any(|n| n.contains("beta")), "{:?}", r.critical_cells);
    }

    /// Builds Design 2's netlist without a circular dev-dependency on
    /// dwt-arch: a minimal copy of the beta-stage shape is enough.
    mod dwt_arch_stub {
        use dwt_rtl::builder::NetlistBuilder;
        use dwt_rtl::netlist::Netlist;

        pub fn d2() -> Netlist {
            let mut b = NetlistBuilder::new();
            let x = b.input("x", 9).unwrap();
            // A beta-like shift-add tree: several shifted copies summed.
            let t1 = b.shift_left(&x, 1).unwrap();
            let t4 = b.shift_left(&x, 4).unwrap();
            let t6 = b.shift_left(&x, 6).unwrap();
            let a1 = b.carry_add("beta_a1", &t1, &t4, 16).unwrap();
            let a2 = b.carry_add("beta_a2", &a1, &t6, 17).unwrap();
            let alpha = b.carry_add("alpha_a", &x, &x, 10).unwrap();
            let a3 = b.carry_add("beta_a3", &a2, &alpha, 18).unwrap();
            let q = b.register("out", &a3).unwrap();
            b.output("o", &q).unwrap();
            b.finish().unwrap()
        }
    }
}
