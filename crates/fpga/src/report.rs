//! Synthesis reports combining mapping, timing and power results — one
//! row of the paper's Table 3.

use crate::map::MappedNetlist;
use crate::power::PowerReport;
use crate::timing::TimingReport;

/// One design's synthesis summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Design name.
    pub name: String,
    /// Area cost in logic elements.
    pub les: usize,
    /// LEs on carry chains.
    pub les_carry_chain: usize,
    /// LEs implementing structural full-adder logic.
    pub les_full_adder: usize,
    /// LEs holding only a flip-flop.
    pub les_standalone_ff: usize,
    /// LEs implementing plain LUTs.
    pub les_lut: usize,
    /// Total flip-flop bits.
    pub ff_bits: usize,
    /// Maximum operating frequency in MHz.
    pub fmax_mhz: f64,
    /// Critical-path length in ns.
    pub critical_path_ns: f64,
    /// Where the critical path ends.
    pub critical_endpoint: String,
    /// Pipeline depth in stages (architectural property).
    pub pipeline_stages: usize,
    /// Power at the 15 MHz reference, in mW (None until simulated).
    pub power_mw_at_15mhz: Option<f64>,
}

impl SynthesisReport {
    /// Assembles a report from the mapping and timing results.
    #[must_use]
    pub fn new(
        name: &str,
        mapped: &MappedNetlist,
        timing: &TimingReport,
        pipeline_stages: usize,
    ) -> Self {
        SynthesisReport {
            name: name.to_owned(),
            les: mapped.le_count(),
            les_carry_chain: mapped.breakdown.carry_chain,
            les_full_adder: mapped.breakdown.full_adder_logic,
            les_standalone_ff: mapped.breakdown.standalone_ff,
            les_lut: mapped.breakdown.lut_logic,
            ff_bits: mapped.ff_bits,
            fmax_mhz: timing.fmax_mhz,
            critical_path_ns: timing.critical_path_ns,
            critical_endpoint: timing.endpoint.clone(),
            pipeline_stages,
            power_mw_at_15mhz: None,
        }
    }

    /// Attaches a measured power figure (15 MHz reference).
    pub fn set_power(&mut self, power: &PowerReport) {
        self.power_mw_at_15mhz = Some(power.total_mw());
    }
}

impl std::fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} {:>6} LEs  {:>7.1} MHz  {:>2} stages",
            self.name, self.les, self.fmax_mhz, self.pipeline_stages
        )?;
        if let Some(p) = self.power_mw_at_15mhz {
            write!(f, "  {p:>7.1} mW@15MHz")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::map::map_netlist;
    use crate::timing::analyze;
    use dwt_rtl::builder::NetlistBuilder;

    fn sample() -> SynthesisReport {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let s = b.carry_add("s", &x, &x, 9).unwrap();
        let q = b.register("q", &s).unwrap();
        b.output("o", &q).unwrap();
        let n = b.finish().unwrap();
        let mapped = map_netlist(&n);
        let timing = analyze(&n, &Device::apex20ke().timing);
        SynthesisReport::new("sample", &mapped, &timing, 1)
    }

    #[test]
    fn report_fields_are_consistent() {
        let r = sample();
        assert_eq!(r.les, r.les_carry_chain + r.les_full_adder + r.les_standalone_ff + r.les_lut);
        assert!(r.fmax_mhz > 0.0);
        assert!((r.fmax_mhz - 1000.0 / r.critical_path_ns).abs() < 1e-9);
    }

    #[test]
    fn display_renders_power_when_set() {
        let mut r = sample();
        assert!(!r.to_string().contains("mW"));
        r.set_power(&crate::power::PowerReport {
            f_mhz: 15.0,
            dynamic_mw: 100.0,
            clock_mw: 10.0,
            static_mw: 12.0,
        });
        assert!(r.to_string().contains("122.0 mW@15MHz"));
    }

    #[test]
    fn clone_and_eq() {
        let r = sample();
        assert_eq!(r.clone(), r);
    }
}
