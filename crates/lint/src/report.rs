//! The lint report: the ordered findings of one run, with text and
//! JSON renderings and the DOT-overlay bridge.

use std::fmt;

use dwt_rtl::dot::DotHighlight;

use crate::diag::{json_string, Diagnostic, Severity};

/// All findings from linting one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Name of the linted netlist (design name, or caller-chosen).
    pub target: String,
    /// Findings, in pass order (L001 first).
    pub findings: Vec<Diagnostic>,
    /// Pipeline depth inferred by L004, when the netlist is balanced
    /// input-to-output.
    pub inferred_depth: Option<usize>,
}

impl LintReport {
    /// Whether no rule fired at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The worst severity present, if any finding exists.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|d| d.severity).max()
    }

    /// Whether any finding is at or above the given severity — the
    /// `--deny` gate.
    #[must_use]
    pub fn exceeds(&self, deny: Severity) -> bool {
        self.findings.iter().any(|d| d.severity >= deny)
    }

    /// Findings of one rule.
    #[must_use]
    pub fn by_rule(&self, rule: crate::diag::RuleId) -> Vec<&Diagnostic> {
        self.findings.iter().filter(|d| d.rule == rule).collect()
    }

    /// DOT-overlay highlights for [`dwt_rtl::dot::render_with_diagnostics`]:
    /// one red node per locus node, annotated with the rule code.
    #[must_use]
    pub fn highlights(&self) -> Vec<DotHighlight> {
        let mut out = Vec::new();
        for d in &self.findings {
            for node in d.locus.nodes() {
                out.push(DotHighlight { node, note: format!("{}", d.rule) });
            }
        }
        out
    }

    /// Renders the report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(Diagnostic::to_json).collect();
        let depth = match self.inferred_depth {
            Some(d) => d.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\"target\":{},\"clean\":{},\"inferred_depth\":{},\"findings\":[{}]}}",
            json_string(&self.target),
            self.is_clean(),
            depth,
            findings.join(",")
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let depth = match self.inferred_depth {
            Some(d) => format!("{d}"),
            None => "?".to_owned(),
        };
        writeln!(f, "{}: {} finding(s), inferred depth {depth}", self.target, self.findings.len())?;
        for d in &self.findings {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Locus, RuleId};

    fn finding(severity: Severity) -> Diagnostic {
        Diagnostic {
            rule: RuleId::L003,
            severity,
            locus: Locus::Cell("gamma_pair".to_owned()),
            message: "truncating add".to_owned(),
            fix_hint: None,
        }
    }

    #[test]
    fn deny_gate_respects_ordering() {
        let r = LintReport {
            target: "d1".to_owned(),
            findings: vec![finding(Severity::Warning)],
            inferred_depth: Some(8),
        };
        assert!(!r.is_clean());
        assert!(r.exceeds(Severity::Info));
        assert!(r.exceeds(Severity::Warning));
        assert!(!r.exceeds(Severity::Error));
        assert_eq!(r.max_severity(), Some(Severity::Warning));
    }

    #[test]
    fn clean_report_json() {
        let r = LintReport { target: "d1".to_owned(), findings: vec![], inferred_depth: Some(8) };
        assert_eq!(
            r.to_json(),
            "{\"target\":\"d1\",\"clean\":true,\"inferred_depth\":8,\"findings\":[]}"
        );
    }

    #[test]
    fn highlights_name_locus_nodes() {
        let r = LintReport {
            target: "d1".to_owned(),
            findings: vec![finding(Severity::Error)],
            inferred_depth: None,
        };
        let h = r.highlights();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].node, "gamma_pair");
        assert_eq!(h[0].note, "L003");
    }
}
