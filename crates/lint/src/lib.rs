//! # dwt-lint
//!
//! Static analysis over [`dwt_rtl`] netlists: the structural invariants
//! behind the paper's five designs — pipeline cut placement (Table 3),
//! fixed-point register widths (Table 1), plain graph sanity — checked
//! without a single simulation cycle, the way a real EDA flow
//! front-loads lint/STA before any testbench runs.
//!
//! Five passes ship:
//!
//! | rule | checks |
//! |------|--------|
//! | L001 | combinational cycles, reported as a full path |
//! | L002 | undriven / multiply-driven nets, unread input bits, dead cells |
//! | L003 | width safety: truncating adds/slices via interval inference |
//! | L004 | pipeline balance and the inferred depth vs. Table 3 |
//! | L005 | register controllability / observability |
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), dwt_rtl::Error> {
//! use dwt_lint::{lint_netlist, LintConfig};
//! use dwt_rtl::builder::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new();
//! let x = b.input("x", 8)?;
//! let s = b.carry_add("s", &x, &x, 9)?;
//! let q = b.register("q", &s)?;
//! b.output("y", &q)?;
//!
//! let report = lint_netlist("demo", &b.finish()?, &LintConfig::default());
//! assert!(report.is_clean());
//! assert_eq!(report.inferred_depth, Some(1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod balance;
pub mod config;
pub mod connectivity;
pub mod cycles;
pub mod diag;
pub mod mutate;
pub mod report;
pub mod state;
pub mod width;

pub use config::{LintConfig, RangeAnchor};
pub use diag::{Diagnostic, Locus, RuleId, Severity};
pub use mutate::Mutation;
pub use report::LintReport;

use dwt_rtl::netlist::Netlist;

/// Runs all five passes over a netlist.
#[must_use]
pub fn lint_netlist(target: &str, netlist: &Netlist, config: &LintConfig) -> LintReport {
    let mut findings = Vec::new();
    findings.extend(cycles::run(netlist));
    findings.extend(connectivity::run(netlist));
    findings.extend(width::run(netlist, config));
    let (balance_findings, inferred_depth) = balance::run(netlist, config);
    findings.extend(balance_findings);
    findings.extend(state::run(netlist));
    findings.sort_by_key(|d| d.rule);
    LintReport { target: target.to_owned(), findings, inferred_depth }
}

/// The pipeline depth L004 infers, when the netlist is balanced from
/// its inputs to its (non-exempt) outputs — `None` otherwise.
#[must_use]
pub fn inferred_pipeline_depth(netlist: &Netlist, config: &LintConfig) -> Option<usize> {
    balance::run(netlist, config).1
}
