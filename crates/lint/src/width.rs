//! L003 — width safety via interval inference.
//!
//! Every word-level operand bus is decomposed back into the value it
//! carries (runs of a source bus, sign replication, zero padding from
//! shifts, and the low-bits + shifted-adder composition `Ctx::add_shifted`
//! emits), and value intervals are propagated cell by cell in
//! topological order. Two defects are reported:
//!
//! * a **truncating slice**: an operand keeps fewer bits of a source
//!   than its proven value range needs, and
//! * a **truncating add**: a behavioral adder whose output bus cannot
//!   hold the proven operand-interval sum.
//!
//! The paper's Table 1 widths are *tighter* than any interval
//! propagation from the γ stage on (the gain-based analysis of Section
//! 3.1 accounts for cancelling filter taps), so the pass consults
//! configured [`crate::config::RangeAnchor`]s before flagging: a
//! truncation to a width the anchored range fits is exactly the
//! paper's Q-format narrowing, not a bug. Findings are only emitted
//! from *exact* (tight) intervals — a loose bound overflowing proves
//! nothing — so bit-level (structural, TMR-voted, parity-extended)
//! regions make the pass conservative rather than noisy.

use dwt_rtl::cell::CellKind;
use dwt_rtl::net::Bus;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Locus, RuleId, Severity};

/// A value interval; `exact` marks it tight (attainable end to end),
/// as opposed to merely sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    min: i128,
    max: i128,
    exact: bool,
}

impl Interval {
    fn full(width: usize) -> Interval {
        Interval { min: -(1i128 << (width - 1)), max: (1i128 << (width - 1)) - 1, exact: false }
    }

    fn fits(self, width: usize) -> bool {
        self.min >= -(1i128 << (width - 1)) && self.max < (1i128 << (width - 1))
    }

    fn shr(self, k: usize) -> Interval {
        Interval { min: self.min >> k, max: self.max >> k, exact: self.exact }
    }

    fn shl(self, k: usize) -> Interval {
        Interval { min: self.min << k, max: self.max << k, exact: self.exact }
    }
}

/// Where one net's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Not driven by anything we track (or not driven at all).
    Unknown,
    /// A constant bit.
    Const(bool),
    /// Bit `1` of the output bus of cell `0`.
    CellBit(usize, usize),
    /// Bit `1` of input port `0` (index into the sorted port list).
    PortBit(usize, usize),
}

struct WidthPass<'a> {
    netlist: &'a Netlist,
    config: &'a LintConfig,
    origin: Vec<Origin>,
    /// Output-value interval per cell (None: not a word-valued cell).
    cell_val: Vec<Option<Interval>>,
    /// Input ports in sorted order, with their intervals.
    in_ports: Vec<(String, Bus, Interval)>,
    findings: Vec<Diagnostic>,
}

/// Runs the pass.
#[must_use]
pub fn run(netlist: &Netlist, config: &LintConfig) -> Vec<Diagnostic> {
    let Some(order) = netlist.sequential_topo() else {
        // L001/L004 already report cycles; intervals are meaningless.
        return Vec::new();
    };

    let mut in_ports: Vec<(String, Bus, Interval)> = Vec::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            let iv = match config.input_ranges.get(&port.name) {
                Some(&(min, max)) => Interval { min: min.into(), max: max.into(), exact: true },
                None => Interval { exact: true, ..Interval::full(port.bus.width()) },
            };
            in_ports.push((port.name.clone(), port.bus.clone(), iv));
        }
    }

    let mut origin = vec![Origin::Unknown; netlist.net_count()];
    for (p, (_, bus, _)) in in_ports.iter().enumerate() {
        for (i, net) in bus.bits().iter().enumerate() {
            origin[net.index()] = Origin::PortBit(p, i);
        }
    }
    for (c, cell) in netlist.cells().iter().enumerate() {
        match &cell.kind {
            CellKind::Constant { value, out } => {
                for (i, net) in out.bits().iter().enumerate() {
                    origin[net.index()] = Origin::Const((value >> i) & 1 != 0);
                }
            }
            other => {
                for (i, net) in other.output_nets().iter().enumerate() {
                    if origin[net.index()] == Origin::Unknown {
                        origin[net.index()] = Origin::CellBit(c, i);
                    }
                }
            }
        }
    }

    let mut pass = WidthPass {
        netlist,
        config,
        origin,
        cell_val: vec![None; netlist.cell_count()],
        in_ports,
        findings: Vec::new(),
    };

    for id in order {
        let cell = pass.netlist.cell(id);
        let val = match &cell.kind {
            CellKind::Constant { value, .. } => {
                Some(Interval { min: (*value).into(), max: (*value).into(), exact: true })
            }
            CellKind::Register { d, .. } => Some(pass.decompose(d, &cell.name)),
            CellKind::CarryAdd { a, b, out } | CellKind::CarrySub { a, b, out } => {
                let ia = pass.decompose(a, &cell.name);
                let ib = pass.decompose(b, &cell.name);
                let sub = matches!(cell.kind, CellKind::CarrySub { .. });
                let sum = if sub {
                    Interval {
                        min: ia.min - ib.max,
                        max: ia.max - ib.min,
                        exact: ia.exact && ib.exact,
                    }
                } else {
                    Interval {
                        min: ia.min + ib.min,
                        max: ia.max + ib.max,
                        exact: ia.exact && ib.exact,
                    }
                };
                let w = out.width();
                if sum.fits(w) {
                    Some(sum)
                } else if let Some(anchor) = pass.config.anchor_for(&cell.name).filter(|a| {
                    Interval { min: a.min.into(), max: a.max.into(), exact: true }.fits(w)
                }) {
                    // Table 1 narrowing: the gain-based range fits even
                    // though naive interval propagation does not.
                    Some(Interval { min: anchor.min.into(), max: anchor.max.into(), exact: true })
                } else {
                    if sum.exact {
                        pass.findings.push(Diagnostic {
                            rule: RuleId::L003,
                            severity: Severity::Warning,
                            locus: Locus::Cell(cell.name.clone()),
                            message: format!(
                                "truncating {}: result range [{}, {}] needs {} bit(s) but the output bus has {w}",
                                if sub { "subtract" } else { "add" },
                                sum.min,
                                sum.max,
                                bits_for(sum),
                            ),
                            fix_hint: Some(format!("widen the result bus to {} bit(s)", bits_for(sum))),
                        });
                    }
                    Some(Interval::full(w))
                }
            }
            _ => None,
        };
        pass.cell_val[id.index()] = val;
    }
    pass.findings
}

/// Two's-complement bits needed for an interval.
fn bits_for(iv: Interval) -> usize {
    let mut w = 1;
    while !iv.fits(w) {
        w += 1;
    }
    w
}

impl WidthPass<'_> {
    /// Name of the cell/port a run sources from (for anchors and
    /// messages).
    fn source_name(&self, o: Origin) -> String {
        match o {
            Origin::CellBit(c, _) => self.netlist.cells()[c].name.clone(),
            Origin::PortBit(p, _) => format!("port:{}", self.in_ports[p].0),
            _ => "?".to_owned(),
        }
    }

    fn source_val_width(&self, o: Origin) -> (Option<Interval>, usize) {
        match o {
            Origin::CellBit(c, _) => {
                let w = match &self.netlist.cells()[c].kind {
                    CellKind::CarryAdd { out, .. } | CellKind::CarrySub { out, .. } => out.width(),
                    CellKind::Register { q, .. } => q.width(),
                    CellKind::Constant { out, .. } => out.width(),
                    other => other.output_nets().len(),
                };
                (self.cell_val[c], w)
            }
            Origin::PortBit(p, _) => (Some(self.in_ports[p].2), self.in_ports[p].1.width()),
            _ => (None, 0),
        }
    }

    /// Same-source check: is `b` bit `bit` of the source `a` belongs to?
    fn is_bit_of(&self, a: Origin, b: Origin, bit: usize) -> bool {
        match (a, b) {
            (Origin::CellBit(c1, _), Origin::CellBit(c2, i)) => c1 == c2 && i == bit,
            (Origin::PortBit(p1, _), Origin::PortBit(p2, i)) => p1 == p2 && i == bit,
            _ => false,
        }
    }

    fn run_start(o: Origin) -> Option<usize> {
        match o {
            Origin::CellBit(_, i) | Origin::PortBit(_, i) => Some(i),
            _ => None,
        }
    }

    /// The value interval carried by an operand bus, reconstructed from
    /// its bit structure. `reader` names the consuming cell for finding
    /// loci.
    fn decompose(&mut self, bus: &Bus, reader: &str) -> Interval {
        let width = bus.width();
        let bits = bus.bits();

        // 1. Strip sign replication (value-preserving: the top two bits
        //    being one net is exactly sign extension).
        let mut w = width;
        while w >= 2 && bits[w - 1] == bits[w - 2] {
            w -= 1;
        }

        // 2. Strip zero padding below (shift_left's gnd fill).
        let mut k = 0;
        while k + 1 < w && self.origin[bits[k].index()] == Origin::Const(false) {
            k += 1;
        }
        let rest = &bits[k..w];

        // 3. All-constant rest: a literal.
        if rest.iter().all(|n| matches!(self.origin[n.index()], Origin::Const(_))) {
            let mut v: i128 = 0;
            for (i, n) in rest.iter().enumerate() {
                if let Origin::Const(true) = self.origin[n.index()] {
                    if i + 1 == rest.len() {
                        v -= 1i128 << i;
                    } else {
                        v += 1i128 << i;
                    }
                }
            }
            return Interval { min: v, max: v, exact: true }.shl(k);
        }

        // 4. A single run of one source?
        let first = self.origin[rest[0].index()];
        if let Some(j) = Self::run_start(first) {
            let len = rest
                .iter()
                .enumerate()
                .take_while(|(i, n)| self.is_bit_of(first, self.origin[n.index()], j + i))
                .count();
            if len == rest.len() {
                return self.run_value(first, j, len, reader).shl(k);
            }
            // 5. The add_shifted composition: low bits of S, then the
            //    full output of an adder T whose `a` operand is S >> len
            //    — algebraically S ± (B << len), which per-part interval
            //    arithmetic cannot bound tightly.
            if j == 0 && k == 0 {
                if let Some(iv) = self.add_shifted_value(first, len, &rest[len..], reader) {
                    return iv;
                }
            }
        }

        Interval::full(width)
    }

    /// Value of bits `j..j+len` of the source behind `o`.
    fn run_value(&mut self, o: Origin, j: usize, len: usize, reader: &str) -> Interval {
        let (val, src_width) = self.source_val_width(o);
        let Some(val) = val else {
            return Interval::full(len);
        };
        let top = j + len;
        // Keeping the source's sign bit: a pure (possibly shifted) view.
        if top >= src_width {
            return val.shr(j);
        }
        // The slice drops high bits: legitimate iff the (shifted) value
        // range fits the kept width, or a Table 1 anchor vouches for it.
        let shifted = val.shr(j);
        if shifted.fits(len) {
            return shifted;
        }
        if let Some(anchor) = self.config.anchor_for(&self.source_name(o)) {
            let av = Interval { min: anchor.min.into(), max: anchor.max.into(), exact: true };
            let av = av.shr(j);
            if av.fits(len) {
                return av;
            }
        }
        if shifted.exact {
            let d = Diagnostic {
                rule: RuleId::L003,
                severity: Severity::Warning,
                locus: Locus::Cell(reader.to_owned()),
                message: format!(
                    "truncating slice of '{}': keeps {len} of {src_width} bit(s) but the value range [{}, {}] needs {}",
                    self.source_name(o),
                    shifted.min,
                    shifted.max,
                    bits_for(shifted),
                ),
                fix_hint: Some(
                    "keep more bits, or register the node's Table 1 range as an anchor"
                        .to_owned(),
                ),
            };
            if !self.findings.contains(&d) {
                self.findings.push(d);
            }
        }
        Interval::full(len)
    }

    /// Tight value of `S[0..len] ++ T[..]` where `T = (S >> len) ± B`:
    /// the composition equals `S ± (B << len)`.
    fn add_shifted_value(
        &mut self,
        s: Origin,
        len: usize,
        high: &[dwt_rtl::net::NetId],
        reader: &str,
    ) -> Option<Interval> {
        let Origin::CellBit(t_cell, 0) = self.origin[high[0].index()] else {
            return None;
        };
        let (a, b, out, sub) = match &self.netlist.cells()[t_cell].kind {
            CellKind::CarryAdd { a, b, out } => (a, b, out, false),
            CellKind::CarrySub { a, b, out } => (a, b, out, true),
            _ => return None,
        };
        if out.width() != high.len()
            || !high
                .iter()
                .enumerate()
                .all(|(i, n)| self.origin[n.index()] == Origin::CellBit(t_cell, i))
        {
            return None;
        }
        // `a` must be exactly S >> len (a run of S from bit `len` up to
        // and including its sign bit, modulo sign replication).
        let a_bits = a.bits();
        let mut aw = a_bits.len();
        while aw >= 2 && a_bits[aw - 1] == a_bits[aw - 2] {
            aw -= 1;
        }
        let (s_val, s_width) = self.source_val_width(s);
        let a_is_shifted_s = a_bits[..aw]
            .iter()
            .enumerate()
            .all(|(i, n)| self.is_bit_of(s, self.origin[n.index()], len + i))
            && len + aw == s_width;
        if !a_is_shifted_s {
            return None;
        }
        let s_val = s_val?;
        // T itself must not have wrapped for the identity to hold.
        if !self.cell_val[t_cell].is_some_and(|v| v.exact) {
            return None;
        }
        let b_val = self.decompose(&b.clone(), reader).shl(len);
        Some(if sub {
            Interval {
                min: s_val.min - b_val.max,
                max: s_val.max - b_val.min,
                exact: s_val.exact && b_val.exact,
            }
        } else {
            Interval {
                min: s_val.min + b_val.min,
                max: s_val.max + b_val.max,
                exact: s_val.exact && b_val.exact,
            }
        })
    }
}
