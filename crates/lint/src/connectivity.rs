//! L002 — connectivity: undriven and multiply-driven nets, unread
//! input bits, and dead cells.
//!
//! The driver/reader tables are recomputed from the raw cell list
//! rather than taken from the netlist's cached maps, so the pass also
//! works on [`dwt_rtl::netlist::Netlist::assemble_unchecked`] graphs
//! whose caches are (deliberately) first-driver-wins.

use dwt_rtl::cell::CellKind;
use dwt_rtl::net::NetId;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::diag::{Diagnostic, Locus, RuleId, Severity};

/// Runs the pass.
#[must_use]
pub fn run(netlist: &Netlist) -> Vec<Diagnostic> {
    let n = netlist.net_count();
    let mut findings = Vec::new();

    // Recompute drivers per net: cell outputs and input-port bits.
    let mut drivers: Vec<Vec<String>> = vec![Vec::new(); n];
    for cell in netlist.cells() {
        for net in cell.kind.output_nets() {
            drivers[net.index()].push(cell.name.clone());
        }
    }
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            for net in port.bus.bits() {
                drivers[net.index()].push(format!("port:{}", port.name));
            }
        }
    }

    // Readers per net: cell inputs and output-port bits.
    let mut readers: Vec<Vec<String>> = vec![Vec::new(); n];
    for cell in netlist.cells() {
        for net in cell.kind.input_nets() {
            readers[net.index()].push(cell.name.clone());
        }
    }
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            for net in port.bus.bits() {
                readers[net.index()].push(format!("port:{}", port.name));
            }
        }
    }

    for i in 0..n {
        if drivers[i].len() > 1 {
            findings.push(Diagnostic {
                rule: RuleId::L002,
                severity: Severity::Error,
                locus: Locus::Net { net: i as u32, near: drivers[i][0].clone() },
                message: format!(
                    "net driven {} times ({})",
                    drivers[i].len(),
                    drivers[i].join(", ")
                ),
                fix_hint: Some("keep exactly one driver per net".to_owned()),
            });
        }
        if drivers[i].is_empty() && !readers[i].is_empty() {
            findings.push(Diagnostic {
                rule: RuleId::L002,
                severity: Severity::Error,
                locus: Locus::Net { net: i as u32, near: readers[i][0].clone() },
                message: format!("undriven net read by {}", readers[i].join(", ")),
                fix_hint: Some("drive the net or remove its readers".to_owned()),
            });
        }
    }

    // Input-port bits nobody reads: the port is wider than the logic.
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            let unread = port.bus.bits().iter().filter(|b| readers[b.index()].is_empty()).count();
            if unread > 0 {
                findings.push(Diagnostic {
                    rule: RuleId::L002,
                    severity: Severity::Warning,
                    locus: Locus::Port(port.name.clone()),
                    message: format!(
                        "{unread} of {} input bit(s) are never read",
                        port.bus.width()
                    ),
                    fix_hint: Some("narrow the port or connect the bits".to_owned()),
                });
            }
        }
    }

    // Dead cells, with exactly the liveness `opt::eliminate_dead_cells`
    // uses, so lint findings predict what the optimiser would strip.
    for idx in dead_cells(netlist) {
        let cell = &netlist.cells()[idx];
        findings.push(Diagnostic {
            rule: RuleId::L002,
            severity: Severity::Warning,
            locus: Locus::Cell(cell.name.clone()),
            message: "cell drives nothing observable (dead logic)".to_owned(),
            fix_hint: Some("remove it, or run opt::eliminate_dead_cells".to_owned()),
        });
    }

    findings
}

/// Indices of cells `opt::eliminate_dead_cells` would remove: cells
/// unreachable backward from the observability roots (output ports,
/// register data pins, RAM write/read pins), with registers kept when
/// their output is read anywhere and RAMs kept always.
#[must_use]
pub fn dead_cells(netlist: &Netlist) -> Vec<usize> {
    let mut live = vec![false; netlist.cell_count()];
    let mut work: Vec<NetId> = Vec::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            work.extend(port.bus.bits());
        }
    }
    for cell in netlist.cells() {
        match &cell.kind {
            CellKind::Register { d, .. } => work.extend(d.bits()),
            CellKind::Ram { raddr, waddr, wdata, wen, .. } => {
                work.extend(raddr.bits());
                work.extend(waddr.bits());
                work.extend(wdata.bits());
                work.push(*wen);
            }
            _ => {}
        }
    }
    let mut seen_net = vec![false; netlist.net_count()];
    while let Some(net) = work.pop() {
        if std::mem::replace(&mut seen_net[net.index()], true) {
            continue;
        }
        if let Some(driver) = netlist.driver(net) {
            if !std::mem::replace(&mut live[driver.index()], true) {
                work.extend(netlist.cell(driver).kind.input_nets());
            }
        }
    }
    netlist
        .cells()
        .iter()
        .enumerate()
        .filter(|(i, cell)| {
            let keep = match &cell.kind {
                CellKind::Register { q, .. } => {
                    live[*i] || q.bits().iter().any(|n| seen_net[n.index()])
                }
                CellKind::Ram { .. } => true,
                _ => live[*i],
            };
            !keep
        })
        .map(|(i, _)| i)
        .collect()
}
