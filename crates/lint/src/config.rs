//! Lint configuration: expected pipeline depth, input value ranges,
//! and the Table 1 range anchors the width-safety pass trusts.

use std::collections::BTreeMap;

use dwt_core::bitwidth;

/// A trusted value range for cells whose name starts with a prefix.
///
/// The paper's Table 1 widths rest on the *gain-based* range analysis
/// (Section 3.1): from the γ stage onward the registers are narrower
/// than a naive interval propagation would demand, because opposing
/// filter taps cancel. A truncating slice is therefore legitimate
/// exactly when the paper's range for that node fits the kept width —
/// the anchor records that range, keyed by the datapath's cell-name
/// stem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeAnchor {
    /// Cell-name prefix the anchor applies to (e.g. `"gamma"`).
    pub prefix: String,
    /// Smallest value the analysis guarantees at such cells.
    pub min: i64,
    /// Largest value the analysis guarantees at such cells.
    pub max: i64,
}

/// Configuration for one lint run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintConfig {
    /// Pipeline depth L004 must infer (Table 3: 8 for Designs 1/2/4,
    /// 21 for Designs 3/5). `None` skips the depth check but still
    /// enforces balance.
    pub expected_depth: Option<usize>,
    /// Value range per *input port* for the interval engine; ports not
    /// listed assume their full two's-complement range.
    pub input_ranges: BTreeMap<String, (i64, i64)>,
    /// Table 1 anchors consulted when a truncating slice is found.
    pub anchors: Vec<RangeAnchor>,
    /// Output ports exempt from pipeline-balance checking. A parity
    /// variant's `fault_detect` OR-tree legitimately merges check bits
    /// from every pipeline stage.
    pub balance_exempt_ports: Vec<String>,
}

impl LintConfig {
    /// The configuration for the paper's lifting datapath: signed-8-bit
    /// input ports, Table 1 gain-based anchors keyed by the builder's
    /// cell-name stems, and the `fault_detect` balance exemption.
    #[must_use]
    pub fn for_paper_datapath(expected_depth: usize) -> Self {
        let ranges = bitwidth::paper();
        let anchor = |prefix: &str, r: bitwidth::NodeRange| RangeAnchor {
            prefix: prefix.to_owned(),
            min: r.min,
            max: r.max,
        };
        let mut input_ranges = BTreeMap::new();
        for port in ["in_even", "in_odd"] {
            input_ranges.insert(port.to_owned(), (ranges.input.min, ranges.input.max));
        }
        LintConfig {
            expected_depth: Some(expected_depth),
            input_ranges,
            anchors: vec![
                anchor("r_in", ranges.input),
                anchor("alpha", ranges.after_alpha),
                anchor("beta", ranges.after_beta),
                anchor("gamma", ranges.after_gamma),
                anchor("delta", ranges.after_delta),
                anchor("inv_k", ranges.low_output),
                anchor("minus_k", ranges.high_output),
                anchor("low", ranges.low_output),
                anchor("high", ranges.high_output),
            ],
            balance_exempt_ports: vec!["fault_detect".to_owned()],
        }
    }

    /// The anchor whose prefix matches the given cell name, if any
    /// (longest matching prefix wins).
    #[must_use]
    pub fn anchor_for(&self, cell_name: &str) -> Option<&RangeAnchor> {
        self.anchors
            .iter()
            .filter(|a| cell_name.starts_with(a.prefix.as_str()))
            .max_by_key(|a| a.prefix.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_carries_table1_ranges() {
        let c = LintConfig::for_paper_datapath(8);
        assert_eq!(c.expected_depth, Some(8));
        assert_eq!(c.input_ranges["in_even"], (-128, 127));
        let g = c.anchor_for("gamma_pair_3").unwrap();
        assert_eq!((g.min, g.max), (-205, 205));
        assert!(c.balance_exempt_ports.contains(&"fault_detect".to_owned()));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut c = LintConfig::default();
        c.anchors.push(RangeAnchor { prefix: "a".to_owned(), min: -1, max: 1 });
        c.anchors.push(RangeAnchor { prefix: "ab".to_owned(), min: -2, max: 2 });
        assert_eq!(c.anchor_for("abc").unwrap().max, 2);
        assert_eq!(c.anchor_for("axe").unwrap().max, 1);
        assert!(c.anchor_for("zzz").is_none());
    }
}
