//! L005 — register reachability.
//!
//! The netlist IR has an implicit always-on clock and power-up-clear
//! registers, so the classic reset/clock-enable lints reduce to their
//! structural core: every register must be *controllable* (some input
//! port reaches its data pin — otherwise it can only ever hold its
//! power-up value or a constant) and *observable* (its output reaches
//! some output port — otherwise it is state the outside world never
//! sees). Either way the flip-flops are area spent on nothing.

use dwt_rtl::cell::CellKind;
use dwt_rtl::net::NetId;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::diag::{Diagnostic, Locus, RuleId, Severity};

/// Runs the pass.
#[must_use]
pub fn run(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut findings = Vec::new();

    // Forward reachability from the input ports, through every cell.
    let mut from_input = vec![false; netlist.net_count()];
    let mut work: Vec<NetId> = Vec::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            work.extend(port.bus.bits());
        }
    }
    while let Some(net) = work.pop() {
        if std::mem::replace(&mut from_input[net.index()], true) {
            continue;
        }
        for &reader in netlist.fanout(net) {
            for out in netlist.cell(reader).kind.output_nets() {
                if !from_input[out.index()] {
                    work.push(out);
                }
            }
        }
    }

    // Backward reachability from the output ports.
    let mut to_output = vec![false; netlist.net_count()];
    let mut work: Vec<NetId> = Vec::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output {
            work.extend(port.bus.bits());
        }
    }
    while let Some(net) = work.pop() {
        if std::mem::replace(&mut to_output[net.index()], true) {
            continue;
        }
        if let Some(driver) = netlist.driver(net) {
            work.extend(netlist.cell(driver).kind.input_nets());
        }
    }

    for cell in netlist.cells() {
        let CellKind::Register { d, q } = &cell.kind else { continue };
        if !d.bits().iter().any(|n| from_input[n.index()]) {
            findings.push(Diagnostic {
                rule: RuleId::L005,
                severity: Severity::Warning,
                locus: Locus::Cell(cell.name.clone()),
                message: "register is uncontrollable: no input port reaches its data pin"
                    .to_owned(),
                fix_hint: Some("tie it to the datapath or replace it with a constant".to_owned()),
            });
        }
        if !q.bits().iter().any(|n| to_output[n.index()]) {
            findings.push(Diagnostic {
                rule: RuleId::L005,
                severity: Severity::Warning,
                locus: Locus::Cell(cell.name.clone()),
                message: "register is unobservable: its output reaches no output port".to_owned(),
                fix_hint: Some("expose or remove the state".to_owned()),
            });
        }
    }
    findings
}
