//! L004 — pipeline balance.
//!
//! The paper's stage counts (Table 3: 8 for Designs 1/2/4, 21 for
//! Designs 3/5) are properties of a consistent *schedule*: a per-net
//! time potential `P` with `P = 0` at the input ports, `P(q) = P(d)+1`
//! across every register, and all inputs of every combinational cell
//! equal. A lifting datapath is not a pure pipeline, though — its
//! predict/update stages deliberately add a word to its own
//! one-register-delayed image (`s[m] + s[m+1]`, a two-tap FIR). At
//! such a **self-tap adder** (detected structurally: one operand is
//! bit-for-bit the register image of the other) the sample index
//! shifts, so its output potential is `P(newer operand) + j` with an
//! unknown j ∈ {0, 1} — which alignment-register reconvergence
//! elsewhere in the datapath then pins. The pass therefore solves a
//! difference-constraint system (union-find with offsets over the j's)
//! instead of propagating a single latency:
//!
//! * an **unsolvable constraint** is a genuine imbalance — words from
//!   different cycles meet at one cell — reported at that cell;
//! * a **j outside {0, 1}** means a register was dropped or duplicated
//!   around a tap, reported at the tap adder;
//! * the solved potential at each output port is the **inferred
//!   pipeline depth**, which must be bit-consistent, agree across
//!   ports, and match the configured Table 3 value.
//!
//! Cells that only feed exempt ports are skipped: a parity variant's
//! `fault_detect` OR-tree merges check bits from every stage by
//! design.

use dwt_rtl::cell::{tables, CellKind};
use dwt_rtl::net::NetId;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Locus, RuleId, Severity};

/// An affine schedule expression: `c`, or `c + var` for a still-unpinned
/// sample-shift variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Expr {
    c: i64,
    var: Option<usize>,
}

impl Expr {
    fn konst(c: i64) -> Expr {
        Expr { c, var: None }
    }
}

/// Union-find with offsets over the sample-shift variables, plus pinned
/// values on roots.
struct Solver {
    parent: Vec<usize>,
    /// `var = parent + offset`.
    offset: Vec<i64>,
    value: Vec<Option<i64>>,
    /// The self-tap adder each variable belongs to.
    cell_of: Vec<String>,
}

impl Solver {
    fn new() -> Solver {
        Solver { parent: Vec::new(), offset: Vec::new(), value: Vec::new(), cell_of: Vec::new() }
    }

    fn fresh(&mut self, cell: &str) -> usize {
        self.parent.push(self.parent.len());
        self.offset.push(0);
        self.value.push(None);
        self.cell_of.push(cell.to_owned());
        self.parent.len() - 1
    }

    /// Root and accumulated offset: `v = root + delta`.
    fn find(&mut self, v: usize) -> (usize, i64) {
        if self.parent[v] == v {
            return (v, 0);
        }
        let (root, d) = self.find(self.parent[v]);
        self.parent[v] = root;
        self.offset[v] += d;
        (root, self.offset[v])
    }

    fn resolve(&mut self, e: Expr) -> Expr {
        match e.var {
            None => e,
            Some(v) => {
                let (root, d) = self.find(v);
                match self.value[root] {
                    Some(val) => Expr::konst(e.c + d + val),
                    None => Expr { c: e.c + d, var: Some(root) },
                }
            }
        }
    }

    /// Adds the constraint `a == b`; `Err` on an outright conflict.
    fn equate(&mut self, a: Expr, b: Expr) -> Result<(), ()> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (a.var, b.var) {
            (None, None) => {
                if a.c == b.c {
                    Ok(())
                } else {
                    Err(())
                }
            }
            (Some(r), None) => {
                self.value[r] = Some(b.c - a.c);
                Ok(())
            }
            (None, Some(r)) => {
                self.value[r] = Some(a.c - b.c);
                Ok(())
            }
            (Some(r1), Some(r2)) => {
                if r1 == r2 {
                    if a.c == b.c {
                        Ok(())
                    } else {
                        Err(())
                    }
                } else {
                    // r2 = r1 + (a.c - b.c)
                    self.parent[r2] = r1;
                    self.offset[r2] = a.c - b.c;
                    Ok(())
                }
            }
        }
    }
}

/// Runs the pass. Returns the findings and the inferred depth (when
/// the schedule solves and the outputs agree).
#[must_use]
pub fn run(netlist: &Netlist, config: &LintConfig) -> (Vec<Diagnostic>, Option<usize>) {
    let Some(order) = netlist.sequential_topo() else {
        return (
            vec![Diagnostic {
                rule: RuleId::L004,
                severity: Severity::Error,
                locus: Locus::Path(vec![]),
                message: "sequential feedback loop: no global pipeline schedule exists".to_owned(),
                fix_hint: None,
            }],
            None,
        );
    };

    let relevant = reaches_checked_output(netlist, config);
    let mut findings = Vec::new();
    let mut solver = Solver::new();
    let mut p: Vec<Option<Expr>> = vec![None; netlist.net_count()];
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            for net in port.bus.bits() {
                p[net.index()] = Some(Expr::konst(0));
            }
        }
    }

    for id in order {
        let cell = netlist.cell(id);
        if matches!(cell.kind, CellKind::Constant { .. }) {
            continue; // wildcard: adapts to any stage
        }
        let step = i64::from(matches!(cell.kind, CellKind::Register { .. }));

        // The self-tap (two-tap FIR) waiver: the newer operand's bits,
        // and the other inputs that must instead agree with the output.
        let tap_newer = self_tap_newer(netlist, &cell.kind);
        let (checked, out_base): (Vec<NetId>, Option<Expr>) = match &tap_newer {
            Some((newer, others)) => {
                let base = newer
                    .iter()
                    .find_map(|n| p[n.index()])
                    .map(|e| solver.resolve(e))
                    .map(|e| match e.var {
                        // One pending variable is all the solver tracks;
                        // a second would need a full linear system.
                        Some(_) => None,
                        None => Some(Expr { c: e.c, var: Some(solver.fresh(&cell.name)) }),
                    })
                    .unwrap_or(None);
                (others.clone(), base)
            }
            None => {
                let inputs = cell.kind.comb_input_nets();
                let base = inputs.iter().find_map(|n| p[n.index()]);
                (inputs, base)
            }
        };

        if let Some(base) = out_base {
            if relevant[id.index()] {
                for net in &checked {
                    if let Some(e) = p[net.index()] {
                        if solver.equate(base, e).is_err() {
                            let b = solver.resolve(base);
                            let e = solver.resolve(e);
                            findings.push(Diagnostic {
                                rule: RuleId::L004,
                                severity: Severity::Error,
                                locus: Locus::Cell(cell.name.clone()),
                                message: format!(
                                    "words from different pipeline cycles meet here (schedule {} vs {})",
                                    b.c, e.c
                                ),
                                fix_hint: Some(
                                    "insert a balancing register on the shallow arm".to_owned(),
                                ),
                            });
                        }
                    }
                }
            }
            let out = Expr { c: base.c + step, var: base.var };
            for net in cell.kind.output_nets() {
                p[net.index()] = Some(out);
            }
        }
    }

    // Every sample-shift must have solved to 0 or 1: anything else
    // means a register vanished from (or doubled on) one arm of a tap.
    let mut reported_vars: Vec<usize> = Vec::new();
    for v in 0..solver.parent.len() {
        let (root, d) = solver.find(v);
        if let Some(val) = solver.value[root] {
            let j = val + d;
            if !(0..=1).contains(&j) && !reported_vars.contains(&root) {
                reported_vars.push(root);
                findings.push(Diagnostic {
                    rule: RuleId::L004,
                    severity: Severity::Error,
                    locus: Locus::Cell(solver.cell_of[v].clone()),
                    message: format!(
                        "two-tap adder needs a sample shift of {j}, outside the one register a z^-1 tap provides"
                    ),
                    fix_hint: Some("restore the dropped pipeline register".to_owned()),
                });
            }
        }
    }

    // Output-port potentials: bit-consistent, cross-port consistent,
    // equal to the Table 3 depth.
    let had_schedule_findings = !findings.is_empty();
    let mut depth: Option<i64> = None;
    let mut consistent = true;
    for port in netlist.ports().values() {
        if port.direction != PortDirection::Output
            || config.balance_exempt_ports.contains(&port.name)
        {
            continue;
        }
        let mut port_depths: Vec<i64> = Vec::new();
        let mut unresolved = false;
        for net in port.bus.bits() {
            if let Some(e) = p[net.index()] {
                let e = solver.resolve(e);
                match e.var {
                    None => port_depths.push(e.c),
                    Some(_) => unresolved = true,
                }
            }
        }
        port_depths.sort_unstable();
        port_depths.dedup();
        if unresolved {
            consistent = false;
            findings.push(Diagnostic {
                rule: RuleId::L004,
                severity: Severity::Warning,
                locus: Locus::Port(port.name.clone()),
                message: "output latency depends on an unpinned sample shift".to_owned(),
                fix_hint: None,
            });
            continue;
        }
        match port_depths.as_slice() {
            [] => {}
            [d] => {
                if let Some(expect) = config.expected_depth {
                    if *d != expect as i64 {
                        consistent = false;
                        findings.push(Diagnostic {
                            rule: RuleId::L004,
                            severity: Severity::Error,
                            locus: Locus::Port(port.name.clone()),
                            message: format!(
                                "inferred pipeline depth {d} does not match the expected {expect} (Table 3)"
                            ),
                            fix_hint: None,
                        });
                    }
                }
                match depth {
                    None => depth = Some(*d),
                    Some(prev) if prev != *d => {
                        consistent = false;
                        findings.push(Diagnostic {
                            rule: RuleId::L004,
                            severity: Severity::Error,
                            locus: Locus::Port(port.name.clone()),
                            message: format!(
                                "output latency {d} disagrees with the {prev} seen on other outputs"
                            ),
                            fix_hint: Some("align the outputs with balancing registers".to_owned()),
                        });
                    }
                    Some(_) => {}
                }
            }
            many => {
                consistent = false;
                findings.push(Diagnostic {
                    rule: RuleId::L004,
                    severity: Severity::Error,
                    locus: Locus::Port(port.name.clone()),
                    message: format!(
                        "bits of one output arrive after different latencies ({})",
                        many.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
                    ),
                    fix_hint: Some("align the outputs with balancing registers".to_owned()),
                });
            }
        }
    }
    let inferred = if consistent && !had_schedule_findings {
        depth.and_then(|d| usize::try_from(d).ok())
    } else {
        None
    };

    (findings, inferred)
}

/// Solves the same schedule as [`run`] and returns the per-net time
/// potentials, indexed by [`NetId::index`].
///
/// This is the cut-legality oracle for the partitioning pass: a net's
/// potential says which pipeline stage its word belongs to, so cuts
/// pinned to ascending potentials fall on register boundaries of the
/// paper's stage structure. Returns `None` when no consistent global
/// schedule exists (sequential feedback outside the self-tap waiver,
/// words from different cycles meeting at one cell, or a sample shift
/// outside `{0, 1}`). Per-net entries are `None` for nets the solve
/// never reached (dead logic, constant outputs — constants adapt to
/// any stage) or whose potential still depends on an unpinned sample
/// shift. Cells feeding only `balance_exempt_ports` are not checked
/// for consistency, mirroring [`run`].
#[must_use]
pub fn net_stages(netlist: &Netlist, config: &LintConfig) -> Option<Vec<Option<i64>>> {
    let order = netlist.sequential_topo()?;
    let relevant = reaches_checked_output(netlist, config);
    let mut solver = Solver::new();
    let mut p: Vec<Option<Expr>> = vec![None; netlist.net_count()];
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Input {
            for net in port.bus.bits() {
                p[net.index()] = Some(Expr::konst(0));
            }
        }
    }
    for id in order {
        let cell = netlist.cell(id);
        if matches!(cell.kind, CellKind::Constant { .. }) {
            continue;
        }
        let step = i64::from(matches!(cell.kind, CellKind::Register { .. }));
        let tap_newer = self_tap_newer(netlist, &cell.kind);
        let (checked, out_base): (Vec<NetId>, Option<Expr>) = match &tap_newer {
            Some((newer, others)) => {
                let base = newer
                    .iter()
                    .find_map(|n| p[n.index()])
                    .map(|e| solver.resolve(e))
                    .map(|e| match e.var {
                        Some(_) => None,
                        None => Some(Expr { c: e.c, var: Some(solver.fresh(&cell.name)) }),
                    })
                    .unwrap_or(None);
                (others.clone(), base)
            }
            None => {
                let inputs = cell.kind.comb_input_nets();
                let base = inputs.iter().find_map(|n| p[n.index()]);
                (inputs, base)
            }
        };
        if let Some(base) = out_base {
            if relevant[id.index()] {
                for net in &checked {
                    if let Some(e) = p[net.index()] {
                        if solver.equate(base, e).is_err() {
                            return None;
                        }
                    }
                }
            }
            let out = Expr { c: base.c + step, var: base.var };
            for net in cell.kind.output_nets() {
                p[net.index()] = Some(out);
            }
        }
    }
    for v in 0..solver.parent.len() {
        let (root, d) = solver.find(v);
        if let Some(val) = solver.value[root] {
            if !(0..=1).contains(&(val + d)) {
                return None;
            }
        }
    }
    Some(
        p.into_iter()
            .map(|e| {
                e.and_then(|e| {
                    let r = solver.resolve(e);
                    match r.var {
                        None => Some(r.c),
                        Some(_) => None,
                    }
                })
            })
            .collect(),
    )
}

/// Detects the self-tap (two-tap FIR) shape: a 2-operand adder where
/// one operand is, bit for bit, the register image of the other —
/// through a plain register, a TMR voter, or a parity-extended
/// register. Returns the *newer* operand's bits and the remaining
/// inputs that must agree with the output (a full adder's carry-in).
fn self_tap_newer(netlist: &Netlist, kind: &CellKind) -> Option<(Vec<NetId>, Vec<NetId>)> {
    let pairs_up = |a: &[NetId], b: &[NetId]| -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(&x, &r)| reg_image(netlist, r) == Some(x))
    };
    match kind {
        CellKind::CarryAdd { a, b, .. } | CellKind::CarrySub { a, b, .. } => {
            if pairs_up(a.bits(), b.bits()) {
                Some((a.bits().to_vec(), Vec::new()))
            } else if pairs_up(b.bits(), a.bits()) {
                Some((b.bits().to_vec(), Vec::new()))
            } else {
                None
            }
        }
        CellKind::FullAdder { a, b, cin, .. } => {
            if reg_image(netlist, *b) == Some(*a) {
                Some((vec![*a], vec![*cin]))
            } else if reg_image(netlist, *a) == Some(*b) {
                Some((vec![*b], vec![*cin]))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The data-input bit a net is the one-register-delayed image of:
/// through a register directly (parity-extended ones included, since
/// their data bits stay in place), or through a TMR majority voter over
/// three registers sharing one data input.
fn reg_image(netlist: &Netlist, net: NetId) -> Option<NetId> {
    let through_register = |n: NetId| -> Option<NetId> {
        let cell = netlist.cell(netlist.driver(n)?);
        let CellKind::Register { d, q } = &cell.kind else { return None };
        let pos = q.bits().iter().position(|&b| b == n)?;
        Some(d.bit(pos))
    };
    if let Some(d) = through_register(net) {
        return Some(d);
    }
    // TMR: a MAJ3 LUT over three register bits with identical inputs.
    let cell = netlist.cell(netlist.driver(net)?);
    let CellKind::Lut { inputs, table, .. } = &cell.kind else { return None };
    if *table != tables::MAJ3 || inputs.len() != 3 {
        return None;
    }
    let images: Vec<Option<NetId>> = inputs.iter().map(|&n| through_register(n)).collect();
    match (images[0], images[1], images[2]) {
        (Some(a), Some(b), Some(c)) if a == b && b == c => Some(a),
        _ => None,
    }
}

/// For each cell, whether it transitively feeds a non-exempt output
/// port (through any input, register and RAM write pins included —
/// conservative).
fn reaches_checked_output(netlist: &Netlist, config: &LintConfig) -> Vec<bool> {
    let mut reach = vec![false; netlist.cell_count()];
    let mut work: Vec<NetId> = Vec::new();
    for port in netlist.ports().values() {
        if port.direction == PortDirection::Output
            && !config.balance_exempt_ports.contains(&port.name)
        {
            work.extend(port.bus.bits());
        }
    }
    let mut seen = vec![false; netlist.net_count()];
    while let Some(net) = work.pop() {
        if std::mem::replace(&mut seen[net.index()], true) {
            continue;
        }
        if let Some(driver) = netlist.driver(net) {
            if !std::mem::replace(&mut reach[driver.index()], true) {
                work.extend(netlist.cell(driver).kind.input_nets());
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use dwt_rtl::builder::NetlistBuilder;

    use crate::config::LintConfig;

    #[test]
    fn two_tap_fir_solves_and_the_depth_is_physical() {
        // pair = x + z^-1(x), then pair + z^-1(x) pins the sample shift
        // to 1, and an output register makes the total depth 2.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let t = b.register("tap", &x).unwrap();
        let pair = b.carry_add("pair", &x, &t, 9).unwrap();
        let dly = b.register("dly", &x).unwrap();
        let mix = b.carry_add("mix", &pair, &dly, 10).unwrap();
        let q = b.register("q", &mix).unwrap();
        b.output("y", &q).unwrap();
        let netlist = b.finish().unwrap();

        let (findings, depth) = super::run(&netlist, &LintConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(depth, Some(2));
    }

    #[test]
    fn unbalanced_reconvergence_is_flagged_at_the_cell() {
        // x and a two-registers-deep copy of x meet in one adder; that
        // is not a z^-1 tap, so it is a genuine imbalance.
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let r1 = b.register("r1", &x).unwrap();
        let r2 = b.register("r2", &r1).unwrap();
        let mix = b.carry_add("mix", &x, &r2, 9).unwrap();
        b.output("y", &mix).unwrap();
        let netlist = b.finish().unwrap();

        let (findings, depth) = super::run(&netlist, &LintConfig::default());
        assert_eq!(depth, None);
        assert!(
            findings.iter().any(|f| {
                matches!(&f.locus, crate::diag::Locus::Cell(c) if c == "mix")
                    && f.message.contains("different pipeline cycles")
            }),
            "{findings:?}"
        );
    }

    #[test]
    fn net_stages_recovers_register_boundaries() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let r1 = b.register("r1", &x).unwrap();
        let r2 = b.register("r2", &r1).unwrap();
        b.output("y", &r2).unwrap();
        let netlist = b.finish().unwrap();

        let stages = super::net_stages(&netlist, &LintConfig::default()).unwrap();
        for net in x.bits() {
            assert_eq!(stages[net.index()], Some(0));
        }
        for net in r1.bits() {
            assert_eq!(stages[net.index()], Some(1));
        }
        for net in r2.bits() {
            assert_eq!(stages[net.index()], Some(2));
        }
    }

    #[test]
    fn net_stages_refuses_an_unbalanced_netlist() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 8).unwrap();
        let r1 = b.register("r1", &x).unwrap();
        let r2 = b.register("r2", &r1).unwrap();
        let mix = b.carry_add("mix", &x, &r2, 9).unwrap();
        b.output("y", &mix).unwrap();
        let netlist = b.finish().unwrap();

        assert_eq!(super::net_stages(&netlist, &LintConfig::default()), None);
    }

    #[test]
    fn expected_depth_is_enforced_per_output_port() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let q = b.register("q", &x).unwrap();
        b.output("y", &q).unwrap();
        let netlist = b.finish().unwrap();

        let config = LintConfig { expected_depth: Some(3), ..LintConfig::default() };
        let (findings, depth) = super::run(&netlist, &config);
        assert_eq!(depth, None);
        assert!(
            findings.iter().any(|f| {
                matches!(&f.locus, crate::diag::Locus::Port(p) if p == "y")
                    && f.message.contains("does not match")
            }),
            "{findings:?}"
        );
    }
}
