//! Netlist mutations for exercising the lints.
//!
//! Each mutation plants one specific bug class — a dropped pipeline
//! register (L004), a shrunk adder (L003), a disconnected net (L002) —
//! and rebuilds the graph through
//! [`Netlist::assemble_unchecked`], since the builder's validation
//! would (rightly) reject some of the results. They double as the CI
//! gate's self-test: a lint suite that no longer catches them is
//! broken.

use dwt_rtl::cell::{tables, Cell, CellKind};
use dwt_rtl::netlist::Netlist;

/// The three planted bug classes, in lint-rule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Replace a register with per-bit buffers: one pipeline stage
    /// vanishes from every path through it (L004).
    BypassRegister,
    /// Narrow an adder's operand and result buses by one bit (L003).
    ShrinkAdder,
    /// Delete a cell outright, leaving its output nets undriven (L002).
    DisconnectNet,
}

impl Mutation {
    /// All mutations.
    #[must_use]
    pub fn all() -> [Mutation; 3] {
        [Mutation::BypassRegister, Mutation::ShrinkAdder, Mutation::DisconnectNet]
    }

    /// CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mutation::BypassRegister => "drop-register",
            Mutation::ShrinkAdder => "shrink-adder",
            Mutation::DisconnectNet => "disconnect-net",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Mutation> {
        Mutation::all().into_iter().find(|m| m.name() == s)
    }

    /// The default planted-bug location (alpha-stage cells, present in
    /// every design), shared by the lint gate and the equivalence
    /// checker's mutation campaigns. Overridable per call site.
    #[must_use]
    pub fn default_target(self) -> &'static str {
        match self {
            Mutation::BypassRegister => "r_in_even",
            Mutation::ShrinkAdder => "alpha_pair",
            Mutation::DisconnectNet => "alpha_sprev",
        }
    }

    /// Applies the mutation to the first matching cell whose name
    /// contains `target`. Returns `None` when no such cell exists.
    #[must_use]
    pub fn apply(self, netlist: &Netlist, target: &str) -> Option<Netlist> {
        match self {
            Mutation::BypassRegister => bypass_register(netlist, target),
            Mutation::ShrinkAdder => shrink_adder(netlist, target),
            Mutation::DisconnectNet => remove_cell(netlist, target),
        }
    }
}

fn rebuild(netlist: &Netlist, cells: Vec<Cell>) -> Netlist {
    Netlist::assemble_unchecked(cells, netlist.net_count() as u32, netlist.ports().clone())
}

/// Replaces the first register whose name contains `target` with
/// per-bit buffers, so data flows through combinationally and the
/// pipeline loses one stage along those paths.
#[must_use]
pub fn bypass_register(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist
        .cells()
        .iter()
        .position(|c| c.name.contains(target) && matches!(c.kind, CellKind::Register { .. }))?;
    let mut cells = netlist.cells().to_vec();
    let CellKind::Register { d, q } = cells[idx].kind.clone() else { unreachable!() };
    let name = cells[idx].name.clone();
    cells.remove(idx);
    for (i, (&di, &qi)) in d.bits().iter().zip(q.bits()).enumerate() {
        cells.push(Cell {
            name: format!("{name}_bypass{i}"),
            kind: CellKind::Lut { inputs: vec![di], table: tables::BUF1, output: qi },
        });
    }
    Some(rebuild(netlist, cells))
}

/// Narrows the first behavioral adder/subtractor whose name contains
/// `target` by one bit, buffering the dropped MSB from the new sign bit
/// so connectivity and pipelining stay intact — only the value range
/// suffers.
#[must_use]
pub fn shrink_adder(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist.cells().iter().position(|c| {
        c.name.contains(target)
            && matches!(c.kind, CellKind::CarryAdd { .. } | CellKind::CarrySub { .. })
    })?;
    let mut cells = netlist.cells().to_vec();
    let (a, b, out, sub) = match cells[idx].kind.clone() {
        CellKind::CarryAdd { a, b, out } => (a, b, out, false),
        CellKind::CarrySub { a, b, out } => (a, b, out, true),
        _ => unreachable!(),
    };
    let w = out.width();
    if w < 2 {
        return None;
    }
    let name = cells[idx].name.clone();
    let (na, nb, nout) = (a.slice(0, w - 1), b.slice(0, w - 1), out.slice(0, w - 1));
    cells[idx].kind = if sub {
        CellKind::CarrySub { a: na, b: nb, out: nout }
    } else {
        CellKind::CarryAdd { a: na, b: nb, out: nout }
    };
    cells.push(Cell {
        name: format!("{name}_msbfill"),
        kind: CellKind::Lut {
            inputs: vec![out.bit(w - 2)],
            table: tables::BUF1,
            output: out.bit(w - 1),
        },
    });
    Some(rebuild(netlist, cells))
}

/// Deletes the first cell whose name contains `target`, leaving its
/// output nets undriven for every downstream reader.
#[must_use]
pub fn remove_cell(netlist: &Netlist, target: &str) -> Option<Netlist> {
    let idx = netlist.cells().iter().position(|c| c.name.contains(target))?;
    let mut cells = netlist.cells().to_vec();
    cells.remove(idx);
    Some(rebuild(netlist, cells))
}
