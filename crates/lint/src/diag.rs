//! Structured diagnostics: rule ids, severities, loci, findings.

use std::fmt;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Combinational-cycle detection.
    L001,
    /// Connectivity: undriven / multiply-driven nets, dead cells.
    L002,
    /// Width safety via interval inference.
    L003,
    /// Pipeline balance and inferred depth.
    L004,
    /// Register controllability / observability.
    L005,
}

impl RuleId {
    /// The rule's code, e.g. `"L004"`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
        }
    }

    /// Human-readable rule title.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            RuleId::L001 => "combinational cycle",
            RuleId::L002 => "connectivity",
            RuleId::L003 => "width safety",
            RuleId::L004 => "pipeline balance",
            RuleId::L005 => "register reachability",
        }
    }

    /// All rules, in order.
    #[must_use]
    pub fn all() -> [RuleId; 5] {
        [RuleId::L001, RuleId::L002, RuleId::L003, RuleId::L004, RuleId::L005]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Finding severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never gates by default.
    Info,
    /// Suspicious but possibly intentional.
    Warning,
    /// Structurally broken.
    Error,
}

impl Severity {
    /// Lower-case name, as used in JSON output and `--deny` arguments.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a `--deny` argument (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Locus {
    /// A cell, by name.
    Cell(String),
    /// A net, by id, with the name of its driver (or reader) for
    /// orientation.
    Net {
        /// Net id.
        net: u32,
        /// Name of the nearest named neighbour (driving or reading
        /// cell, or `port:NAME`).
        near: String,
    },
    /// A port, by name.
    Port(String),
    /// A path through named cells (e.g. the cells of a combinational
    /// cycle, or the two arms of an unbalanced reconvergence).
    Path(Vec<String>),
}

impl Locus {
    /// The DOT node names this locus touches (for graph overlays).
    #[must_use]
    pub fn nodes(&self) -> Vec<String> {
        match self {
            Locus::Cell(name) => vec![name.clone()],
            Locus::Net { near, .. } => vec![near.clone()],
            Locus::Port(name) => vec![format!("port:{name}")],
            Locus::Path(names) => names.clone(),
        }
    }
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Cell(name) => write!(f, "cell '{name}'"),
            Locus::Net { net, near } => write!(f, "net #{net} (near '{near}')"),
            Locus::Port(name) => write!(f, "port '{name}'"),
            Locus::Path(names) => write!(f, "path {}", names.join(" -> ")),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub locus: Locus,
    /// What happened.
    pub message: String,
    /// How to fix it, when the pass can tell.
    pub fix_hint: Option<String>,
}

impl Diagnostic {
    /// Renders the finding as a JSON object (hand-rolled; the build
    /// environment has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"rule\":\"{}\"", self.rule.code()));
        s.push_str(&format!(",\"severity\":\"{}\"", self.severity.name()));
        let (kind, detail) = match &self.locus {
            Locus::Cell(name) => ("cell", json_string(name)),
            Locus::Net { net, near } => {
                ("net", format!("{{\"id\":{net},\"near\":{}}}", json_string(near)))
            }
            Locus::Port(name) => ("port", json_string(name)),
            Locus::Path(names) => {
                let items: Vec<String> = names.iter().map(|n| json_string(n)).collect();
                ("path", format!("[{}]", items.join(",")))
            }
        };
        s.push_str(&format!(",\"locus\":{{\"kind\":\"{kind}\",\"at\":{detail}}}"));
        s.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        match &self.fix_hint {
            Some(h) => s.push_str(&format!(",\"fix_hint\":{}", json_string(h))),
            None => s.push_str(",\"fix_hint\":null"),
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}/{}] {}: {}",
            self.rule.code(),
            self.rule.title(),
            self.severity,
            self.locus,
            self.message
        )?;
        if let Some(hint) = &self.fix_hint {
            write!(f, " (fix: {hint})")?;
        }
        Ok(())
    }
}

/// Escapes a string into a JSON string literal (with quotes).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("WARNING"), Some(Severity::Warning));
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("bogus"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn diagnostic_json_shape() {
        let d = Diagnostic {
            rule: RuleId::L002,
            severity: Severity::Error,
            locus: Locus::Net { net: 7, near: "alpha_pair".to_owned() },
            message: "undriven net read by 'alpha_pair'".to_owned(),
            fix_hint: None,
        };
        let j = d.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"L002\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"kind\":\"net\""));
        assert!(j.contains("\"fix_hint\":null"));
    }

    #[test]
    fn display_mentions_rule_and_locus() {
        let d = Diagnostic {
            rule: RuleId::L004,
            severity: Severity::Warning,
            locus: Locus::Cell("beta_pair".to_owned()),
            message: "input latencies disagree".to_owned(),
            fix_hint: Some("insert a balancing register".to_owned()),
        };
        let s = d.to_string();
        assert!(s.contains("L004"));
        assert!(s.contains("beta_pair"));
        assert!(s.contains("fix:"));
    }
}
