//! L001 — combinational-cycle detection.
//!
//! Kahn's algorithm over the combinational cells; anything that never
//! reaches indegree 0 sits on (or downstream of) a cycle. A concrete
//! cycle is then extracted by walking predecessors inside the leftover
//! set until a cell repeats, and reported as a full path.

use dwt_rtl::netlist::{CellId, Netlist};

use crate::diag::{Diagnostic, Locus, RuleId, Severity};

/// Runs the pass.
#[must_use]
pub fn run(netlist: &Netlist) -> Vec<Diagnostic> {
    let n = netlist.cell_count();
    let comb = |id: CellId| netlist.cell(id).kind.is_combinational();

    // Combinational indegree per cell.
    let mut indegree = vec![0u32; n];
    for (i, cell) in netlist.cells().iter().enumerate() {
        if !comb(CellId::from_index(i)) {
            continue;
        }
        indegree[i] = cell
            .kind
            .comb_input_nets()
            .iter()
            .filter(|&&net| netlist.driver(net).is_some_and(comb))
            .count() as u32;
    }
    let mut queue: Vec<usize> =
        (0..n).filter(|&i| comb(CellId::from_index(i)) && indegree[i] == 0).collect();
    let mut peeled = vec![false; n];
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        peeled[i] = true;
        for net in netlist.cell(CellId::from_index(i)).kind.output_nets() {
            for &reader in netlist.fanout(net) {
                let r = reader.index();
                if !comb(reader) || peeled[r] {
                    continue;
                }
                indegree[r] = indegree[r].saturating_sub(
                    netlist
                        .cell(reader)
                        .kind
                        .comb_input_nets()
                        .iter()
                        .filter(|&&m| m == net)
                        .count() as u32,
                );
                if indegree[r] == 0 && !queue[head..].contains(&r) {
                    queue.push(r);
                }
            }
        }
    }

    let leftover: Vec<usize> =
        (0..n).filter(|&i| comb(CellId::from_index(i)) && !peeled[i]).collect();
    let mut findings = Vec::new();
    let mut claimed = vec![false; n];
    while let Some(&start) = leftover.iter().find(|&&i| !claimed[i]) {
        // Walk combinational predecessors inside the leftover set; the
        // walk must eventually revisit a cell, closing a cycle.
        let mut trail: Vec<usize> = vec![start];
        let cycle = loop {
            let cur = *trail.last().expect("non-empty trail");
            let pred = netlist
                .cell(CellId::from_index(cur))
                .kind
                .comb_input_nets()
                .iter()
                .filter_map(|&net| netlist.driver(net))
                .map(CellId::index)
                .find(|&p| comb(CellId::from_index(p)) && !peeled[p]);
            let Some(p) = pred else {
                // Downstream of a cycle but not on one; nothing to report
                // for this cell beyond the cycle itself.
                break None;
            };
            if let Some(pos) = trail.iter().position(|&t| t == p) {
                let mut cycle: Vec<usize> = trail[pos..].to_vec();
                cycle.reverse(); // predecessor walk runs against the arrows
                break Some(cycle);
            }
            trail.push(p);
        };
        for &t in &trail {
            claimed[t] = true;
        }
        if let Some(cycle) = cycle {
            let mut names: Vec<String> =
                cycle.iter().map(|&i| netlist.cell(CellId::from_index(i)).name.clone()).collect();
            // Close the loop visually.
            names.push(names[0].clone());
            findings.push(Diagnostic {
                rule: RuleId::L001,
                severity: Severity::Error,
                locus: Locus::Path(names),
                message: format!("combinational cycle through {} cell(s)", cycle.len()),
                fix_hint: Some("break the loop with a register".to_owned()),
            });
        }
    }
    findings
}
