//! The paper's designs are lint-clean, and L004 recovers exactly the
//! Table 3 pipeline depths — for the plain designs and the TMR/parity
//! hardened rebuilds alike.

use dwt_arch::designs::Design;
use dwt_arch::hardened::HardenedVariant;
use dwt_lint::{inferred_pipeline_depth, lint_netlist, LintConfig};
use dwt_rtl::netlist::Netlist;
use dwt_rtl::opt::eliminate_dead_cells;

/// The front-end order a real flow uses: sweep dead logic, then lint.
/// The generators deliberately leave clean-up to `opt` (sliced-off
/// ripple-carry tops, voters on unread bits), and L002's dead-cell
/// rule is cross-checked against `opt` separately below.
fn swept(netlist: &Netlist) -> Netlist {
    eliminate_dead_cells(netlist).unwrap().0
}

#[test]
fn all_designs_are_lint_clean() {
    for design in Design::all() {
        let built = design.build().unwrap();
        let config = LintConfig::for_paper_datapath(design.paper_row().stages);
        let report = lint_netlist(design.name(), &swept(&built.netlist), &config);
        assert!(report.is_clean(), "{}", report);
    }
}

#[test]
fn hardened_variants_are_lint_clean() {
    for variant in HardenedVariant::all() {
        let built = variant.build().unwrap();
        let config = LintConfig::for_paper_datapath(variant.base().paper_row().stages);
        let report = lint_netlist(variant.name(), &swept(&built.netlist), &config);
        assert!(report.is_clean(), "{}", report);
    }
}

#[test]
fn dead_cell_rule_agrees_with_the_optimizer() {
    for design in Design::all() {
        let built = design.build().unwrap();
        let predicted = dwt_lint::connectivity::dead_cells(&built.netlist).len();
        let (_, stats) = eliminate_dead_cells(&built.netlist).unwrap();
        assert_eq!(predicted, stats.dead_cells_removed, "{design:?}");
    }
}

#[test]
fn inferred_depths_match_table3() {
    let expected = [8usize, 8, 21, 8, 21];
    for (design, want) in Design::all().into_iter().zip(expected) {
        let built = design.build().unwrap();
        let config = LintConfig::for_paper_datapath(want);
        let report = lint_netlist(design.name(), &built.netlist, &config);
        assert_eq!(report.inferred_depth, Some(want), "{design:?}: {report}");
        // The lint's view agrees with the builder's own latency count.
        assert_eq!(report.inferred_depth, Some(built.latency), "{design:?}");
    }
}

#[test]
fn hardening_preserves_the_depth() {
    for variant in HardenedVariant::all() {
        let built = variant.build().unwrap();
        let want = variant.base().paper_row().stages;
        let config = LintConfig::for_paper_datapath(want);
        assert_eq!(
            inferred_pipeline_depth(&built.netlist, &config),
            Some(want),
            "{}",
            variant.name()
        );
    }
}

#[test]
fn inferred_depth_agrees_with_timing_stage_attribution() {
    // Cross-check against `dwt-fpga::timing::analyze`, which attributes
    // combinational depth to the register stages L004 counts: the
    // designs the lint infers as 21-deep (operator-pipelined D3/D5)
    // must carry strictly shallower per-stage logic — and hence higher
    // Fmax — than their 8-deep counterparts (D2/D4). That is exactly
    // the Table 3 area-for-throughput trade the depths encode.
    let timing = dwt_fpga::device::Device::apex20ke().timing;
    let depth_and_sta = |design: Design| {
        let built = design.build().unwrap();
        let config = LintConfig::for_paper_datapath(design.paper_row().stages);
        let depth = inferred_pipeline_depth(&built.netlist, &config).unwrap();
        (depth, dwt_fpga::timing::analyze(&built.netlist, &timing))
    };
    for (shallow, deep) in [(Design::D2, Design::D3), (Design::D4, Design::D5)] {
        let (d8, sta8) = depth_and_sta(shallow);
        let (d21, sta21) = depth_and_sta(deep);
        assert_eq!((d8, d21), (8, 21));
        assert!(
            sta21.max_logic_depth < sta8.max_logic_depth,
            "{deep:?} per-stage depth {} !< {shallow:?} {}",
            sta21.max_logic_depth,
            sta8.max_logic_depth
        );
        assert!(sta21.fmax_mhz > sta8.fmax_mhz);
    }
}

#[test]
fn depth_check_catches_a_wrong_expectation() {
    let built = Design::D1.build().unwrap();
    let config = LintConfig::for_paper_datapath(9); // Table 3 says 8
    let report = lint_netlist("d1-wrong", &built.netlist, &config);
    assert!(!report.is_clean());
    assert!(report
        .findings
        .iter()
        .any(|d| d.rule == dwt_lint::RuleId::L004 && d.message.contains("does not match")));
}
