//! Property: a netlist built with the builder's own discipline —
//! operands aligned in latency before every combine, every width sized
//! from the exact value range, everything folded into the output — has
//! nothing for any of the five lints to say, and L004's inferred depth
//! equals the latency the generator tracked.

use proptest::prelude::*;

use dwt_lint::{lint_netlist, LintConfig};
use dwt_rtl::builder::NetlistBuilder;
use dwt_rtl::net::Bus;

#[derive(Debug, Clone)]
enum Op {
    Add(usize, usize),
    Sub(usize, usize),
    ShiftLeft(usize, usize),
    ShiftRight(usize, usize),
    Register(usize),
}

fn program() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Add(a, b)),
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Sub(a, b)),
            (0usize..8, 1usize..3).prop_map(|(a, k)| Op::ShiftLeft(a, k)),
            (0usize..8, 1usize..3).prop_map(|(a, k)| Op::ShiftRight(a, k)),
            (0usize..8).prop_map(Op::Register),
        ],
        1..12,
    )
}

#[derive(Clone)]
struct Node {
    bus: Bus,
    latency: usize,
    lo: i128,
    hi: i128,
}

/// Smallest signed width holding `[lo, hi]`.
fn bits_for(lo: i128, hi: i128) -> usize {
    let mut w = 2;
    while -(1i128 << (w - 1)) > lo || hi > (1i128 << (w - 1)) - 1 {
        w += 1;
    }
    w
}

/// Registers `bus` `n` times (the builder's alignment discipline).
fn delay(b: &mut NetlistBuilder, bus: &Bus, n: usize, tag: &str) -> Bus {
    let mut cur = bus.clone();
    for i in 0..n {
        cur = b.register(&format!("bal_{tag}_{i}"), &cur).unwrap();
    }
    cur
}

fn build(ops: &[Op]) -> (dwt_rtl::netlist::Netlist, usize) {
    let mut b = NetlistBuilder::new();
    let x = b.input("x", 10).unwrap();
    let y = b.input("y", 10).unwrap();
    let mut nodes = vec![
        Node { bus: x, latency: 0, lo: -512, hi: 511 },
        Node { bus: y, latency: 0, lo: -512, hi: 511 },
    ];
    for (i, op) in ops.iter().enumerate() {
        let pick = |nodes: &Vec<Node>, idx: usize| nodes[idx % nodes.len()].clone();
        let next = match *op {
            Op::Add(ai, bi) | Op::Sub(ai, bi) => {
                let sub = matches!(op, Op::Sub(..));
                let (a, c) = (pick(&nodes, ai), pick(&nodes, bi));
                let latency = a.latency.max(c.latency);
                let ab = delay(&mut b, &a.bus, latency - a.latency, &format!("a{i}"));
                let cb = delay(&mut b, &c.bus, latency - c.latency, &format!("c{i}"));
                let (lo, hi) =
                    if sub { (a.lo - c.hi, a.hi - c.lo) } else { (a.lo + c.lo, a.hi + c.hi) };
                let w = bits_for(lo, hi);
                let bus = if sub {
                    b.carry_sub(&format!("n{i}"), &ab, &cb, w).unwrap()
                } else {
                    b.carry_add(&format!("n{i}"), &ab, &cb, w).unwrap()
                };
                Node { bus, latency, lo, hi }
            }
            Op::ShiftLeft(ai, k) => {
                let a = pick(&nodes, ai);
                let (lo, hi) = (a.lo << k, a.hi << k);
                if bits_for(lo, hi) > 24 {
                    a // cap growth; reusing the node keeps it read
                } else {
                    Node { bus: b.shift_left(&a.bus, k).unwrap(), latency: a.latency, lo, hi }
                }
            }
            Op::ShiftRight(ai, k) => {
                let a = pick(&nodes, ai);
                if a.bus.width() <= k + 1 {
                    a
                } else {
                    Node {
                        bus: b.shift_right_arith(&a.bus, k).unwrap(),
                        latency: a.latency,
                        lo: a.lo >> k,
                        hi: a.hi >> k,
                    }
                }
            }
            Op::Register(ai) => {
                let a = pick(&nodes, ai);
                Node {
                    bus: b.register(&format!("n{i}"), &a.bus).unwrap(),
                    latency: a.latency + 1,
                    ..a
                }
            }
        };
        nodes.push(next);
    }
    // Fold every node into the single output, aligning as the datapath
    // generator would, so nothing is left dead and all paths agree.
    let depth = nodes.iter().map(|n| n.latency).max().unwrap();
    let mut acc: Option<Node> = None;
    for (i, n) in nodes.iter().enumerate() {
        let aligned = delay(&mut b, &n.bus, depth - n.latency, &format!("out{i}"));
        acc = Some(match acc {
            None => Node { bus: aligned, latency: depth, lo: n.lo, hi: n.hi },
            Some(acc) => {
                let (lo, hi) = (acc.lo + n.lo, acc.hi + n.hi);
                let bus =
                    b.carry_add(&format!("fold{i}"), &acc.bus, &aligned, bits_for(lo, hi)).unwrap();
                Node { bus, latency: depth, lo, hi }
            }
        });
    }
    b.output("out", &acc.unwrap().bus).unwrap();
    (b.finish().unwrap(), depth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn disciplined_pipelines_are_lint_clean(ops in program()) {
        let (netlist, depth) = build(&ops);
        let config = LintConfig { expected_depth: Some(depth), ..LintConfig::default() };
        let report = lint_netlist("generated", &netlist, &config);
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert_eq!(report.inferred_depth, Some(depth));
    }
}
