//! Planted-bug tests: each mutation must trip exactly the lint rule it
//! was designed for, at the right place. A suite that stays green on a
//! mutant is a broken suite.

use dwt_arch::designs::Design;
use dwt_lint::{lint_netlist, LintConfig, LintReport, Locus, Mutation, RuleId, Severity};
use dwt_rtl::opt::eliminate_dead_cells;

fn lint_mutant(mutation: Mutation, target: &str) -> LintReport {
    let built = Design::D2.build().unwrap();
    let swept = eliminate_dead_cells(&built.netlist).unwrap().0;
    let mutated = mutation.apply(&swept, target).expect("mutation target exists");
    lint_netlist("d2-mutant", &mutated, &LintConfig::for_paper_datapath(8))
}

#[test]
fn baseline_without_mutation_is_clean() {
    let built = Design::D2.build().unwrap();
    let swept = eliminate_dead_cells(&built.netlist).unwrap().0;
    let report = lint_netlist("d2", &swept, &LintConfig::for_paper_datapath(8));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dropped_input_register_breaks_the_tap_schedule() {
    // Bypassing `r_in_even` starves the alpha stage's z^-1 tap of one
    // register: the tap adder's sample shift must now solve to 2, which
    // no single tap register can provide. L004, at that adder.
    let report = lint_mutant(Mutation::BypassRegister, "r_in_even");
    assert!(!report.is_clean());
    assert_eq!(report.inferred_depth, None);
    assert!(
        report.findings.iter().any(|f| {
            f.rule == RuleId::L004 && matches!(&f.locus, Locus::Cell(c) if c.contains("alpha"))
        }),
        "{report}"
    );
}

#[test]
fn dropped_output_register_shifts_the_inferred_depth() {
    // Bypassing the `low` output register leaves that port one stage
    // short of Table 3's 8 — and out of step with `high`.
    let report = lint_mutant(Mutation::BypassRegister, "low_out");
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| {
            f.rule == RuleId::L004
                && matches!(&f.locus, Locus::Port(p) if p == "low")
                && f.message.contains("does not match")
        }),
        "{report}"
    );
}

#[test]
fn shrunk_adder_truncates_the_value_range() {
    let report = lint_mutant(Mutation::ShrinkAdder, "alpha_pair");
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| {
            f.rule == RuleId::L003 && matches!(&f.locus, Locus::Cell(c) if c.contains("alpha_pair"))
        }),
        "{report}"
    );
}

#[test]
fn removed_cell_leaves_undriven_nets() {
    let report = lint_mutant(Mutation::DisconnectNet, "alpha_sprev");
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| {
            f.rule == RuleId::L002
                && f.severity == Severity::Error
                && f.message.contains("undriven")
                && matches!(&f.locus, Locus::Net { near, .. } if !near.is_empty())
        }),
        "{report}"
    );
}
