//! Frame-codec properties, randomized.
//!
//! The deterministic suite in `wire::tests` proves exhaustively — for a
//! fixed sample of frames — that every single-byte corruption and every
//! truncation is rejected. These properties extend the same claims to
//! randomized [`Frame::Boundary`] payloads: round-trip identity, and
//! rejection of any nonzero single-byte XOR, any truncation, and any
//! trailing garbage. The process supervisor trusts these properties
//! when it treats a decoded frame as authentic.

use dwt_partition::{BoundaryMsg, Frame};
use proptest::prelude::*;

fn boundary(generation: u64, link: u32, seq: u64, cycle: u64, values: Vec<i64>) -> Frame {
    Frame::Boundary { generation, link, msg: BoundaryMsg::new(seq, cycle, values) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boundary_frames_round_trip(
        generation in any::<u64>(),
        link in 0u32..1024,
        seq in any::<u64>(),
        cycle in any::<u64>(),
        values in prop::collection::vec(any::<i64>(), 0..32),
    ) {
        let frame = boundary(generation, link, seq, cycle, values);
        let decoded = Frame::decode(&frame.encode()).expect("clean bytes decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn any_single_byte_corruption_is_rejected(
        seq in any::<u64>(),
        values in prop::collection::vec(any::<i64>(), 1..16),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = boundary(9, 2, seq, seq ^ 0x55, values).encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        prop_assert!(Frame::decode(&bytes).is_err(), "flip {flip:#x} at {pos} accepted");
    }

    #[test]
    fn any_truncation_or_trailing_garbage_is_rejected(
        seq in any::<u64>(),
        values in prop::collection::vec(any::<i64>(), 0..16),
        cut_seed in any::<u64>(),
        trailing in any::<u8>(),
    ) {
        let bytes = boundary(1, 0, seq, seq, values).encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Frame::decode(&bytes[..cut]).is_err(), "truncation to {cut} accepted");
        let mut long = bytes.clone();
        long.push(trailing);
        prop_assert!(Frame::decode(&long).is_err(), "trailing byte accepted");
    }
}
