//! Differential suite: partitioned execution must be bit-exact against
//! both single-engine backends across partition counts, and must stay
//! bit-exact under chaos — SEU storms, killed workers, stragglers, and
//! in-flight corruption (plain and stealth).

use std::collections::BTreeMap;
use std::time::Duration;

use dwt_arch::designs::Design;
use dwt_partition::{
    partition, run_single, stitch, ChaosPlan, Corruption, CutOptions, DetectionKind, FrameOutputs,
    PartitionRunner, Rung, RunnerConfig, SeuChaos, Stimulus,
};
use dwt_rtl::compile::CompiledEngine;
use dwt_rtl::engine::Engine;
use dwt_rtl::sim::Simulator;

/// Deterministic 8-bit sample stream for the `in_even`/`in_odd` ports.
fn stimulus(cycles: u64, seed: u64) -> Stimulus {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) & 0xff) as i64 - 128
    };
    let mut even = Vec::with_capacity(cycles as usize);
    let mut odd = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        even.push(next());
        odd.push(next());
    }
    let mut inputs = BTreeMap::new();
    inputs.insert("in_even".to_string(), even);
    inputs.insert("in_odd".to_string(), odd);
    Stimulus { cycles, inputs }
}

fn differential_matrix<E>()
where
    E: Engine + Send + 'static,
    E::Snapshot: Clone + Send + 'static,
{
    for design in Design::all() {
        let built = design.build().expect("design builds");
        let stim = stimulus(80, 0x5eed ^ design as u64);
        let reference = run_single::<E>(&built.netlist, &stim, None).expect("reference run");
        for parts in [2usize, 4, 8] {
            let cut = partition(&built.netlist, parts, &CutOptions::default())
                .unwrap_or_else(|e| panic!("{} into {parts}: {e}", design.name()));
            assert_eq!(cut.parts(), parts);
            let runner = PartitionRunner::<E>::new(&cut, RunnerConfig::default());
            let report = runner
                .run_frame(&stim, None, &ChaosPlan::default(), None)
                .unwrap_or_else(|e| panic!("{} x {parts}: {e}", design.name()));
            assert_eq!(report.rung, Rung::Partitioned);
            assert_eq!(report.recoveries, 0, "{} x {parts} needed recovery", design.name());
            assert_eq!(report.outputs, reference, "{} x {parts} diverged", design.name());
        }
    }
}

#[test]
fn partitioned_event_backend_matches_single_engine() {
    differential_matrix::<Simulator>();
}

#[test]
fn partitioned_compiled_backend_matches_single_engine() {
    differential_matrix::<CompiledEngine>();
}

#[test]
fn single_shard_degenerate_partition_runs() {
    let built = Design::D1.build().expect("design builds");
    let stim = stimulus(48, 9);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 1, &CutOptions::default()).expect("1-way cut");
    assert!(cut.links.is_empty());
    let runner = PartitionRunner::<Simulator>::new(&cut, RunnerConfig::default());
    let report = runner.run_frame(&stim, None, &ChaosPlan::default(), None).expect("run");
    assert_eq!(report.outputs, reference);
}

#[test]
fn stitch_inverts_partition_on_every_design() {
    for design in Design::all() {
        let built = design.build().expect("design builds");
        for parts in [2usize, 4, 8] {
            let cut = partition(&built.netlist, parts, &CutOptions::default())
                .unwrap_or_else(|e| panic!("{} into {parts}: {e}", design.name()));
            let back = stitch(&cut).expect("stitch");
            assert_eq!(back, built.netlist, "{} x {parts} did not reassemble", design.name());
        }
    }
}

#[test]
fn seu_chaos_causes_zero_silent_data_corruption() {
    let built = Design::D3.build().expect("design builds");
    let stim = stimulus(96, 77);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 4, &CutOptions::default()).expect("cut");
    let config = RunnerConfig { snapshot_interval: 16, ..RunnerConfig::default() };
    let runner = PartitionRunner::<Simulator>::new(&cut, config);
    let chaos = ChaosPlan { seu: Some(SeuChaos { rate: 0.01, seed: 42 }), ..ChaosPlan::default() };
    let golden_outputs = reference.clone();
    let golden = move |_: &Stimulus| Some(golden_outputs.clone());
    let report =
        runner.run_frame(&stim, Some(&reference), &chaos, Some(&golden)).expect("frame completes");
    eprintln!(
        "seu chaos: rung {:?}, {} recoveries, {} detections, {} replayed",
        report.rung,
        report.recoveries,
        report.detections.len(),
        report.replayed_cycles
    );
    // This storm rate strikes on every attempt (deterministic seed),
    // so the detectors must have fired. Whatever rung the frame ended
    // on, the outputs must be bit-exact: availability may degrade
    // under chaos, correctness may not.
    assert!(!report.detections.is_empty(), "the storm must be detected");
    assert_eq!(report.outputs, reference, "silent data corruption");
}

#[test]
fn sparse_seu_strike_recovers_on_the_partitioned_rung() {
    // One whole-frame batch so a strike's effect reaches the outputs
    // (and the oracle) inside the batch window, making rollback-replay
    // sufficient — no degradation needed.
    let built = Design::D3.build().expect("design builds");
    let stim = stimulus(96, 77);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 4, &CutOptions::default()).expect("cut");
    let config = RunnerConfig { snapshot_interval: 96, ..RunnerConfig::default() };
    let runner = PartitionRunner::<Simulator>::new(&cut, config);
    let chaos = ChaosPlan { seu: Some(SeuChaos { rate: 0.002, seed: 7 }), ..ChaosPlan::default() };
    let report = runner.run_frame(&stim, Some(&reference), &chaos, None).expect("frame completes");
    assert_eq!(report.rung, Rung::Partitioned, "rollback-replay should suffice");
    assert!(report.recoveries >= 1, "this seed strikes: a recovery must happen");
    assert!(
        report.detections.iter().any(|d| d.kind == DetectionKind::OracleMismatch),
        "the upset must surface as an oracle mismatch: {:?}",
        report.detections
    );
    assert_eq!(report.outputs, reference, "post-recovery outputs diverged");
}

#[test]
fn killed_worker_mid_frame_recovers_bit_exact() {
    let built = Design::D2.build().expect("design builds");
    let stim = stimulus(96, 5);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 4, &CutOptions::default()).expect("cut");
    let config = RunnerConfig {
        snapshot_interval: 32,
        watchdog: Duration::from_millis(100),
        ..RunnerConfig::default()
    };
    let runner = PartitionRunner::<Simulator>::new(&cut, config);
    let chaos = ChaosPlan { kills: vec![(1, 40)], ..ChaosPlan::default() };
    let report = runner.run_frame(&stim, None, &chaos, None).expect("frame completes");
    assert_eq!(report.rung, Rung::Partitioned, "should recover without degrading");
    assert!(report.recoveries >= 1, "the kill must cost at least one recovery");
    assert!(
        report
            .detections
            .iter()
            .any(|d| matches!(d.kind, DetectionKind::Crash | DetectionKind::Stall)),
        "the dead worker must be detected: {:?}",
        report.detections
    );
    assert!(report.replayed_cycles >= 1);
    assert_eq!(report.outputs, reference, "post-recovery outputs diverged");
}

#[test]
fn stalled_worker_trips_the_watchdog_and_recovers() {
    let built = Design::D1.build().expect("design builds");
    let stim = stimulus(64, 13);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 2, &CutOptions::default()).expect("cut");
    let config = RunnerConfig {
        snapshot_interval: 32,
        watchdog: Duration::from_millis(30),
        ..RunnerConfig::default()
    };
    let runner = PartitionRunner::<Simulator>::new(&cut, config);
    let chaos =
        ChaosPlan { stalls: vec![(1, 40, Duration::from_millis(200))], ..ChaosPlan::default() };
    let report = runner.run_frame(&stim, None, &chaos, None).expect("frame completes");
    assert_eq!(report.rung, Rung::Partitioned);
    assert!(report.recoveries >= 1, "the stall must cost at least one recovery");
    assert!(
        report
            .detections
            .iter()
            .any(|d| matches!(d.kind, DetectionKind::Stall | DetectionKind::Crash)),
        "the straggler must be detected: {:?}",
        report.detections
    );
    assert_eq!(report.outputs, reference, "post-recovery outputs diverged");
}

#[test]
fn plain_corruption_is_caught_by_the_checksum() {
    let built = Design::D2.build().expect("design builds");
    let stim = stimulus(64, 21);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 2, &CutOptions::default()).expect("cut");
    let (from, to) = (cut.links[0].from, cut.links[0].to);
    let runner = PartitionRunner::<Simulator>::new(&cut, RunnerConfig::default());
    let chaos = ChaosPlan {
        corruptions: vec![Corruption { from, to, cycle: 10, stealth: false }],
        ..ChaosPlan::default()
    };
    let report = runner.run_frame(&stim, None, &chaos, None).expect("frame completes");
    assert_eq!(report.rung, Rung::Partitioned);
    assert!(
        report.detections.iter().any(|d| d.kind == DetectionKind::Checksum),
        "a stale checksum must be caught at the consumer: {:?}",
        report.detections
    );
    assert_eq!(report.outputs, reference, "post-recovery outputs diverged");
}

#[test]
fn stealth_corruption_is_caught_by_the_barrier_hash_crosscheck() {
    let built = Design::D2.build().expect("design builds");
    let stim = stimulus(64, 22);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 2, &CutOptions::default()).expect("cut");
    let (from, to) = (cut.links[0].from, cut.links[0].to);
    let runner = PartitionRunner::<Simulator>::new(&cut, RunnerConfig::default());
    let chaos = ChaosPlan {
        corruptions: vec![Corruption { from, to, cycle: 10, stealth: true }],
        ..ChaosPlan::default()
    };
    let report = runner.run_frame(&stim, None, &chaos, None).expect("frame completes");
    assert_eq!(report.rung, Rung::Partitioned);
    assert!(
        report.detections.iter().any(|d| d.kind == DetectionKind::LinkHashMismatch),
        "a checksum-rewriting corruption must be caught at the barrier: {:?}",
        report.detections
    );
    assert_eq!(report.outputs, reference, "post-recovery outputs diverged");
}

#[test]
fn missing_stimulus_is_a_typed_error() {
    let built = Design::D1.build().expect("design builds");
    let cut = partition(&built.netlist, 2, &CutOptions::default()).expect("cut");
    let runner = PartitionRunner::<Simulator>::new(&cut, RunnerConfig::default());
    let stim = Stimulus { cycles: 8, inputs: BTreeMap::new() };
    let err = runner.run_frame(&stim, None, &ChaosPlan::default(), None).unwrap_err();
    assert!(matches!(err, dwt_partition::PartitionError::Stimulus { .. }));
    let _ = FrameOutputs::default();
}

#[test]
fn virtual_clock_batch_deadline_is_deterministic() {
    use std::sync::Arc;

    use dwt_pool::clock::VirtualClock;

    let built = Design::D1.build().expect("design builds");
    let stim = stimulus(48, 21);
    let reference = run_single::<Simulator>(&built.netlist, &stim, None).expect("reference");
    let cut = partition(&built.netlist, 2, &CutOptions::default()).expect("cut");

    // A virtual clock that never advances: with a nonzero budget the
    // collection deadline can never expire, and the clean run completes
    // on the partitioned rung exactly as under wall time.
    let clock = Arc::new(VirtualClock::new());
    let config =
        RunnerConfig { clock: clock.clone(), batch_budget: Some(1_000), ..RunnerConfig::default() };
    let report = PartitionRunner::<Simulator>::new(&cut, config)
        .run_frame(&stim, None, &ChaosPlan::default(), None)
        .expect("clean run");
    assert_eq!(report.rung, Rung::Partitioned);
    assert_eq!(report.outputs, reference);

    // A zero budget on the same clock: every batch's deadline is born
    // expired, so collection gives up before any worker can report —
    // a deterministic stand-in for "the whole batch wedged". The
    // runner records Stall detections for the unreported workers and
    // degrades to the single-engine rung, still bit-exact.
    let config =
        RunnerConfig { clock, batch_budget: Some(0), max_recoveries: 1, ..RunnerConfig::default() };
    let report = PartitionRunner::<Simulator>::new(&cut, config)
        .run_frame(&stim, None, &ChaosPlan::default(), None)
        .expect("degraded run");
    assert_eq!(report.rung, Rung::SingleEngine);
    assert!(report.detections.iter().any(|d| d.kind == DetectionKind::Stall));
    assert_eq!(report.outputs, reference);
}
