//! The partitioning pass and its `stitch` inverse.
//!
//! A validated netlist is carved into `parts` sub-netlists that share
//! the parent's net-id space (stranded unused ids are legal in a
//! validated netlist, so no renumbering happens anywhere). The cut
//! legality rule is the one that makes cycle-accurate distributed
//! execution cheap: **every net crossing a shard boundary must be
//! driven by a register, a constant, or a primary input** — never by
//! ordinary combinational logic. Register outputs only change on the
//! clock edge, so one boundary-value exchange per virtual cycle
//! reproduces the monolithic machine bit-for-bit; a combinational
//! boundary would need a fixpoint exchange *within* every cycle.
//!
//! The pass therefore:
//!
//! 1. groups combinational cells into **clusters** with a union-find —
//!    a comb-driven net welds its driver to every reader (constants
//!    are exempt: they adapt to any stage, and gluing through shared
//!    `gnd`/`vcc` would collapse the whole graph into one cluster);
//! 2. orders clusters by the pipeline-stage potentials of
//!    [`dwt_lint::balance::net_stages`] — the L004 balance solver — so
//!    cut points fall between the paper's pipeline stages (falling
//!    back to cell order when no consistent schedule exists);
//! 3. splits the cluster chain into `parts` contiguous groups with a
//!    dynamic program that **minimizes crossing bits** subject to a
//!    cell-count balance cap;
//! 4. emits per-shard [`Netlist`]s: every cut register/constant output
//!    bus becomes a `__cut_c<id>` output port on the producer shard
//!    and a same-named input port on each consumer shard, plus a
//!    deterministic per-edge [`BoundaryLink`] exchange schedule.
//!
//! [`stitch`] is the exact inverse: it reassembles the original
//! netlist from the shards alone (cells back at their original ids,
//! `__cut` ports dropped, primary ports merged) and revalidates. The
//! equivalence obligation `stitch(partition(n)) == n` is enforced
//! structurally here and proven by SAT in `dwt-equiv`.

use std::collections::{BTreeMap, BTreeSet};

use dwt_lint::balance;
use dwt_lint::config::LintConfig;
use dwt_rtl::cell::{Cell, CellKind};
use dwt_rtl::net::{Bus, NetId};
use dwt_rtl::netlist::{CellId, Netlist, Port, PortDirection};

use crate::error::PartitionError;

/// Options for [`partition`].
#[derive(Debug, Clone)]
pub struct CutOptions {
    /// Cell-count balance slack: a shard may hold at most
    /// `ceil(total / parts) * (1 + balance_tolerance)` cells. The cap
    /// is relaxed (doubled) automatically if the cluster sizes make it
    /// infeasible.
    pub balance_tolerance: f64,
    /// Configuration handed to the L004 balance solver that pins cut
    /// points (exempt ports, expected depth).
    pub lint_config: LintConfig,
}

impl Default for CutOptions {
    fn default() -> Self {
        CutOptions { balance_tolerance: 0.6, lint_config: LintConfig::default() }
    }
}

/// One sub-netlist plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The validated sub-netlist (shares the parent's net-id space).
    pub netlist: Netlist,
    /// Original cell ids, in the order the shard's cell list holds
    /// them — the inverse map `stitch` uses.
    pub cells: Vec<CellId>,
    /// Primary input ports this shard needs fed every cycle.
    pub inputs: Vec<String>,
    /// Primary output ports this shard owns (observes authoritative
    /// values for).
    pub outputs: Vec<String>,
}

/// The per-cycle exchange schedule for one directed shard pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryLink {
    /// Producer shard index.
    pub from: usize,
    /// Consumer shard index.
    pub to: usize,
    /// `__cut` port names carried on this link, in message order.
    pub ports: Vec<String>,
    /// Total bits exchanged per virtual cycle.
    pub bits: usize,
}

/// One cut cell's boundary bundle.
#[derive(Debug, Clone)]
pub struct CutPort {
    /// Shard that owns the driving cell.
    pub producer: usize,
    /// Shards that read the bundle.
    pub consumers: Vec<usize>,
    /// The nets behind the bundle (the cut cell's full output bus).
    pub bus: Bus,
}

/// A netlist split into shards plus everything needed to run — and to
/// reassemble — it.
#[derive(Debug, Clone)]
pub struct PartitionedNetlist {
    /// The original, unsplit netlist (kept for the degradation ladder
    /// and differential checks; `stitch` does not consult it).
    pub original: Netlist,
    /// The shards.
    pub shards: Vec<Shard>,
    /// Directed exchange schedule, sorted by `(from, to)`.
    pub links: Vec<BoundaryLink>,
    /// All cut bundles, keyed by `__cut` port name.
    pub cut_ports: BTreeMap<String, CutPort>,
    /// Primary ports no shard ended up carrying (unread inputs);
    /// `stitch` restores them from here.
    pub unused_ports: BTreeMap<String, Port>,
    /// Whether the L004 schedule pinned the cluster order (`false`
    /// means the cell-order fallback was used).
    pub schedule_pinned: bool,
    /// Shard index of every original cell.
    pub cell_shard: Vec<usize>,
}

impl PartitionedNetlist {
    /// Total boundary bits exchanged per virtual cycle (all links).
    #[must_use]
    pub fn cut_bits(&self) -> usize {
        self.links.iter().map(|l| l.bits).sum()
    }

    /// Number of shards.
    #[must_use]
    pub fn parts(&self) -> usize {
        self.shards.len()
    }

    /// FNV-1a fingerprint of the cut's observable structure: shard
    /// count, per-shard cell counts and port lists, and the full link
    /// schedule.
    ///
    /// A worker process rebuilds its shard independently from
    /// `(design, parts)` command-line arguments; the supervisor
    /// compares fingerprints at admission so a worker launched against
    /// a different design, part count, or partitioner version is
    /// rejected before it can feed wrong boundary values into the
    /// lockstep.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use crate::channel::{fnv1a, hash_seed};
        fn word(h: u64, v: u64) -> u64 {
            fnv1a(h, &v.to_le_bytes())
        }
        fn name(h: u64, s: &str) -> u64 {
            fnv1a(fnv1a(h, s.as_bytes()), &[0])
        }
        let mut h = hash_seed();
        h = word(h, self.shards.len() as u64);
        for shard in &self.shards {
            h = word(h, shard.cells.len() as u64);
            h = word(h, shard.inputs.len() as u64);
            h = word(h, shard.outputs.len() as u64);
        }
        for shard in &self.shards {
            for port in shard.inputs.iter().chain(&shard.outputs) {
                h = name(h, port);
            }
        }
        h = word(h, self.links.len() as u64);
        for link in &self.links {
            h = word(h, link.from as u64);
            h = word(h, link.to as u64);
            h = word(h, link.bits as u64);
            for port in &link.ports {
                h = name(h, port);
            }
        }
        h
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, so cluster identity is
            // stable across runs.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Whether this cell's outputs may legally cross a shard boundary.
fn cut_legal(kind: &CellKind) -> bool {
    matches!(kind, CellKind::Register { .. } | CellKind::Constant { .. })
}

/// The output bus a cut cell exports (registers and constants have
/// exactly one output bus).
fn cut_bus(kind: &CellKind) -> Option<Bus> {
    match kind {
        CellKind::Register { q, .. } => Some(q.clone()),
        CellKind::Constant { out, .. } => Some(out.clone()),
        _ => None,
    }
}

/// Splits `netlist` into `parts` shards. See the module docs for the
/// algorithm.
///
/// # Errors
///
/// * [`PartitionError::BadPartCount`] for `parts == 0`.
/// * [`PartitionError::TooFewClusters`] when the netlist's
///   combinational clusters cannot populate `parts` non-empty shards.
/// * [`PartitionError::Rtl`] if a shard fails re-validation (a bug in
///   the pass, not in the input).
pub fn partition(
    netlist: &Netlist,
    parts: usize,
    opts: &CutOptions,
) -> Result<PartitionedNetlist, PartitionError> {
    if parts == 0 {
        return Err(PartitionError::BadPartCount { parts });
    }
    let n_cells = netlist.cell_count();
    if n_cells == 0 {
        return Err(PartitionError::TooFewClusters { clusters: 0, parts });
    }

    // 1. Clusters: weld comb-driven nets end to end.
    let mut uf = UnionFind::new(n_cells);
    for net in 0..netlist.net_count() {
        let net = NetId::from_index(net);
        let Some(driver) = netlist.driver(net) else { continue };
        if cut_legal(&netlist.cell(driver).kind) {
            continue;
        }
        for &reader in netlist.fanout(net) {
            uf.union(driver.index(), reader.index());
        }
    }
    // Comb-driven bits of one output port must settle in one shard, so
    // the port has a single authoritative observer.
    for port in netlist.ports().values() {
        if port.direction != PortDirection::Output {
            continue;
        }
        let mut first: Option<usize> = None;
        for &bit in port.bus.bits() {
            let Some(driver) = netlist.driver(bit) else { continue };
            if cut_legal(&netlist.cell(driver).kind) {
                continue;
            }
            match first {
                None => first = Some(driver.index()),
                Some(f) => uf.union(f, driver.index()),
            }
        }
    }

    // 2. Order clusters by the L004 stage potentials.
    let stages = balance::net_stages(netlist, &opts.lint_config);
    let schedule_pinned = stages.is_some();
    let mut cluster_of_root: BTreeMap<usize, usize> = BTreeMap::new();
    let mut clusters: Vec<Vec<CellId>> = Vec::new();
    for i in 0..n_cells {
        let root = uf.find(i);
        let slot = *cluster_of_root.entry(root).or_insert_with(|| {
            clusters.push(Vec::new());
            clusters.len() - 1
        });
        clusters[slot].push(CellId::from_index(i));
    }
    if clusters.len() < parts {
        return Err(PartitionError::TooFewClusters { clusters: clusters.len(), parts });
    }
    let cluster_key = |cluster: &[CellId]| -> (i64, usize) {
        let stage = stages
            .as_ref()
            .and_then(|s| {
                cluster
                    .iter()
                    .flat_map(|&id| netlist.cell(id).kind.output_nets())
                    .filter_map(|net| s[net.index()])
                    .min()
            })
            .unwrap_or(i64::MAX);
        let first_cell = cluster.first().map_or(usize::MAX, |c| c.index());
        (stage, first_cell)
    };
    clusters.sort_by_key(|c| cluster_key(c));

    // 3. Pairwise crossing weights between clusters: one unit per
    // (boundary net, reading cluster) pair — the bits a cut between
    // the two would exchange every cycle.
    let m = clusters.len();
    let mut cluster_of_cell = vec![0usize; n_cells];
    for (ci, cluster) in clusters.iter().enumerate() {
        for &id in cluster {
            cluster_of_cell[id.index()] = ci;
        }
    }
    let mut weight = vec![vec![0u64; m]; m];
    for net in 0..netlist.net_count() {
        let net = NetId::from_index(net);
        let Some(driver) = netlist.driver(net) else { continue };
        let from = cluster_of_cell[driver.index()];
        let mut readers: BTreeSet<usize> =
            netlist.fanout(net).iter().map(|&r| cluster_of_cell[r.index()]).collect();
        readers.remove(&from);
        for to in readers {
            weight[from][to] += 1;
        }
    }

    // 4. Contiguous min-cut DP, maximizing kept (intra-group) weight
    // under a balance cap; the cap relaxes if cluster granularity
    // makes it infeasible.
    let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
    let total: usize = sizes.iter().sum();
    let mut cap =
        (((total as f64) / (parts as f64)).ceil() * (1.0 + opts.balance_tolerance)).ceil() as usize;
    let boundaries = loop {
        if let Some(b) = chain_split(&weight, &sizes, parts, cap) {
            break b;
        }
        if cap >= total {
            return Err(PartitionError::UnbalancedCut {
                detail: format!("no {parts}-way split of {m} clusters exists"),
            });
        }
        cap = (cap * 2).min(total);
    };

    let mut cell_shard = vec![0usize; n_cells];
    let mut shard_cells: Vec<Vec<CellId>> = vec![Vec::new(); parts];
    for (g, window) in boundaries.windows(2).enumerate() {
        for cluster in &clusters[window[0]..window[1]] {
            for &id in cluster {
                cell_shard[id.index()] = g;
            }
        }
    }
    for i in 0..n_cells {
        shard_cells[cell_shard[i]].push(CellId::from_index(i));
    }

    build_shards(netlist, parts, cell_shard, shard_cells, schedule_pinned)
}

/// Splits the cluster chain `0..m` into `parts` non-empty contiguous
/// groups of size ≤ `cap`, maximizing intra-group weight. Returns the
/// `parts + 1` boundary indices, or `None` if infeasible.
#[allow(clippy::needless_range_loop)] // index-coupled DP over two matrices
fn chain_split(
    weight: &[Vec<u64>],
    sizes: &[usize],
    parts: usize,
    cap: usize,
) -> Option<Vec<usize>> {
    let m = sizes.len();
    // intra[j][i] = weight kept when clusters j..i form one group.
    // Built incrementally: intra[j][i] = intra[j][i-1] + cross(j..i-1, i-1).
    let mut intra = vec![vec![0u64; m + 1]; m + 1];
    for j in 0..m {
        for i in j + 1..=m {
            let newest = i - 1;
            let mut gain = 0;
            for other in j..newest {
                gain += weight[other][newest] + weight[newest][other];
            }
            intra[j][i] = intra[j][i - 1] + gain;
        }
    }
    let group_size: Vec<usize> = {
        let mut prefix = vec![0usize; m + 1];
        for (i, &s) in sizes.iter().enumerate() {
            prefix[i + 1] = prefix[i] + s;
        }
        prefix
    };
    let fits = |j: usize, i: usize| group_size[i] - group_size[j] <= cap;

    // best[k][i]: max kept weight for first i clusters in k groups.
    let mut best = vec![vec![None::<u64>; m + 1]; parts + 1];
    let mut back = vec![vec![0usize; m + 1]; parts + 1];
    best[0][0] = Some(0);
    for k in 1..=parts {
        for i in k..=m {
            for j in k - 1..i {
                let Some(prev) = best[k - 1][j] else { continue };
                if !fits(j, i) {
                    continue;
                }
                let cand = prev + intra[j][i];
                if best[k][i].is_none_or(|b| cand > b) {
                    best[k][i] = Some(cand);
                    back[k][i] = j;
                }
            }
        }
    }
    best[parts][m]?;
    let mut bounds = vec![m];
    let mut i = m;
    for k in (1..=parts).rev() {
        i = back[k][i];
        bounds.push(i);
    }
    bounds.reverse();
    Some(bounds)
}

/// Emits the per-shard netlists, boundary ports and exchange links for
/// a fixed cell→shard assignment.
fn build_shards(
    netlist: &Netlist,
    parts: usize,
    cell_shard: Vec<usize>,
    shard_cells: Vec<Vec<CellId>>,
    schedule_pinned: bool,
) -> Result<PartitionedNetlist, PartitionError> {
    // Who owns each primary output port: the shard holding a comb
    // driver of any bit (unique by construction), else the shard of
    // the first cell-driven bit, else shard 0 (pure input pass-through).
    let mut output_owner: BTreeMap<&str, usize> = BTreeMap::new();
    for port in netlist.ports().values() {
        if port.direction != PortDirection::Output {
            continue;
        }
        let mut owner = None;
        for &bit in port.bus.bits() {
            let Some(driver) = netlist.driver(bit) else { continue };
            let shard = cell_shard[driver.index()];
            if !cut_legal(&netlist.cell(driver).kind) {
                owner = Some(shard);
                break;
            }
            owner.get_or_insert(shard);
        }
        output_owner.insert(port.name.as_str(), owner.unwrap_or(0));
    }

    // External readers of each cut-legal cell: shards (other than the
    // producer's) that read any of its output nets, through cells or
    // through owned output ports.
    let mut ext_readers: BTreeMap<CellId, BTreeSet<usize>> = BTreeMap::new();
    for net in 0..netlist.net_count() {
        let net = NetId::from_index(net);
        let Some(driver) = netlist.driver(net) else { continue };
        if !cut_legal(&netlist.cell(driver).kind) {
            continue;
        }
        let home = cell_shard[driver.index()];
        for &reader in netlist.fanout(net) {
            let shard = cell_shard[reader.index()];
            if shard != home {
                ext_readers.entry(driver).or_default().insert(shard);
            }
        }
        for port in netlist.ports().values() {
            if port.direction == PortDirection::Output && port.bus.bits().contains(&net) {
                let owner = output_owner[port.name.as_str()];
                if owner != home {
                    ext_readers.entry(driver).or_default().insert(owner);
                }
            }
        }
    }

    let cut_name = |id: CellId| format!("__cut_c{}", id.index());
    let mut cut_ports: BTreeMap<String, CutPort> = BTreeMap::new();
    for (&cell, readers) in &ext_readers {
        let bus =
            cut_bus(&netlist.cell(cell).kind).expect("ext_readers only holds cut-legal cells");
        cut_ports.insert(
            cut_name(cell),
            CutPort {
                producer: cell_shard[cell.index()],
                consumers: readers.iter().copied().collect(),
                bus,
            },
        );
    }

    // Assemble each shard's cell list and port map.
    let mut shards = Vec::with_capacity(parts);
    let mut used_primary: BTreeSet<&str> = BTreeSet::new();
    for (s, members) in shard_cells.iter().enumerate() {
        let cells: Vec<Cell> = members.iter().map(|&id| netlist.cell(id).clone()).collect();
        let mut read_nets: BTreeSet<NetId> = BTreeSet::new();
        for cell in &cells {
            read_nets.extend(cell.kind.input_nets());
        }
        let mut ports: BTreeMap<String, Port> = BTreeMap::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        // Owned primary outputs (their bits count as reads: a remote
        // register feeding an owned output still needs its cut bundle).
        for port in netlist.ports().values() {
            if port.direction == PortDirection::Output && output_owner[port.name.as_str()] == s {
                read_nets.extend(port.bus.bits().iter().copied());
                ports.insert(port.name.clone(), port.clone());
                outputs.push(port.name.clone());
                used_primary.insert(port.name.as_str());
            }
        }
        // Primary inputs any of those reads touch.
        for port in netlist.ports().values() {
            if port.direction == PortDirection::Input
                && port.bus.bits().iter().any(|b| read_nets.contains(b))
            {
                ports.insert(port.name.clone(), port.clone());
                inputs.push(port.name.clone());
                used_primary.insert(port.name.as_str());
            }
        }
        // Cut bundles: exported by the producer, imported by consumers.
        for (name, cut) in &cut_ports {
            let direction = if cut.producer == s {
                PortDirection::Output
            } else if cut.consumers.contains(&s) {
                PortDirection::Input
            } else {
                continue;
            };
            ports
                .insert(name.clone(), Port { name: name.clone(), direction, bus: cut.bus.clone() });
        }
        let sub = Netlist::from_parts(cells, netlist.net_count() as u32, ports)?;
        shards.push(Shard { netlist: sub, cells: members.clone(), inputs, outputs });
    }

    // Deterministic per-edge schedule: ports in name order.
    let mut links: Vec<BoundaryLink> = Vec::new();
    for (name, cut) in &cut_ports {
        for &to in &cut.consumers {
            let from = cut.producer;
            match links.iter_mut().find(|l| l.from == from && l.to == to) {
                Some(link) => {
                    link.ports.push(name.clone());
                    link.bits += cut.bus.width();
                }
                None => links.push(BoundaryLink {
                    from,
                    to,
                    ports: vec![name.clone()],
                    bits: cut.bus.width(),
                }),
            }
        }
    }
    links.sort_by_key(|l| (l.from, l.to));

    let unused_ports: BTreeMap<String, Port> = netlist
        .ports()
        .iter()
        .filter(|(name, _)| !used_primary.contains(name.as_str()))
        .map(|(name, port)| (name.clone(), port.clone()))
        .collect();

    Ok(PartitionedNetlist {
        original: netlist.clone(),
        shards,
        links,
        cut_ports,
        unused_ports,
        schedule_pinned,
        cell_shard,
    })
}

/// Reassembles the original netlist from the shards alone: cells back
/// at their original ids, `__cut` ports dropped, primary ports merged
/// (plus any recorded unused ports), then full re-validation.
///
/// # Errors
///
/// * [`PartitionError::StitchMismatch`] if the shards do not cover
///   every original cell exactly once, or merge conflicting primary
///   ports.
/// * [`PartitionError::Rtl`] if the reassembled graph fails
///   validation.
pub fn stitch(parts: &PartitionedNetlist) -> Result<Netlist, PartitionError> {
    let n_cells = parts.cell_shard.len();
    let mut cells: Vec<Option<Cell>> = vec![None; n_cells];
    for shard in &parts.shards {
        if shard.cells.len() != shard.netlist.cell_count() {
            return Err(PartitionError::StitchMismatch {
                detail: format!(
                    "shard id map covers {} cells but the netlist holds {}",
                    shard.cells.len(),
                    shard.netlist.cell_count()
                ),
            });
        }
        for (local, &orig) in shard.cells.iter().enumerate() {
            let slot =
                cells.get_mut(orig.index()).ok_or_else(|| PartitionError::StitchMismatch {
                    detail: format!("cell id {} out of range", orig.index()),
                })?;
            if slot.is_some() {
                return Err(PartitionError::StitchMismatch {
                    detail: format!("cell id {} appears in two shards", orig.index()),
                });
            }
            *slot = Some(shard.netlist.cells()[local].clone());
        }
    }
    let cells: Vec<Cell> = cells
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            c.ok_or_else(|| PartitionError::StitchMismatch {
                detail: format!("cell id {i} missing from every shard"),
            })
        })
        .collect::<Result<_, _>>()?;

    let mut ports: BTreeMap<String, Port> = parts.unused_ports.clone();
    for shard in &parts.shards {
        for (name, port) in shard.netlist.ports() {
            if name.starts_with("__cut_") {
                continue;
            }
            match ports.get(name) {
                Some(existing) if existing != port => {
                    return Err(PartitionError::StitchMismatch {
                        detail: format!("port '{name}' differs between shards"),
                    });
                }
                Some(_) => {}
                None => {
                    ports.insert(name.clone(), port.clone());
                }
            }
        }
    }

    let net_count = parts.original.net_count() as u32;
    Ok(Netlist::from_parts(cells, net_count, ports)?)
}

#[cfg(test)]
mod tests {
    use dwt_rtl::builder::NetlistBuilder;

    use super::*;

    /// A 4-stage pipeline: x -> (+1) -> r1 -> (+1) -> r2 -> ... -> y.
    fn pipeline(stages: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let one = b.constant(1, 8).unwrap();
        let mut bus = b.input("x", 8).unwrap();
        for s in 0..stages {
            let sum = b.carry_add(&format!("add{s}"), &bus, &one, 8).unwrap();
            bus = b.register(&format!("r{s}"), &sum).unwrap();
        }
        b.output("y", &bus).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn pipeline_splits_on_register_boundaries() {
        let netlist = pipeline(4);
        let cut = partition(&netlist, 2, &CutOptions::default()).unwrap();
        assert_eq!(cut.parts(), 2);
        assert!(cut.schedule_pinned);
        // Every boundary bundle is a register or constant output.
        for port in cut.cut_ports.values() {
            let driver = netlist.driver(port.bus.bit(0)).unwrap();
            assert!(cut_legal(&netlist.cell(driver).kind));
        }
        // Both shards validate and are non-empty.
        for shard in &cut.shards {
            assert!(shard.netlist.cell_count() > 0);
        }
        assert!(cut.cut_bits() > 0);
    }

    #[test]
    fn stitch_is_the_exact_inverse() {
        let netlist = pipeline(5);
        for parts in [1, 2, 3] {
            let cut = partition(&netlist, parts, &CutOptions::default()).unwrap();
            let back = stitch(&cut).unwrap();
            assert_eq!(back, netlist, "stitch(partition({parts})) != original");
        }
    }

    #[test]
    fn too_many_parts_is_a_typed_error() {
        let mut b = NetlistBuilder::new();
        let x = b.input("x", 4).unwrap();
        let r = b.register("r", &x).unwrap();
        b.output("y", &r).unwrap();
        let netlist = b.finish().unwrap();
        assert!(matches!(
            partition(&netlist, 9, &CutOptions::default()),
            Err(PartitionError::TooFewClusters { .. })
        ));
        assert!(matches!(
            partition(&netlist, 0, &CutOptions::default()),
            Err(PartitionError::BadPartCount { parts: 0 })
        ));
    }

    #[test]
    fn exchange_schedule_is_deterministic_and_covers_all_cuts() {
        let netlist = pipeline(6);
        let a = partition(&netlist, 3, &CutOptions::default()).unwrap();
        let b = partition(&netlist, 3, &CutOptions::default()).unwrap();
        let sched_a: Vec<_> = a.links.iter().map(|l| (l.from, l.to, l.ports.clone())).collect();
        let sched_b: Vec<_> = b.links.iter().map(|l| (l.from, l.to, l.ports.clone())).collect();
        assert_eq!(sched_a, sched_b);
        let on_links: usize = a.links.iter().map(|l| l.ports.len()).sum();
        let expected: usize = a.cut_ports.values().map(|c| c.consumers.len()).sum();
        assert_eq!(on_links, expected);
    }

    #[test]
    fn single_part_needs_no_boundary() {
        let netlist = pipeline(3);
        let cut = partition(&netlist, 1, &CutOptions::default()).unwrap();
        assert_eq!(cut.cut_bits(), 0);
        assert!(cut.cut_ports.is_empty());
        assert_eq!(stitch(&cut).unwrap(), netlist);
    }
}
