//! Fault-tolerant partitioned emulation of DWT netlists.
//!
//! Large-design emulators (BEE2-style FPGA farms, Palladium-class
//! boxes) never fit a design in one device: the netlist is *sharded*
//! across workers that exchange boundary values every virtual cycle,
//! and the whole ensemble must tolerate a worker crashing mid-frame
//! without corrupting the computation. This crate reproduces that
//! architecture in software on top of the workspace's [`Engine`]
//! backends:
//!
//! 1. [`cut`] — a min-cut partitioning pass over the validated
//!    netlist IR. Cuts are only legal on register/constant boundaries
//!    (dwt-lint's pipeline-balance solver pins the legal cut points),
//!    so cross-shard values are stable for a full cycle and one
//!    exchange round per cycle suffices. [`stitch`] is the exact
//!    inverse, reassembling the original netlist — dwt-equiv proves
//!    `stitch(partition(n)) ≡ n` as a standing obligation.
//! 2. [`channel`] — the sequence-numbered, checksummed wire format
//!    plus per-link running hashes for barrier crosschecks.
//! 3. [`runner`] — the multi-threaded [`PartitionRunner`]: one
//!    [`Engine`] per worker, lockstep boundary exchange, barrier-
//!    consistent snapshots every N cycles, divergence/straggler/crash
//!    detection, and recovery by restart-from-snapshot + replay. When
//!    the recovery budget is exhausted the runner degrades to a
//!    single-engine run, then to a caller-supplied software-golden
//!    fallback, before giving up with a typed error.
//!
//! [`Engine`]: dwt_rtl::engine::Engine

pub mod channel;
pub mod cut;
pub mod error;
pub mod proc;
pub mod runner;
pub mod store;
pub mod transport;
pub mod wire;

pub use channel::{fnv1a, hash_seed, BoundaryMsg, LinkFault};
pub use cut::{partition, stitch, BoundaryLink, CutOptions, CutPort, PartitionedNetlist, Shard};
pub use error::PartitionError;
pub use proc::{
    run_worker, ProcChaos, ProcConfig, ProcReport, ProcSupervisor, WorkerConfig, WorkerLauncher,
    WorkerSpec,
};
pub use runner::{
    run_single, ChaosPlan, Corruption, Detection, DetectionKind, FrameOutputs, FrameReport,
    GoldenFallback, PartitionRunner, Rung, RunnerConfig, SeuChaos, Stimulus,
};
pub use store::{crc32, BarrierRecord, FsckReport, RunStore, WorkerBlob};
pub use transport::{ChannelTransport, RecvError, SocketTransport, Transport};
pub use wire::Frame;
