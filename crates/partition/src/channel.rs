//! The boundary-exchange wire format: sequence-numbered, checksummed
//! per-cycle messages, plus the running per-link hash the barrier
//! crosschecks.
//!
//! Integrity is layered. The **checksum** on each message catches
//! payload corruption in flight immediately at the consumer. The
//! **sequence number** catches dropped, duplicated or reordered
//! messages. Neither catches a corruption that rewrites the checksum
//! to match (or a worker whose *state* silently diverged) — that is
//! what the per-link **running hashes** are for: producer and consumer
//! fold every message they send/receive into an FNV-1a accumulator,
//! and the coordinator crosschecks the two ends of every link at each
//! barrier. A mismatch means the two workers did not see the same
//! stream, and the frame rolls back to the last consistent snapshot.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds bytes into an FNV-1a accumulator.
#[must_use]
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The initial accumulator value for both checksums and link hashes.
#[must_use]
pub fn hash_seed() -> u64 {
    FNV_OFFSET
}

fn fold_values(mut hash: u64, seq: u64, cycle: u64, values: &[i64]) -> u64 {
    hash = fnv1a(hash, &seq.to_le_bytes());
    hash = fnv1a(hash, &cycle.to_le_bytes());
    for v in values {
        hash = fnv1a(hash, &v.to_le_bytes());
    }
    hash
}

/// One boundary-value message: the settled post-edge values of every
/// `__cut` port on one link, for one virtual cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryMsg {
    /// Per-link sequence number (0-based from worker spawn; the
    /// prologue exchange is seq 0).
    pub seq: u64,
    /// Virtual cycle the values belong to.
    pub cycle: u64,
    /// Port values in the link's schedule order.
    pub values: Vec<i64>,
    /// FNV-1a over `(seq, cycle, values)`.
    pub checksum: u64,
}

impl BoundaryMsg {
    /// Builds a message with a valid checksum.
    #[must_use]
    pub fn new(seq: u64, cycle: u64, values: Vec<i64>) -> BoundaryMsg {
        let checksum = fold_values(hash_seed(), seq, cycle, &values);
        BoundaryMsg { seq, cycle, values, checksum }
    }

    /// Recomputes and compares the checksum.
    ///
    /// # Errors
    ///
    /// Returns [`LinkFault::Checksum`] on mismatch.
    pub fn verify(&self, expected_seq: u64) -> Result<(), LinkFault> {
        if self.seq != expected_seq {
            return Err(LinkFault::Sequence { expected: expected_seq, got: self.seq });
        }
        let fresh = fold_values(hash_seed(), self.seq, self.cycle, &self.values);
        if fresh != self.checksum {
            return Err(LinkFault::Checksum { seq: self.seq });
        }
        Ok(())
    }

    /// Folds this message into a per-link running hash (used
    /// identically by sender and receiver, so the barrier can
    /// crosscheck the two ends).
    #[must_use]
    pub fn fold_into(&self, hash: u64) -> u64 {
        fold_values(hash, self.seq, self.cycle, &self.values)
    }
}

/// What went wrong on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Payload does not match its checksum.
    Checksum {
        /// Sequence number of the corrupt message.
        seq: u64,
    },
    /// A message arrived out of order (dropped or duplicated).
    Sequence {
        /// The sequence number the consumer expected.
        expected: u64,
        /// The one that arrived.
        got: u64,
    },
    /// The producer's channel disconnected (worker crashed).
    Disconnected,
    /// No message within the watchdog window (worker straggling).
    Timeout,
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkFault::Checksum { seq } => write!(f, "checksum mismatch at seq {seq}"),
            LinkFault::Sequence { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            LinkFault::Disconnected => write!(f, "producer disconnected"),
            LinkFault::Timeout => write!(f, "watchdog timeout"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_round_trips() {
        let msg = BoundaryMsg::new(7, 42, vec![-5, 0, 1 << 40]);
        assert_eq!(msg.verify(7), Ok(()));
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut msg = BoundaryMsg::new(0, 0, vec![1, 2, 3]);
        msg.values[1] ^= 1;
        assert_eq!(msg.verify(0), Err(LinkFault::Checksum { seq: 0 }));
    }

    #[test]
    fn sequence_gap_is_detected() {
        let msg = BoundaryMsg::new(5, 9, vec![0]);
        assert_eq!(msg.verify(4), Err(LinkFault::Sequence { expected: 4, got: 5 }));
    }

    #[test]
    fn stealth_corruption_diverges_the_link_hashes() {
        // A corruption that rewrites the checksum passes verify() but
        // cannot make the producer's and consumer's running hashes
        // agree.
        let sent = BoundaryMsg::new(0, 0, vec![10, 20]);
        let received = BoundaryMsg::new(0, 0, vec![10, 21]);
        assert_eq!(received.verify(0), Ok(()));
        assert_ne!(sent.fold_into(hash_seed()), received.fold_into(hash_seed()));
    }
}
