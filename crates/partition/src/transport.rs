//! Frame transports: how [`Frame`]s move between the lockstep
//! coordinator and its workers.
//!
//! The protocol layer ([`wire`](crate::wire)) defines *what* travels;
//! this module defines *how*. Two implementations share the
//! [`Transport`] trait:
//!
//! * [`ChannelTransport`] — in-process `mpsc` channels carrying
//!   encoded frame bytes. Thread-mode boundary links use this, so
//!   every frame still round-trips through the full byte codec —
//!   the differential suite exercises the wire format on every run,
//!   not only when a process campaign happens to be running.
//! * [`SocketTransport`] — a Unix-domain stream socket to another
//!   process. Reads are deadline-bounded and reassemble frames from
//!   the byte stream (partial reads are normal under timeouts); a
//!   closed peer surfaces as [`RecvError::Disconnected`], exactly
//!   like a dropped channel.
//!
//! Both ends treat malformed bytes as a protocol fault, not a crash:
//! [`RecvError::Protocol`] carries the typed decode error upward where
//! the coordinator converts it into a detection and a rollback.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use crate::error::PartitionError;
use crate::wire::{header_payload_len, Frame, CHECKSUM_LEN, HEADER_LEN};

/// Why a receive produced no frame.
#[derive(Debug)]
pub enum RecvError {
    /// No complete frame arrived within the deadline.
    Timeout,
    /// The peer is gone (channel dropped, socket closed or reset).
    Disconnected,
    /// Bytes arrived but failed to decode as a frame.
    Protocol(PartitionError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "peer disconnected"),
            RecvError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

/// A bidirectional, ordered, frame-at-a-time pipe to a peer.
pub trait Transport: Send {
    /// Encodes and sends one frame.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Transport`] when the peer is unreachable.
    fn send(&mut self, frame: &Frame) -> Result<(), PartitionError>;

    /// Receives the next frame, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing complete arrived in time,
    /// [`RecvError::Disconnected`] if the peer is gone,
    /// [`RecvError::Protocol`] if the peer sent malformed bytes.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, RecvError>;
}

// ------------------------------------------------------------ channels

/// In-process transport: encoded frame bytes over `mpsc` channels.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// A connected pair of endpoints (full duplex: two crossed
    /// channels).
    #[must_use]
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (ChannelTransport { tx: a_tx, rx: a_rx }, ChannelTransport { tx: b_tx, rx: b_rx })
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), PartitionError> {
        self.tx
            .send(frame.encode())
            .map_err(|_| PartitionError::Transport { detail: "channel closed".into() })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, RecvError> {
        let bytes = match self.rx.recv_timeout(timeout) {
            Ok(bytes) => bytes,
            Err(RecvTimeoutError::Timeout) => return Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(RecvError::Disconnected),
        };
        Frame::decode(&bytes).map_err(RecvError::Protocol)
    }
}

// ------------------------------------------------------------- sockets

/// Cross-process transport: frames over a Unix-domain stream socket.
///
/// The receive side buffers partial frames across calls, so a slow
/// writer (or a deadline that expires mid-frame) never corrupts frame
/// boundaries: the next call resumes where the stream left off.
#[derive(Debug)]
pub struct SocketTransport {
    stream: UnixStream,
    /// Bytes received but not yet consumed as a complete frame.
    pending: Vec<u8>,
}

impl SocketTransport {
    /// Wraps a connected stream.
    #[must_use]
    pub fn new(stream: UnixStream) -> Self {
        SocketTransport { stream, pending: Vec::new() }
    }

    /// A connected in-process pair, for tests.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Transport`] if the socketpair syscall fails.
    pub fn pair() -> Result<(SocketTransport, SocketTransport), PartitionError> {
        let (a, b) =
            UnixStream::pair().map_err(|e| PartitionError::Transport { detail: e.to_string() })?;
        Ok((SocketTransport::new(a), SocketTransport::new(b)))
    }

    /// Whether `pending` holds at least one complete frame, and its
    /// total length if so.
    fn complete_frame_len(&self) -> Result<Option<usize>, PartitionError> {
        if self.pending.len() < HEADER_LEN {
            return Ok(None);
        }
        let payload_len = header_payload_len(&self.pending)?;
        let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
        Ok(if self.pending.len() >= total { Some(total) } else { None })
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), PartitionError> {
        self.stream
            .write_all(&frame.encode())
            .and_then(|()| self.stream.flush())
            .map_err(|e| PartitionError::Transport { detail: e.to_string() })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            // Header validation errors (bad magic, absurd length) are
            // unrecoverable for a byte stream — framing is lost.
            match self.complete_frame_len().map_err(RecvError::Protocol)? {
                Some(total) => {
                    let frame_bytes: Vec<u8> = self.pending.drain(..total).collect();
                    return Frame::decode(&frame_bytes).map_err(RecvError::Protocol);
                }
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvError::Timeout);
                    }
                    // Never Some(0): that disables the timeout.
                    let _ = self.stream.set_read_timeout(Some(deadline - now));
                    let mut chunk = [0u8; 4096];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => return Err(RecvError::Disconnected),
                        Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            return Err(RecvError::Timeout)
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => return Err(RecvError::Disconnected),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::BoundaryMsg;

    fn boundary(seq: u64) -> Frame {
        Frame::Boundary { generation: 1, link: 0, msg: BoundaryMsg::new(seq, seq, vec![-7, 9]) }
    }

    #[test]
    fn channel_transport_round_trips_frames() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(&boundary(0)).unwrap();
        a.send(&Frame::Shutdown).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), boundary(0));
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), Frame::Shutdown);
        b.send(&boundary(5)).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(1)).unwrap(), boundary(5));
        assert!(matches!(a.recv_timeout(Duration::from_millis(10)), Err(RecvError::Timeout)));
        drop(b);
        assert!(matches!(a.recv_timeout(Duration::from_millis(10)), Err(RecvError::Disconnected)));
    }

    #[test]
    fn socket_transport_round_trips_and_reassembles_split_frames() {
        let (mut a, mut b) = SocketTransport::pair().unwrap();
        for seq in 0..5 {
            a.send(&boundary(seq)).unwrap();
        }
        for seq in 0..5 {
            assert_eq!(b.recv_timeout(Duration::from_secs(2)).unwrap(), boundary(seq));
        }

        // Split one frame across two raw writes with a pause; the
        // reader must reassemble it, not tear it.
        let bytes = boundary(99).encode();
        let (head, tail) = bytes.split_at(7);
        let tail = tail.to_vec();
        let mut raw = a.stream.try_clone().unwrap();
        raw.write_all(head).unwrap();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            raw.write_all(&tail).unwrap();
        });
        assert_eq!(b.recv_timeout(Duration::from_secs(2)).unwrap(), boundary(99));
        writer.join().unwrap();
    }

    #[test]
    fn socket_transport_times_out_and_detects_disconnect() {
        let (mut a, b) = SocketTransport::pair().unwrap();
        assert!(matches!(a.recv_timeout(Duration::from_millis(20)), Err(RecvError::Timeout)));
        drop(b);
        assert!(matches!(a.recv_timeout(Duration::from_millis(20)), Err(RecvError::Disconnected)));
        assert!(matches!(a.send(&Frame::Shutdown), Err(PartitionError::Transport { .. })));
    }

    #[test]
    fn socket_transport_reports_garbage_as_protocol_error() {
        let (a, mut b) = SocketTransport::pair().unwrap();
        let mut raw = a.stream.try_clone().unwrap();
        raw.write_all(b"NOTAFRAMEATALL").unwrap();
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(200)),
            Err(RecvError::Protocol(PartitionError::Protocol { .. }))
        ));

        // A checksum-corrupted but well-framed message is also typed.
        let (c, mut d) = SocketTransport::pair().unwrap();
        let mut bytes = boundary(3).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut raw = c.stream.try_clone().unwrap();
        raw.write_all(&bytes).unwrap();
        assert!(matches!(
            d.recv_timeout(Duration::from_millis(200)),
            Err(RecvError::Protocol(PartitionError::Protocol { .. }))
        ));
    }
}
