//! Durable barrier snapshots: the crash-consistent store behind the
//! process supervisor.
//!
//! Thread-mode recovery keeps its barrier snapshots in the
//! coordinator's memory — fine when the coordinator cannot die
//! independently of the workers. Process mode has a harder contract:
//! the **supervisor itself** may be killed between barriers, and a
//! restarted supervisor must resume from the last durable barrier
//! instead of cycle 0. This module is that durability layer.
//!
//! One barrier = one file, `barrier-<cycle, hex>.dwtb`, written with
//! the classic crash-safe dance: write to a `.tmp` sibling, `fsync`
//! the file, atomically rename over the final name, `fsync` the
//! directory. A record is either fully present under its final name
//! or does not exist; a torn write can only ever leave a `.tmp`
//! corpse, which the scanner ignores.
//!
//! Inside a record, each section (meta, worker blobs, committed output
//! prefix) is CRC32-framed — length prefix, payload, IEEE CRC32 — so
//! truncation and bit rot are both detected. [`RunStore::latest_consistent`]
//! walks records newest-first and returns the first one that passes
//! every check, which makes corruption of the newest barrier a
//! *bounded rollback*, not a failure: the supervisor just resumes one
//! barrier earlier. [`RunStore::fsck`] reports the full
//! consistent/corrupt census for diagnostics and tests.
//!
//! Records carry the committed output prefix in full, so resuming
//! needs exactly one readable record — no replay across files, no
//! dependency on older barriers (which [`RunStore::prune`] deletes).

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::error::PartitionError;
use crate::wire::{Reader, Writer};

/// Record file magic.
pub const STORE_MAGIC: [u8; 4] = *b"DWTS";
/// Record layout version; bump on any change.
pub const STORE_VERSION: u8 = 1;

const RECORD_EXT: &str = "dwtb";

/// IEEE CRC32 (reflected, polynomial `0xEDB88320`), bitwise — the
/// store's integrity check is not on any hot path.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// One worker's durable state at a barrier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerBlob {
    /// Portable engine snapshot bytes
    /// ([`PortableSnapshot::to_bytes`](dwt_rtl::engine::PortableSnapshot::to_bytes)).
    pub snapshot: Vec<u8>,
    /// `(seq, running hash)` per outgoing link, in link order.
    pub out_links: Vec<(u64, u64)>,
    /// `(seq, running hash)` per incoming link, in link order.
    pub in_links: Vec<(u64, u64)>,
}

/// Everything needed to resume a run from one barrier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BarrierRecord {
    /// Virtual cycle the barrier committed through (exclusive: the
    /// next batch starts here).
    pub cycle: u64,
    /// Cut fingerprint of the partition the snapshots belong to; a
    /// resume against a different cut must be refused.
    pub fingerprint: u64,
    /// Per-worker snapshots and link state, indexed by shard.
    pub workers: Vec<WorkerBlob>,
    /// The full committed output prefix, cycles `0..cycle` per port.
    pub outputs: BTreeMap<String, Vec<i64>>,
}

/// Census of a store directory.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Barrier cycles whose records pass every integrity check,
    /// ascending.
    pub consistent: Vec<u64>,
    /// `(file name, what failed)` for every unreadable record.
    pub corrupt: Vec<(String, String)>,
}

fn store_err(detail: impl Into<String>) -> PartitionError {
    PartitionError::Store { detail: detail.into() }
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> PartitionError {
    store_err(format!("{what} {}: {e}", path.display()))
}

/// The on-disk barrier store for one emulation run.
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Store`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<RunStore, PartitionError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        Ok(RunStore { dir })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_path(&self, cycle: u64) -> PathBuf {
        self.dir.join(format!("barrier-{cycle:016x}.{RECORD_EXT}"))
    }

    /// Durably writes one barrier record: tmp file, fsync, atomic
    /// rename, directory fsync. Returns the final path.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Store`] on any I/O failure.
    pub fn save(&self, record: &BarrierRecord) -> Result<PathBuf, PartitionError> {
        let bytes = encode_record(record);
        let path = self.record_path(record.cycle);
        let tmp = path.with_extension("tmp");
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("open", &tmp, &e))?;
            file.write_all(&bytes).map_err(|e| io_err("write", &tmp, &e))?;
            file.sync_all().map_err(|e| io_err("fsync", &tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, &e))?;
        // Persist the rename itself; without this a supervisor crash
        // right after `save` could resurface an empty directory.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(path)
    }

    /// Loads and fully verifies one barrier record file.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Store`] for I/O failures, truncation, CRC
    /// mismatches, or version/magic mismatches.
    pub fn load(&self, path: &Path) -> Result<BarrierRecord, PartitionError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err("read", path, &e))?;
        decode_record(&bytes)
    }

    /// Barrier record paths present under their final names,
    /// ascending by cycle.
    fn record_paths(&self) -> Result<Vec<(u64, PathBuf)>, PartitionError> {
        let mut records = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("scan", &self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan", &self.dir, &e))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(hex) = name
                .strip_prefix("barrier-")
                .and_then(|r| r.strip_suffix(&format!(".{RECORD_EXT}")))
            else {
                continue;
            };
            if let Ok(cycle) = u64::from_str_radix(hex, 16) {
                records.push((cycle, path));
            }
        }
        records.sort_unstable_by_key(|&(cycle, _)| cycle);
        Ok(records)
    }

    /// The newest barrier record that passes every integrity check, or
    /// `None` for a fresh (or fully corrupted) store. Corrupt newer
    /// records are skipped, so a torn write costs one barrier of
    /// rollback, never the run.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Store`] only if the directory itself is
    /// unreadable.
    pub fn latest_consistent(&self) -> Result<Option<BarrierRecord>, PartitionError> {
        for (_, path) in self.record_paths()?.into_iter().rev() {
            if let Ok(record) = self.load(&path) {
                return Ok(Some(record));
            }
        }
        Ok(None)
    }

    /// Full integrity census: which barriers are consistent, which
    /// records are corrupt and why.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Store`] only if the directory is unreadable.
    pub fn fsck(&self) -> Result<FsckReport, PartitionError> {
        let mut report = FsckReport::default();
        for (cycle, path) in self.record_paths()? {
            match self.load(&path) {
                Ok(_) => report.consistent.push(cycle),
                Err(e) => {
                    let name = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("<non-utf8>")
                        .to_string();
                    report.corrupt.push((name, e.to_string()));
                }
            }
        }
        Ok(report)
    }

    /// Deletes all but the newest `keep` records (and any stale `.tmp`
    /// corpses). Returns how many files were removed.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Store`] if the directory is unreadable;
    /// failure to delete an individual file is ignored (it will be
    /// retried on the next prune).
    pub fn prune(&self, keep: usize) -> Result<usize, PartitionError> {
        let mut removed = 0;
        let records = self.record_paths()?;
        let cut = records.len().saturating_sub(keep);
        for (_, path) in &records[..cut] {
            if fs::remove_file(path).is_ok() {
                removed += 1;
            }
        }
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("scan", &self.dir, &e))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

// ----------------------------------------------------------- codec

/// Appends one CRC32-framed section: `len u32 | payload | crc32 u32`.
fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&u32::try_from(payload.len()).expect("section fits a u32").to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Extracts one CRC32-framed section, advancing `pos`.
fn read_section<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], PartitionError> {
    let need = |n: usize, pos: usize| -> Result<(), PartitionError> {
        if pos + n > bytes.len() {
            Err(store_err(format!("record truncated at offset {pos} (need {n} bytes)")))
        } else {
            Ok(())
        }
    };
    need(4, *pos)?;
    let len = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
    *pos += 4;
    need(len + 4, *pos)?;
    let payload = &bytes[*pos..*pos + len];
    *pos += len;
    let declared = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    let fresh = crc32(payload);
    if declared != fresh {
        return Err(store_err(format!("section CRC mismatch ({declared:#010x} != {fresh:#010x})")));
    }
    Ok(payload)
}

fn encode_record(record: &BarrierRecord) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&STORE_MAGIC);
    out.push(STORE_VERSION);

    let mut meta = Writer::new();
    meta.u64(record.cycle);
    meta.u64(record.fingerprint);
    // Plain u32, not a bounds-checked `len`: the workers live in the
    // next section, not in this one.
    meta.u32(u32::try_from(record.workers.len()).expect("worker count fits a u32"));
    write_section(&mut out, &meta.buf);

    let mut workers = Writer::new();
    for blob in &record.workers {
        workers.bytes(&blob.snapshot);
        workers.len(blob.out_links.len());
        for &(seq, hash) in &blob.out_links {
            workers.u64(seq);
            workers.u64(hash);
        }
        workers.len(blob.in_links.len());
        for &(seq, hash) in &blob.in_links {
            workers.u64(seq);
            workers.u64(hash);
        }
    }
    write_section(&mut out, &workers.buf);

    let mut outputs = Writer::new();
    outputs.len(record.outputs.len());
    for (port, values) in &record.outputs {
        outputs.str(port);
        outputs.len(values.len());
        for &v in values {
            outputs.i64(v);
        }
    }
    write_section(&mut out, &outputs.buf);
    out
}

fn decode_record(bytes: &[u8]) -> Result<BarrierRecord, PartitionError> {
    if bytes.len() < 5 {
        return Err(store_err(format!("record header truncated: {} bytes", bytes.len())));
    }
    if bytes[..4] != STORE_MAGIC {
        return Err(store_err(format!("bad record magic {:02x?}", &bytes[..4])));
    }
    if bytes[4] != STORE_VERSION {
        return Err(store_err(format!("unsupported record version {}", bytes[4])));
    }
    let mut pos = 5;
    let meta = read_section(bytes, &mut pos)?;
    let workers_section = read_section(bytes, &mut pos)?;
    let outputs_section = read_section(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(store_err(format!("{} trailing bytes after record", bytes.len() - pos)));
    }
    let protocol = |e: PartitionError| match e {
        PartitionError::Protocol { detail } => store_err(detail),
        other => other,
    };

    let mut r = Reader::new(meta);
    let cycle = r.u64().map_err(protocol)?;
    let fingerprint = r.u64().map_err(protocol)?;
    let n_workers = r.u32().map_err(protocol)? as usize;
    r.finish().map_err(protocol)?;

    let mut r = Reader::new(workers_section);
    let mut workers = Vec::with_capacity(n_workers.min(1 << 16));
    for _ in 0..n_workers {
        let snapshot = r.bytes().map_err(protocol)?;
        let mut out_links = Vec::with_capacity(r.len(16).map_err(protocol)?);
        for _ in 0..out_links.capacity() {
            out_links.push((r.u64().map_err(protocol)?, r.u64().map_err(protocol)?));
        }
        let mut in_links = Vec::with_capacity(r.len(16).map_err(protocol)?);
        for _ in 0..in_links.capacity() {
            in_links.push((r.u64().map_err(protocol)?, r.u64().map_err(protocol)?));
        }
        workers.push(WorkerBlob { snapshot, out_links, in_links });
    }
    r.finish().map_err(protocol)?;

    let mut r = Reader::new(outputs_section);
    let mut outputs = BTreeMap::new();
    let n_ports = r.len(5).map_err(protocol)?;
    for _ in 0..n_ports {
        let port = r.str().map_err(protocol)?;
        let mut values = Vec::with_capacity(r.len(8).map_err(protocol)?);
        for _ in 0..values.capacity() {
            values.push(r.i64().map_err(protocol)?);
        }
        outputs.insert(port, values);
    }
    r.finish().map_err(protocol)?;

    Ok(BarrierRecord { cycle, fingerprint, workers, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dwt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(cycle: u64) -> BarrierRecord {
        let mut outputs = BTreeMap::new();
        outputs.insert("out_low".to_string(), (0..cycle as i64).collect());
        outputs.insert("out_high".to_string(), (0..cycle as i64).map(|v| -v).collect());
        BarrierRecord {
            cycle,
            fingerprint: 0x5117_c0de,
            workers: vec![
                WorkerBlob {
                    snapshot: vec![1, 2, 3, 4],
                    out_links: vec![(cycle, 0xaaaa)],
                    in_links: vec![(cycle, 0xbbbb), (cycle, 0xcccc)],
                },
                WorkerBlob {
                    snapshot: vec![9; 33],
                    out_links: vec![(cycle, 0xdddd), (cycle, 0xeeee)],
                    in_links: vec![(cycle, 0xffff)],
                },
            ],
            outputs,
        }
    }

    #[test]
    fn save_load_and_latest_consistent_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.latest_consistent().unwrap(), None, "fresh store is empty");
        for cycle in [32u64, 64, 96] {
            store.save(&sample(cycle)).unwrap();
        }
        let latest = store.latest_consistent().unwrap().unwrap();
        assert_eq!(latest, sample(96));
        let report = store.fsck().unwrap();
        assert_eq!(report.consistent, vec![32, 64, 96]);
        assert!(report.corrupt.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_record_falls_back_to_previous_barrier() {
        let dir = temp_dir("truncate");
        let store = RunStore::open(&dir).unwrap();
        store.save(&sample(32)).unwrap();
        let newest = store.save(&sample(64)).unwrap();
        // Simulate a torn write that somehow reached the final name:
        // chop the record mid-section.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let latest = store.latest_consistent().unwrap().unwrap();
        assert_eq!(latest.cycle, 32, "fall back past the torn record");
        let report = store.fsck().unwrap();
        assert_eq!(report.consistent, vec![32]);
        assert_eq!(report.corrupt.len(), 1);
        assert!(report.corrupt[0].0.contains("barrier-"), "{report:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_records_are_typed_errors_never_panics() {
        let dir = temp_dir("bitflip");
        let store = RunStore::open(&dir).unwrap();
        let path = store.save(&sample(32)).unwrap();
        let bytes = fs::read(&path).unwrap();
        // Every single-byte flip must yield a typed Store error.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                matches!(decode_record(&corrupt), Err(PartitionError::Store { .. })),
                "flip at byte {i} must be rejected"
            );
        }
        // And every truncation.
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_record(&bytes[..cut]), Err(PartitionError::Store { .. })),
                "truncation at {cut} must be rejected"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_typed_error_and_open_creates_it() {
        let dir = temp_dir("missing");
        // A store whose directory vanished reports Store errors, not
        // panics.
        let store = RunStore::open(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(store.latest_consistent(), Err(PartitionError::Store { .. })));
        assert!(matches!(store.fsck(), Err(PartitionError::Store { .. })));
        // Re-opening recreates it.
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.latest_consistent().unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest_records_and_sweeps_tmp_corpses() {
        let dir = temp_dir("prune");
        let store = RunStore::open(&dir).unwrap();
        for cycle in [8u64, 16, 24, 32, 40] {
            store.save(&sample(cycle)).unwrap();
        }
        fs::write(dir.join("barrier-dead.tmp"), b"torn").unwrap();
        let removed = store.prune(2).unwrap();
        assert_eq!(removed, 4, "three old records + one tmp corpse");
        let report = store.fsck().unwrap();
        assert_eq!(report.consistent, vec![32, 40]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
