//! The crash-recoverable multi-threaded partition runner.
//!
//! One worker thread per shard, each owning an [`Engine`] (event or
//! compiled backend — the runner is generic, like `recover`/`pool`/
//! `serve`). Virtual cycle `k` is a fixed four-phase dance:
//!
//! 1. every worker stages its primary inputs for cycle `k`;
//! 2. every worker ticks — registers capture from a state settled with
//!    the boundary values of cycle `k-1`, exactly as the monolithic
//!    machine's registers do;
//! 3. every worker peeks its `__cut` output ports (the post-edge
//!    register/constant values) and sends one [`BoundaryMsg`] per
//!    outgoing link — **all sends precede all receives**, so cyclic
//!    shard graphs cannot deadlock on the unbounded channels;
//! 4. every worker receives, verifies (sequence + checksum), stages
//!    the boundary inputs and settles — its combinational state now
//!    matches the monolithic post-tick settled state bit for bit.
//!
//! A *prologue* exchange before the first tick distributes the
//! power-on boundary values (register zeros, constant values), which
//! need no fixpoint: cut-legal drivers never depend combinationally on
//! other shards.
//!
//! Robustness is barrier-structured. Execution proceeds in batches of
//! `snapshot_interval` cycles; after a batch, every worker returns its
//! engine snapshot plus per-link running hashes. The coordinator
//! commits the batch only if every worker reported, the two ends of
//! every link hash identically (lockstep divergence detection), and —
//! when an oracle is supplied — the outputs match it. Any checksum or
//! sequence violation, watchdog timeout, crash (channel disconnect),
//! hash mismatch or oracle mismatch aborts the batch: the epoch is
//! torn down, every worker is respawned with a fresh engine restored
//! from the last consistent global snapshot, and the lost cycles are
//! replayed. Transient fault arrivals are keyed by a monotone attempt
//! clock, so a strike never recurs on replay. After `max_recoveries`
//! the runner degrades to a single full-netlist engine, and finally to
//! a caller-supplied software-golden fallback — availability failures
//! never become correctness failures.

use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dwt_pool::clock::{Clock, Deadline, MonotonicClock};
use dwt_recover::injector::{FaultInjector, Lane};
use dwt_recover::seu::PoissonSeuBuilder;
use dwt_rtl::engine::Engine;
use dwt_rtl::fault::FaultSpec;
use dwt_rtl::netlist::{Netlist, PortDirection};

use crate::channel::{hash_seed, BoundaryMsg, LinkFault};
use crate::cut::PartitionedNetlist;
use crate::error::PartitionError;
use crate::transport::{ChannelTransport, RecvError, Transport};
use crate::wire::Frame;

/// Per-cycle input vectors for one frame.
#[derive(Debug, Clone, Default)]
pub struct Stimulus {
    /// Frame length in virtual cycles.
    pub cycles: u64,
    /// One value per cycle for every primary input port.
    pub inputs: BTreeMap<String, Vec<i64>>,
}

/// Per-cycle output samples for one frame (settled, post-edge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameOutputs {
    /// One value per cycle for every primary output port.
    pub ports: BTreeMap<String, Vec<i64>>,
}

/// The rung a frame finally completed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Partitioned execution (recoveries allowed).
    Partitioned,
    /// Single-engine re-execution of the whole frame.
    SingleEngine,
    /// The caller-supplied software-golden fallback.
    Golden,
}

/// What the robustness layer noticed, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionKind {
    /// A message failed its checksum (payload corruption).
    Checksum,
    /// A message arrived out of sequence (loss or duplication).
    Sequence,
    /// Producer and consumer link hashes disagree at a barrier
    /// (stealth corruption or silent state divergence).
    LinkHashMismatch,
    /// Outputs disagree with the supplied oracle (an SEU slipped
    /// through to architectural state).
    OracleMismatch,
    /// A worker missed the watchdog window.
    Stall,
    /// A worker's channels disconnected (thread died).
    Crash,
    /// An engine error inside a worker.
    Engine(String),
}

/// One detection event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Worker that reported (or failed to report); `None` for
    /// barrier-level checks.
    pub worker: Option<usize>,
    /// Virtual cycle the batch started at.
    pub batch_start: u64,
    /// What was detected.
    pub kind: DetectionKind,
}

/// Outcome of one frame.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// The per-cycle outputs (authoritative, whatever the rung).
    pub outputs: FrameOutputs,
    /// The rung that produced [`FrameReport::outputs`].
    pub rung: Rung,
    /// Rollback-and-replay recoveries performed.
    pub recoveries: u32,
    /// Everything the detectors fired on.
    pub detections: Vec<Detection>,
    /// Barriers committed (consistent global snapshots taken).
    pub barriers: u64,
    /// Cycles re-executed during replays.
    pub replayed_cycles: u64,
}

/// Chaos directives for fault-tolerance tests and campaigns. Kills,
/// stalls and corruptions fire **once** each — after the recovery
/// they provoke, the replay runs clean.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// `(worker, cycle)`: the worker thread dies just before ticking
    /// that virtual cycle.
    pub kills: Vec<(usize, u64)>,
    /// `(worker, cycle, pause)`: the worker sleeps that long before
    /// ticking — longer than the watchdog means its peers declare it
    /// a straggler.
    pub stalls: Vec<(usize, u64, Duration)>,
    /// In-flight message corruptions.
    pub corruptions: Vec<Corruption>,
    /// Poisson-distributed transient register upsets inside every
    /// worker's shard (rate per cycle per worker).
    pub seu: Option<SeuChaos>,
}

/// One in-flight message corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// Producer shard.
    pub from: usize,
    /// Consumer shard.
    pub to: usize,
    /// Virtual cycle whose message is corrupted.
    pub cycle: u64,
    /// `false`: flip a payload bit, leaving the checksum stale (caught
    /// immediately by the consumer). `true`: flip the bit *and*
    /// rewrite the checksum — only the barrier hash crosscheck can
    /// catch it.
    pub stealth: bool,
}

/// Poisson SEU chaos parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeuChaos {
    /// Expected upsets per cycle per worker.
    pub rate: f64,
    /// Base seed (worker index is mixed in).
    pub seed: u64,
}

/// Runner tuning.
#[derive(Clone)]
pub struct RunnerConfig {
    /// Cycles per barrier (snapshot cadence). Shorter means cheaper
    /// replays and more snapshot overhead.
    pub snapshot_interval: u64,
    /// How long a worker waits on a boundary receive before declaring
    /// the producer a straggler.
    pub watchdog: Duration,
    /// Rollback-and-replay budget per frame before degrading to the
    /// single-engine rung.
    pub max_recoveries: u32,
    /// Optional per-cycle event cap forwarded to every engine.
    pub event_cap: Option<u64>,
    /// Clock the coordinator's batch-collection deadline reads.
    /// [`MonotonicClock`] (ticks are nanoseconds) in production; a
    /// `VirtualClock` makes stall detection deterministic in tests.
    pub clock: Arc<dyn Clock>,
    /// Batch-collection budget in clock ticks. `None` derives a
    /// wall-clock budget from the watchdog (`watchdog × 4 + 500 ms`,
    /// in nanoseconds — the [`MonotonicClock`] tick unit).
    pub batch_budget: Option<u64>,
}

impl std::fmt::Debug for RunnerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunnerConfig")
            .field("snapshot_interval", &self.snapshot_interval)
            .field("watchdog", &self.watchdog)
            .field("max_recoveries", &self.max_recoveries)
            .field("event_cap", &self.event_cap)
            .field("batch_budget", &self.batch_budget)
            .finish_non_exhaustive()
    }
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            snapshot_interval: 32,
            watchdog: Duration::from_millis(250),
            max_recoveries: 8,
            event_cap: None,
            clock: Arc::new(MonotonicClock::new()),
            batch_budget: None,
        }
    }
}

/// The caller-supplied terminal fallback.
pub type GoldenFallback<'a> = &'a (dyn Fn(&Stimulus) -> Option<FrameOutputs> + Sync);

// ---------------------------------------------------------------- wire

/// What a worker receives per batch.
struct Batch {
    start: u64,
    cycles: u64,
    /// Run the power-on prologue exchange before the first tick.
    prologue: bool,
    /// `inputs[cycle][i]` feeds the worker's `i`-th primary input.
    inputs: Vec<Vec<i64>>,
    /// Transient faults due at `(offset, spec)`.
    faults: Vec<(u64, FaultSpec)>,
    kill_at: Option<u64>,
    stall_at: Option<(u64, Duration)>,
    /// `(offset, out-link index, stealth)`.
    corrupt: Vec<(u64, usize, bool)>,
}

enum Cmd {
    Run(Box<Batch>),
}

enum Resp<S> {
    Done {
        worker: usize,
        /// `outputs[cycle][i]` is the worker's `i`-th owned output.
        outputs: Vec<Vec<i64>>,
        /// Running hash per outgoing link, after this batch.
        out_hashes: Vec<u64>,
        /// Running hash per incoming link, after this batch.
        in_hashes: Vec<u64>,
        snapshot: S,
    },
    Fault {
        worker: usize,
        kind: DetectionKind,
    },
}

/// An outgoing boundary link. Thread mode speaks the same
/// [`Frame::Boundary`] wire protocol as process mode, over an
/// in-process [`ChannelTransport`] — every exchanged value round-trips
/// through the full byte codec on every run.
struct OutLink {
    ports: Vec<String>,
    tx: ChannelTransport,
    seq: u64,
    hash: u64,
}

struct InLink {
    from: usize,
    ports: Vec<String>,
    rx: ChannelTransport,
    seq: u64,
    hash: u64,
}

struct Worker<E: Engine> {
    id: usize,
    engine: E,
    inputs: Vec<String>,
    outputs: Vec<String>,
    out_links: Vec<OutLink>,
    in_links: Vec<InLink>,
    watchdog: Duration,
}

impl<E: Engine> Worker<E> {
    /// Sends the current boundary values on every outgoing link, with
    /// chaos corruption applied after the true values entered the
    /// running hash.
    fn exchange_send(&mut self, cycle: u64, corrupt: &[(u64, usize, bool)], offset: Option<u64>) {
        for (li, link) in self.out_links.iter_mut().enumerate() {
            let values: Vec<i64> =
                link.ports.iter().map(|p| self.engine.peek(p).unwrap_or(0)).collect();
            let mut msg = BoundaryMsg::new(link.seq, cycle, values);
            link.hash = msg.fold_into(link.hash);
            link.seq += 1;
            if let Some(o) = offset {
                for &(co, cl, stealth) in corrupt {
                    if co == o && cl == li {
                        let mut values = msg.values.clone();
                        values[0] ^= 1;
                        if stealth {
                            msg = BoundaryMsg::new(msg.seq, msg.cycle, values);
                        } else {
                            msg.values = values;
                        }
                    }
                }
            }
            // A closed peer is the coordinator's problem (it will see
            // the peer's fault or absence); keep going.
            let _ = link.tx.send(&Frame::Boundary { generation: 0, link: li as u32, msg });
        }
    }

    /// Receives one message per incoming link, verifies it, and stages
    /// the boundary inputs. Returns the first link fault.
    fn exchange_recv(&mut self) -> Result<(), (usize, LinkFault)> {
        for link in &mut self.in_links {
            let frame = match link.rx.recv_timeout(self.watchdog) {
                Ok(frame) => frame,
                Err(RecvError::Timeout) => return Err((link.from, LinkFault::Timeout)),
                Err(RecvError::Disconnected) => return Err((link.from, LinkFault::Disconnected)),
                // Undecodable bytes on the link are payload corruption.
                Err(RecvError::Protocol(_)) => {
                    return Err((link.from, LinkFault::Checksum { seq: link.seq }))
                }
            };
            let Frame::Boundary { msg, .. } = frame else {
                return Err((link.from, LinkFault::Checksum { seq: link.seq }));
            };
            msg.verify(link.seq).map_err(|f| (link.from, f))?;
            link.hash = msg.fold_into(link.hash);
            link.seq += 1;
            for (port, &value) in link.ports.iter().zip(&msg.values) {
                // Boundary values come from a peer's register bus of
                // the same width; set_input cannot range-fail.
                if self.engine.set_input(port, value).is_err() {
                    return Err((link.from, LinkFault::Checksum { seq: msg.seq }));
                }
            }
        }
        Ok(())
    }

    fn run_batch(&mut self, batch: &Batch) -> Result<Resp<E::Snapshot>, ()> {
        let id = self.id;
        let fault = move |kind: DetectionKind| Resp::Fault { worker: id, kind };
        let link_fault = |f: LinkFault| match f {
            LinkFault::Checksum { .. } => DetectionKind::Checksum,
            LinkFault::Sequence { .. } => DetectionKind::Sequence,
            LinkFault::Timeout => DetectionKind::Stall,
            LinkFault::Disconnected => DetectionKind::Crash,
        };
        if batch.prologue {
            self.exchange_send(batch.start, &[], None);
            if let Err((_, f)) = self.exchange_recv() {
                return Ok(fault(link_fault(f)));
            }
            if let Err(e) = self.engine.try_settle() {
                return Ok(fault(DetectionKind::Engine(e.to_string())));
            }
        }
        let mut outputs = Vec::with_capacity(batch.cycles as usize);
        for offset in 0..batch.cycles {
            if batch.kill_at == Some(offset) {
                // Simulated crash: vanish without a response; the
                // dropped channels are the peers' first hint.
                return Err(());
            }
            if let Some((at, pause)) = batch.stall_at {
                if at == offset {
                    thread::sleep(pause);
                }
            }
            let cycle = batch.start + offset;
            for (i, port) in self.inputs.iter().enumerate() {
                let value = batch.inputs[offset as usize][i];
                if let Err(e) = self.engine.set_input(port, value) {
                    return Ok(fault(DetectionKind::Engine(e.to_string())));
                }
            }
            for (due, spec) in &batch.faults {
                if *due == offset {
                    let rebased = rebase(spec.clone(), self.engine.cycle());
                    if let Err(e) = self.engine.inject(&rebased) {
                        return Ok(fault(DetectionKind::Engine(e.to_string())));
                    }
                }
            }
            if let Err(e) = self.engine.try_tick() {
                return Ok(fault(DetectionKind::Engine(e.to_string())));
            }
            self.exchange_send(cycle, &batch.corrupt, Some(offset));
            if let Err((_, f)) = self.exchange_recv() {
                return Ok(fault(link_fault(f)));
            }
            if let Err(e) = self.engine.try_settle() {
                return Ok(fault(DetectionKind::Engine(e.to_string())));
            }
            let row: Vec<i64> =
                self.outputs.iter().map(|p| self.engine.peek(p).unwrap_or(0)).collect();
            outputs.push(row);
        }
        Ok(Resp::Done {
            worker: self.id,
            outputs,
            out_hashes: self.out_links.iter().map(|l| l.hash).collect(),
            in_hashes: self.in_links.iter().map(|l| l.hash).collect(),
            snapshot: self.engine.snapshot(),
        })
    }
}

/// Rebase a transient fault to strike at the engine's next clock edge
/// (same contract as the recover executor's injection point).
pub(crate) fn rebase(spec: FaultSpec, now: u64) -> FaultSpec {
    match spec {
        FaultSpec::BitFlip { register, bit, .. } => {
            FaultSpec::BitFlip { register, bit, cycle: now }
        }
        FaultSpec::RamUpset { ram, addr, bit, .. } => {
            FaultSpec::RamUpset { ram, addr, bit, cycle: now }
        }
        stuck @ FaultSpec::StuckAt { .. } => stuck,
    }
}

fn worker_main<E: Engine>(
    mut worker: Worker<E>,
    cmd_rx: &Receiver<Cmd>,
    resp_tx: &Sender<Resp<E::Snapshot>>,
) {
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            Cmd::Run(batch) => match worker.run_batch(&batch) {
                Ok(resp) => {
                    if resp_tx.send(resp).is_err() {
                        return;
                    }
                }
                // Simulated crash: drop everything, silently.
                Err(()) => return,
            },
        }
    }
}

// ---------------------------------------------------------- coordinator

/// A handle on one epoch's worth of spawned workers.
struct Epoch<S> {
    cmd_txs: Vec<Sender<Cmd>>,
    resp_rx: Receiver<Resp<S>>,
    handles: Vec<JoinHandle<()>>,
}

impl<S> Epoch<S> {
    fn teardown(self) {
        drop(self.cmd_txs);
        drop(self.resp_rx);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// Runs a partitioned netlist across one OS thread per shard, with
/// barrier snapshots, divergence detection and rollback-replay
/// recovery. See the module docs for the protocol.
pub struct PartitionRunner<'a, E: Engine> {
    parts: &'a PartitionedNetlist,
    config: RunnerConfig,
    _engine: std::marker::PhantomData<E>,
}

impl<'a, E> PartitionRunner<'a, E>
where
    E: Engine + Send + 'static,
    E::Snapshot: Clone + Send + 'static,
{
    /// Creates a runner over an existing partition.
    #[must_use]
    pub fn new(parts: &'a PartitionedNetlist, config: RunnerConfig) -> Self {
        PartitionRunner { parts, config, _engine: std::marker::PhantomData }
    }

    /// Runs one frame to completion.
    ///
    /// `oracle`, when supplied, is checked at every barrier (the
    /// duplicate-with-compare detector for SEU chaos): a mismatch
    /// rolls the frame back like any other detection. `golden` is the
    /// terminal degradation rung.
    ///
    /// # Errors
    ///
    /// * [`PartitionError::Stimulus`] if the stimulus does not cover
    ///   every shard input for every cycle.
    /// * [`PartitionError::Exhausted`] if every rung fails.
    pub fn run_frame(
        &self,
        stim: &Stimulus,
        oracle: Option<&FrameOutputs>,
        chaos: &ChaosPlan,
        golden: Option<GoldenFallback<'_>>,
    ) -> Result<FrameReport, PartitionError> {
        self.check_stimulus(stim)?;
        match self.run_partitioned(stim, oracle, chaos) {
            Ok(report) => Ok(report),
            Err((mut detections, recoveries, replayed)) => {
                // Rung 2: one engine over the unsplit netlist, no
                // faults. Rung 3: the caller's golden model.
                match run_single::<E>(&self.parts.original, stim, self.config.event_cap) {
                    Ok(outputs) => Ok(FrameReport {
                        outputs,
                        rung: Rung::SingleEngine,
                        recoveries,
                        detections,
                        barriers: 0,
                        replayed_cycles: replayed,
                    }),
                    Err(e) => {
                        detections.push(Detection {
                            worker: None,
                            batch_start: 0,
                            kind: DetectionKind::Engine(e.to_string()),
                        });
                        match golden.and_then(|g| g(stim)) {
                            Some(outputs) => Ok(FrameReport {
                                outputs,
                                rung: Rung::Golden,
                                recoveries,
                                detections,
                                barriers: 0,
                                replayed_cycles: replayed,
                            }),
                            None => Err(PartitionError::Exhausted {
                                detail: format!(
                                    "{} detections, single-engine rung failed: {e}",
                                    detections.len()
                                ),
                            }),
                        }
                    }
                }
            }
        }
    }

    fn check_stimulus(&self, stim: &Stimulus) -> Result<(), PartitionError> {
        check_stimulus(self.parts, stim)
    }

    /// The partitioned rung. On failure returns the evidence for the
    /// report: `(detections, recoveries, replayed_cycles)`.
    #[allow(clippy::type_complexity, clippy::too_many_lines)]
    fn run_partitioned(
        &self,
        stim: &Stimulus,
        oracle: Option<&FrameOutputs>,
        chaos: &ChaosPlan,
    ) -> Result<FrameReport, (Vec<Detection>, u32, u64)> {
        let n = self.parts.parts();
        let mut committed = FrameOutputs::default();
        for shard in &self.parts.shards {
            for out in &shard.outputs {
                committed.ports.insert(out.clone(), Vec::new());
            }
        }
        let mut cursor: u64 = 0;
        let mut snapshots: Option<Vec<E::Snapshot>> = None;
        let mut detections: Vec<Detection> = Vec::new();
        let mut recoveries: u32 = 0;
        let mut barriers: u64 = 0;
        let mut replayed: u64 = 0;

        // Chaos directives fire once; SEU arrivals are keyed by a
        // monotone per-worker attempt clock so replays run clean.
        let mut fired_kills = vec![false; chaos.kills.len()];
        let mut fired_stalls = vec![false; chaos.stalls.len()];
        let mut fired_corruptions = vec![false; chaos.corruptions.len()];
        let mut seu: Vec<Option<Box<dyn FaultInjector>>> = (0..n)
            .map(|w| {
                let plan = chaos.seu.as_ref()?;
                let netlist = &self.parts.shards[w].netlist;
                PoissonSeuBuilder::new()
                    .rate(plan.rate)
                    .stuck_fraction(0.0)
                    .common_mode(0.0)
                    .seed(plan.seed.wrapping_add(w as u64).wrapping_mul(0x9e37_79b9))
                    .build(netlist, netlist)
                    .ok()
                    .map(|inj| Box::new(inj) as Box<dyn FaultInjector>)
            })
            .collect();
        let mut attempt_clock: u64 = 0;

        while cursor < stim.cycles {
            let epoch = match self.spawn_epoch(snapshots.as_ref()) {
                Ok(epoch) => epoch,
                Err(_) => return Err((detections, recoveries, replayed)),
            };
            let mut epoch_first = true;
            let mut epoch_alive = true;
            while epoch_alive && cursor < stim.cycles {
                let batch_len = self.config.snapshot_interval.min(stim.cycles - cursor);
                // Distribute the batch.
                for (w, cmd_tx) in epoch.cmd_txs.iter().enumerate() {
                    let shard = &self.parts.shards[w];
                    let inputs: Vec<Vec<i64>> = (0..batch_len)
                        .map(|o| {
                            shard
                                .inputs
                                .iter()
                                .map(|p| stim.inputs[p][(cursor + o) as usize])
                                .collect()
                        })
                        .collect();
                    let mut faults = Vec::new();
                    if let Some(inj) = seu[w].as_mut() {
                        for o in 0..batch_len {
                            for spec in inj.arrivals(attempt_clock + o, Lane::Primary) {
                                faults.push((o, spec));
                            }
                        }
                    }
                    let in_window = |c: u64| c >= cursor && c < cursor + batch_len;
                    let mut kill_at = None;
                    for (i, &(kw, kc)) in chaos.kills.iter().enumerate() {
                        if kw == w && in_window(kc) && !fired_kills[i] {
                            fired_kills[i] = true;
                            kill_at = Some(kc - cursor);
                        }
                    }
                    let mut stall_at = None;
                    for (i, &(sw, sc, pause)) in chaos.stalls.iter().enumerate() {
                        if sw == w && in_window(sc) && !fired_stalls[i] {
                            fired_stalls[i] = true;
                            stall_at = Some((sc - cursor, pause));
                        }
                    }
                    let mut corrupt = Vec::new();
                    for (i, c) in chaos.corruptions.iter().enumerate() {
                        if c.from == w && in_window(c.cycle) && !fired_corruptions[i] {
                            let link = self
                                .parts
                                .links
                                .iter()
                                .filter(|l| l.from == w)
                                .position(|l| l.to == c.to);
                            if let Some(link) = link {
                                fired_corruptions[i] = true;
                                corrupt.push((c.cycle - cursor, link, c.stealth));
                            }
                        }
                    }
                    let batch = Batch {
                        start: cursor,
                        cycles: batch_len,
                        prologue: epoch_first && snapshots.is_none() && cursor == 0,
                        inputs,
                        faults,
                        kill_at,
                        stall_at,
                        corrupt,
                    };
                    // A dead worker's closed channel surfaces below as
                    // a missing response.
                    let _ = cmd_tx.send(Cmd::Run(Box::new(batch)));
                }
                epoch_first = false;
                attempt_clock += batch_len;

                // Collect one response per worker, against a clock-
                // driven deadline: short real-time polls so a virtual
                // clock (tests) or the monotonic clock (production)
                // decides when the batch has stalled out.
                let budget = self.config.batch_budget.unwrap_or_else(|| {
                    let wall = self.config.watchdog * 4 + Duration::from_millis(500);
                    u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX)
                });
                let deadline = Deadline::after(Arc::clone(&self.config.clock), budget);
                let mut responses: Vec<Option<Resp<E::Snapshot>>> = (0..n).map(|_| None).collect();
                let mut received = 0usize;
                let mut batch_ok = true;
                let mut disconnected = false;
                while received < n && !deadline.expired() {
                    match epoch.resp_rx.recv_timeout(Duration::from_millis(10)) {
                        Ok(resp) => {
                            let w = match &resp {
                                Resp::Done { worker, .. } | Resp::Fault { worker, .. } => *worker,
                            };
                            if let Resp::Fault { worker, kind } = &resp {
                                detections.push(Detection {
                                    worker: Some(*worker),
                                    batch_start: cursor,
                                    kind: kind.clone(),
                                });
                                batch_ok = false;
                            }
                            if responses[w].is_none() {
                                received += 1;
                            }
                            responses[w] = Some(resp);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                for (w, resp) in responses.iter().enumerate() {
                    if resp.is_none() {
                        detections.push(Detection {
                            worker: Some(w),
                            batch_start: cursor,
                            // All response channels gone: the thread
                            // died. Deadline expiry: it's wedged.
                            kind: if disconnected {
                                DetectionKind::Crash
                            } else {
                                DetectionKind::Stall
                            },
                        });
                        batch_ok = false;
                    }
                }

                // Barrier crosschecks.
                if batch_ok {
                    batch_ok = self.crosscheck(&responses, cursor, &mut detections);
                }
                if batch_ok {
                    if let Some(expected) = oracle {
                        batch_ok = self.check_oracle(&responses, expected, cursor, &mut detections);
                    }
                }

                if batch_ok {
                    // Commit: outputs append, snapshots advance.
                    let mut fresh = Vec::with_capacity(n);
                    for (w, resp) in responses.into_iter().enumerate() {
                        let Some(Resp::Done { outputs, snapshot, .. }) = resp else {
                            unreachable!("batch_ok implies every response is Done");
                        };
                        for (i, port) in self.parts.shards[w].outputs.iter().enumerate() {
                            let sink = committed.ports.get_mut(port).expect("port registered");
                            sink.extend(outputs.iter().map(|row| row[i]));
                        }
                        fresh.push(snapshot);
                    }
                    snapshots = Some(fresh);
                    cursor += batch_len;
                    barriers += 1;
                } else {
                    recoveries += 1;
                    replayed += batch_len;
                    epoch_alive = false;
                    if recoveries > self.config.max_recoveries {
                        epoch.teardown();
                        return Err((detections, recoveries, replayed));
                    }
                }
            }
            if epoch_alive {
                epoch.teardown();
                return Ok(FrameReport {
                    outputs: committed,
                    rung: Rung::Partitioned,
                    recoveries,
                    detections,
                    barriers,
                    replayed_cycles: replayed,
                });
            }
            epoch.teardown();
            // Roll back: uncommitted outputs were never appended, so
            // recovery is just a respawn from `snapshots` + replay.
        }
        Ok(FrameReport {
            outputs: committed,
            rung: Rung::Partitioned,
            recoveries,
            detections,
            barriers,
            replayed_cycles: replayed,
        })
    }

    fn spawn_epoch(
        &self,
        snapshots: Option<&Vec<E::Snapshot>>,
    ) -> Result<Epoch<E::Snapshot>, PartitionError> {
        type Endpoints = Vec<Vec<(usize, Vec<String>, ChannelTransport)>>;
        let n = self.parts.parts();
        // Point-to-point boundary transports: each link is a framed
        // byte pipe, so thread mode exercises the wire codec too.
        let mut senders: Endpoints = (0..n).map(|_| Vec::new()).collect();
        let mut receivers: Endpoints = (0..n).map(|_| Vec::new()).collect();
        for link in &self.parts.links {
            let (tx, rx) = ChannelTransport::pair();
            senders[link.from].push((link.to, link.ports.clone(), tx));
            receivers[link.to].push((link.from, link.ports.clone(), rx));
        }
        let (resp_tx, resp_rx) = mpsc::channel::<Resp<E::Snapshot>>();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (w, (outs, ins)) in senders.into_iter().zip(receivers).enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            cmd_txs.push(cmd_tx);
            let resp_tx = resp_tx.clone();
            let shard = &self.parts.shards[w];
            let netlist = shard.netlist.clone();
            let inputs = shard.inputs.clone();
            let outputs = shard.outputs.clone();
            let watchdog = self.config.watchdog;
            let event_cap = self.config.event_cap;
            let initial = snapshots.map(|s| s[w].clone());
            let builder = thread::Builder::new().name(format!("dwt-partition-{w}"));
            let handle = builder
                .spawn(move || {
                    let mut engine = match E::from_netlist(netlist) {
                        Ok(engine) => engine,
                        Err(e) => {
                            let _ = resp_tx.send(Resp::Fault {
                                worker: w,
                                kind: DetectionKind::Engine(e.to_string()),
                            });
                            return;
                        }
                    };
                    if let Some(cap) = event_cap {
                        engine.set_event_cap(cap);
                    }
                    if let Some(snapshot) = initial {
                        if let Err(e) = engine.restore(&snapshot) {
                            let _ = resp_tx.send(Resp::Fault {
                                worker: w,
                                kind: DetectionKind::Engine(e.to_string()),
                            });
                            return;
                        }
                    }
                    let worker = Worker {
                        id: w,
                        engine,
                        inputs,
                        outputs,
                        out_links: outs
                            .into_iter()
                            .map(|(_, ports, tx)| OutLink { ports, tx, seq: 0, hash: hash_seed() })
                            .collect(),
                        in_links: ins
                            .into_iter()
                            .map(|(from, ports, rx)| InLink {
                                from,
                                ports,
                                rx,
                                seq: 0,
                                hash: hash_seed(),
                            })
                            .collect(),
                        watchdog,
                    };
                    worker_main(worker, &cmd_rx, &resp_tx);
                })
                .map_err(|e| PartitionError::Spawn { detail: e.to_string() })?;
            handles.push(handle);
        }
        Ok(Epoch { cmd_txs, resp_rx, handles })
    }

    /// Producer vs consumer running hash, per link.
    fn crosscheck(
        &self,
        responses: &[Option<Resp<E::Snapshot>>],
        cursor: u64,
        detections: &mut Vec<Detection>,
    ) -> bool {
        let mut ok = true;
        // Link order within a worker's out/in lists mirrors
        // spawn_epoch's iteration over self.parts.links.
        let mut out_idx = vec![0usize; self.parts.parts()];
        let mut in_idx = vec![0usize; self.parts.parts()];
        for link in &self.parts.links {
            let (produced, consumed) = {
                let p = match &responses[link.from] {
                    Some(Resp::Done { out_hashes, .. }) => out_hashes[out_idx[link.from]],
                    _ => return false,
                };
                let c = match &responses[link.to] {
                    Some(Resp::Done { in_hashes, .. }) => in_hashes[in_idx[link.to]],
                    _ => return false,
                };
                (p, c)
            };
            out_idx[link.from] += 1;
            in_idx[link.to] += 1;
            if produced != consumed {
                detections.push(Detection {
                    worker: Some(link.to),
                    batch_start: cursor,
                    kind: DetectionKind::LinkHashMismatch,
                });
                ok = false;
            }
        }
        ok
    }

    /// Batch outputs vs the oracle slice.
    fn check_oracle(
        &self,
        responses: &[Option<Resp<E::Snapshot>>],
        expected: &FrameOutputs,
        cursor: u64,
        detections: &mut Vec<Detection>,
    ) -> bool {
        let mut ok = true;
        for (w, resp) in responses.iter().enumerate() {
            let Some(Resp::Done { outputs, .. }) = resp else { return false };
            for (i, port) in self.parts.shards[w].outputs.iter().enumerate() {
                let Some(want) = expected.ports.get(port) else { continue };
                for (o, row) in outputs.iter().enumerate() {
                    let cycle = cursor as usize + o;
                    if cycle < want.len() && row[i] != want[cycle] {
                        detections.push(Detection {
                            worker: Some(w),
                            batch_start: cursor,
                            kind: DetectionKind::OracleMismatch,
                        });
                        ok = false;
                        break;
                    }
                }
            }
        }
        ok
    }
}

/// Every shard input must have a value for every cycle; shared by the
/// thread-mode runner and the process supervisor.
pub(crate) fn check_stimulus(
    parts: &PartitionedNetlist,
    stim: &Stimulus,
) -> Result<(), PartitionError> {
    for shard in &parts.shards {
        for input in &shard.inputs {
            let Some(values) = stim.inputs.get(input) else {
                return Err(PartitionError::Stimulus {
                    detail: format!("no values for input port '{input}'"),
                });
            };
            if (values.len() as u64) < stim.cycles {
                return Err(PartitionError::Stimulus {
                    detail: format!(
                        "input '{input}' has {} values for {} cycles",
                        values.len(),
                        stim.cycles
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Runs one frame on a single engine over an unsplit netlist — the
/// reference the differential suite compares against, and the
/// runner's second degradation rung.
///
/// # Errors
///
/// Propagates engine construction/simulation errors.
pub fn run_single<E: Engine>(
    netlist: &Netlist,
    stim: &Stimulus,
    event_cap: Option<u64>,
) -> Result<FrameOutputs, PartitionError> {
    let output_ports: Vec<String> = netlist
        .ports()
        .values()
        .filter(|p| p.direction == PortDirection::Output)
        .map(|p| p.name.clone())
        .collect();
    let mut engine = E::from_netlist(netlist.clone())?;
    if let Some(cap) = event_cap {
        engine.set_event_cap(cap);
    }
    let mut outputs = FrameOutputs::default();
    for port in &output_ports {
        outputs.ports.insert(port.clone(), Vec::with_capacity(stim.cycles as usize));
    }
    for t in 0..stim.cycles {
        for (port, values) in &stim.inputs {
            if netlist.ports().contains_key(port) {
                engine.set_input(port, values[t as usize])?;
            }
        }
        engine.try_tick()?;
        for port in &output_ports {
            let v = engine.peek(port)?;
            outputs.ports.get_mut(port).expect("registered").push(v);
        }
    }
    Ok(outputs)
}
