//! Process-isolated partitioned emulation: a supervisor that forks one
//! OS process per shard and drives the same four-phase lockstep the
//! thread-mode runner uses, over Unix-domain sockets.
//!
//! Thread-mode fault tolerance shares an address space: a worker that
//! corrupts memory or wedges inside native code can take the whole
//! emulation down with it. Real emulator farms put every shard behind a
//! process (or machine) boundary, and so does this module:
//!
//! * **Workers** ([`run_worker`]) rebuild their shard independently,
//!   announce themselves with a [`Frame::Hello`] carrying the cut
//!   [`fingerprint`](PartitionedNetlist::fingerprint) (admission
//!   control: a worker launched against the wrong design or part count
//!   is rejected before it can pollute the run), and then speak the
//!   framed wire protocol: batches in, boundary values and barrier
//!   reports out, heartbeats while executing.
//! * **The supervisor** ([`ProcSupervisor`]) is a hub: it routes every
//!   boundary frame from producer to consumer (rewriting the link
//!   index from the producer's outgoing numbering to the consumer's
//!   incoming numbering), polices per-worker liveness on a
//!   [`Clock`]-driven deadline, and commits a barrier only when every
//!   report arrived and both ends of every link hash identically.
//! * **Recovery** is generation-tagged rollback. Any crash (SIGKILL,
//!   socket close), stall (silence past the liveness window), protocol
//!   violation, or hash mismatch aborts the batch: the supervisor bumps
//!   the generation, respawns dead workers, restores everyone from the
//!   last consistent barrier — the durable [`RunStore`] when
//!   configured, the in-memory barrier otherwise — and replays. Both
//!   ends drop frames tagged with older generations, so a stale
//!   in-flight boundary value can never alias its replayed successor.
//! * **Durability**: with a store configured, every committed barrier
//!   is written via tmp-file + fsync + atomic rename. A supervisor that
//!   is itself killed can be restarted with [`ProcConfig::resume`] and
//!   continues from the newest consistent barrier instead of cycle 0; a
//!   torn record (crash mid-write) costs exactly one barrier of replay.
//!
//! Engine snapshots cross the socket as
//! [`PortableSnapshot`] bytes — backend-tagged and versioned, so a
//! worker restoring on the wrong backend fails loudly, not silently.

use std::collections::VecDeque;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dwt_pool::clock::{Clock, Deadline, MonotonicClock};
use dwt_rtl::engine::{Engine, PortableSnapshot};
use dwt_rtl::fault::FaultSpec;
use dwt_rtl::netlist::Netlist;

use crate::channel::{hash_seed, BoundaryMsg, LinkFault};
use crate::cut::PartitionedNetlist;
use crate::error::PartitionError;
use crate::runner::{check_stimulus, rebase, Detection, DetectionKind, FrameOutputs, Stimulus};
use crate::store::{BarrierRecord, RunStore, WorkerBlob};
use crate::transport::{RecvError, SocketTransport, Transport};
use crate::wire::Frame;

fn transport_err(detail: impl Into<String>) -> PartitionError {
    PartitionError::Transport { detail: detail.into() }
}

fn spawn_err(detail: impl Into<String>) -> PartitionError {
    PartitionError::Spawn { detail: detail.into() }
}

// ------------------------------------------------------------- worker

/// Everything a worker process needs to rebuild its shard.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Shard index.
    pub worker: usize,
    /// The shard netlist.
    pub netlist: Netlist,
    /// Primary input ports this shard needs fed every cycle.
    pub inputs: Vec<String>,
    /// Primary output ports this shard owns.
    pub outputs: Vec<String>,
    /// Ports per outgoing link, in the supervisor's link order.
    pub out_ports: Vec<Vec<String>>,
    /// Ports per incoming link, in the supervisor's link order.
    pub in_ports: Vec<Vec<String>>,
    /// Cut fingerprint, announced at admission.
    pub fingerprint: u64,
}

impl WorkerSpec {
    /// Extracts worker `worker`'s view of a partition. Both sides
    /// derive link order from the same iteration over
    /// [`PartitionedNetlist::links`], so the out/in indices agree
    /// without negotiation.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Spawn`] if the shard index is out of range.
    pub fn from_cut(
        parts: &PartitionedNetlist,
        worker: usize,
    ) -> Result<WorkerSpec, PartitionError> {
        if worker >= parts.parts() {
            return Err(spawn_err(format!("shard {worker} of a {}-way cut", parts.parts())));
        }
        let shard = &parts.shards[worker];
        Ok(WorkerSpec {
            worker,
            netlist: shard.netlist.clone(),
            inputs: shard.inputs.clone(),
            outputs: shard.outputs.clone(),
            out_ports: parts
                .links
                .iter()
                .filter(|l| l.from == worker)
                .map(|l| l.ports.clone())
                .collect(),
            in_ports: parts
                .links
                .iter()
                .filter(|l| l.to == worker)
                .map(|l| l.ports.clone())
                .collect(),
            fingerprint: parts.fingerprint(),
        })
    }
}

/// Worker-side tuning.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Send a heartbeat every this many cycles while executing.
    pub heartbeat_every: u64,
    /// How long to wait for the next control frame before concluding
    /// the supervisor is gone.
    pub idle_timeout: Duration,
    /// How long to wait for one boundary value mid-exchange before
    /// reporting a stall.
    pub exchange_timeout: Duration,
    /// Optional per-cycle event cap forwarded to the engine.
    pub event_cap: Option<u64>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            heartbeat_every: 1,
            idle_timeout: Duration::from_secs(30),
            exchange_timeout: Duration::from_secs(5),
            event_cap: None,
        }
    }
}

/// Per-link state on the worker side.
struct OutSide {
    seq: u64,
    hash: u64,
}

struct InSide {
    seq: u64,
    hash: u64,
    /// Values routed to us that we have not consumed yet (a fast
    /// producer may run ahead; per-link FIFO order is preserved).
    queue: VecDeque<BoundaryMsg>,
}

enum BatchOutcome {
    /// Barrier report sent.
    Reported,
    /// A fault frame was sent; the worker idles until rollback.
    Faulted,
    /// A control frame (rollback/shutdown) preempted the batch.
    Control(Frame),
}

/// What one exchange step produced.
enum Staged {
    Ok,
    Fault(DetectionKind),
    Control(Frame),
}

struct ProcWorker<'a, E: Engine> {
    spec: &'a WorkerSpec,
    config: &'a WorkerConfig,
    engine: E,
    out: Vec<OutSide>,
    inn: Vec<InSide>,
    generation: u64,
}

impl<'a, E> ProcWorker<'a, E>
where
    E: Engine,
    E::Snapshot: PortableSnapshot,
{
    fn fresh_engine(spec: &WorkerSpec, config: &WorkerConfig) -> Result<E, PartitionError> {
        let mut engine = E::from_netlist(spec.netlist.clone())?;
        if let Some(cap) = config.event_cap {
            engine.set_event_cap(cap);
        }
        Ok(engine)
    }

    fn new(spec: &'a WorkerSpec, config: &'a WorkerConfig) -> Result<Self, PartitionError> {
        let engine = Self::fresh_engine(spec, config)?;
        let mut worker =
            ProcWorker { spec, config, engine, out: Vec::new(), inn: Vec::new(), generation: 0 };
        worker.reset_links();
        Ok(worker)
    }

    /// Both ends reset link state together (power-on, rollback,
    /// resume), so running hashes always accumulate from a shared
    /// origin and barrier crosschecks stay meaningful.
    fn reset_links(&mut self) {
        self.out =
            self.spec.out_ports.iter().map(|_| OutSide { seq: 0, hash: hash_seed() }).collect();
        self.inn = self
            .spec
            .in_ports
            .iter()
            .map(|_| InSide { seq: 0, hash: hash_seed(), queue: VecDeque::new() })
            .collect();
    }

    fn exchange_send<T: Transport>(
        &mut self,
        transport: &mut T,
        cycle: u64,
    ) -> Result<(), PartitionError> {
        for (li, link) in self.out.iter_mut().enumerate() {
            let values: Vec<i64> =
                self.spec.out_ports[li].iter().map(|p| self.engine.peek(p).unwrap_or(0)).collect();
            let msg = BoundaryMsg::new(link.seq, cycle, values);
            link.hash = msg.fold_into(link.hash);
            link.seq += 1;
            transport.send(&Frame::Boundary {
                generation: self.generation,
                link: u32::try_from(li).unwrap_or(u32::MAX),
                msg,
            })?;
        }
        Ok(())
    }

    /// One routed boundary value for in-link `li`, or whatever
    /// preempted it.
    fn recv_boundary<T: Transport>(
        &mut self,
        transport: &mut T,
        li: usize,
    ) -> Result<Staged, PartitionError> {
        loop {
            if let Some(msg) = self.inn[li].queue.pop_front() {
                return Ok(self.stage_one(li, msg));
            }
            match transport.recv_timeout(self.config.exchange_timeout) {
                Ok(Frame::Boundary { generation, link, msg }) => {
                    if generation != self.generation {
                        continue; // stale, pre-rollback
                    }
                    match self.inn.get_mut(link as usize) {
                        Some(side) => side.queue.push_back(msg),
                        None => return Ok(Staged::Fault(DetectionKind::Sequence)),
                    }
                }
                Ok(frame @ (Frame::Rollback { .. } | Frame::Shutdown)) => {
                    return Ok(Staged::Control(frame))
                }
                Ok(_) => continue, // unexpected control frame: drop
                Err(RecvError::Timeout) => return Ok(Staged::Fault(DetectionKind::Stall)),
                Err(RecvError::Disconnected) => {
                    return Err(transport_err("supervisor disconnected mid-exchange"))
                }
                Err(RecvError::Protocol(e)) => return Err(e),
            }
        }
    }

    /// Verifies one boundary message and stages its values.
    fn stage_one(&mut self, li: usize, msg: BoundaryMsg) -> Staged {
        if let Err(fault) = msg.verify(self.inn[li].seq) {
            return Staged::Fault(match fault {
                LinkFault::Sequence { .. } => DetectionKind::Sequence,
                _ => DetectionKind::Checksum,
            });
        }
        let side = &mut self.inn[li];
        side.hash = msg.fold_into(side.hash);
        side.seq += 1;
        for (port, &value) in self.spec.in_ports[li].iter().zip(&msg.values) {
            if self.engine.set_input(port, value).is_err() {
                return Staged::Fault(DetectionKind::Checksum);
            }
        }
        Staged::Ok
    }

    /// Receives, verifies and stages one value per incoming link.
    fn exchange_recv<T: Transport>(&mut self, transport: &mut T) -> Result<Staged, PartitionError> {
        for li in 0..self.inn.len() {
            match self.recv_boundary(transport, li)? {
                Staged::Ok => {}
                other => return Ok(other),
            }
        }
        Ok(Staged::Ok)
    }

    fn send_fault<T: Transport>(
        &mut self,
        transport: &mut T,
        kind: DetectionKind,
    ) -> Result<BatchOutcome, PartitionError> {
        transport.send(&Frame::Fault {
            worker: self.spec.worker as u32,
            generation: self.generation,
            kind,
        })?;
        Ok(BatchOutcome::Faulted)
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn run_batch<T: Transport>(
        &mut self,
        transport: &mut T,
        start: u64,
        cycles: u64,
        prologue: bool,
        inputs: &[Vec<i64>],
        faults: &[(u64, FaultSpec)],
        stall: Option<(u64, u64)>,
    ) -> Result<BatchOutcome, PartitionError> {
        if prologue {
            self.exchange_send(transport, start)?;
            match self.exchange_recv(transport)? {
                Staged::Ok => {}
                Staged::Fault(kind) => return self.send_fault(transport, kind),
                Staged::Control(frame) => return Ok(BatchOutcome::Control(frame)),
            }
            if let Err(e) = self.engine.try_settle() {
                return self.send_fault(transport, DetectionKind::Engine(e.to_string()));
            }
        }
        let mut outputs = Vec::with_capacity(cycles as usize);
        for offset in 0..cycles {
            let cycle = start + offset;
            if let Some((at, millis)) = stall {
                if at == offset {
                    thread::sleep(Duration::from_millis(millis));
                }
            }
            if offset % self.config.heartbeat_every.max(1) == 0 {
                transport.send(&Frame::Heartbeat {
                    worker: self.spec.worker as u32,
                    generation: self.generation,
                    cycle,
                })?;
            }
            for (i, port) in self.spec.inputs.iter().enumerate() {
                let value = inputs[offset as usize][i];
                if let Err(e) = self.engine.set_input(port, value) {
                    return self.send_fault(transport, DetectionKind::Engine(e.to_string()));
                }
            }
            for (due, spec) in faults {
                if *due == offset {
                    let rebased = rebase(spec.clone(), self.engine.cycle());
                    if let Err(e) = self.engine.inject(&rebased) {
                        return self.send_fault(transport, DetectionKind::Engine(e.to_string()));
                    }
                }
            }
            if let Err(e) = self.engine.try_tick() {
                return self.send_fault(transport, DetectionKind::Engine(e.to_string()));
            }
            self.exchange_send(transport, cycle)?;
            match self.exchange_recv(transport)? {
                Staged::Ok => {}
                Staged::Fault(kind) => return self.send_fault(transport, kind),
                Staged::Control(frame) => return Ok(BatchOutcome::Control(frame)),
            }
            if let Err(e) = self.engine.try_settle() {
                return self.send_fault(transport, DetectionKind::Engine(e.to_string()));
            }
            let row: Vec<i64> =
                self.spec.outputs.iter().map(|p| self.engine.peek(p).unwrap_or(0)).collect();
            outputs.push(row);
        }
        transport.send(&Frame::BarrierReport {
            worker: self.spec.worker as u32,
            generation: self.generation,
            start,
            cycles,
            outputs,
            out_hashes: self.out.iter().map(|l| l.hash).collect(),
            in_hashes: self.inn.iter().map(|l| l.hash).collect(),
            snapshot: self.engine.snapshot().to_bytes(),
        })?;
        Ok(BatchOutcome::Reported)
    }

    /// Applies a rollback frame: power-on reset (empty snapshot) or
    /// restore-from-bytes, link state re-seeded either way.
    fn apply_rollback(&mut self, generation: u64, snapshot: &[u8]) -> Result<(), PartitionError> {
        self.generation = generation;
        if snapshot.is_empty() {
            self.engine = Self::fresh_engine(self.spec, self.config)?;
        } else {
            let decoded = <E::Snapshot as PortableSnapshot>::from_bytes(snapshot)?;
            self.engine.restore(&decoded)?;
        }
        self.reset_links();
        Ok(())
    }
}

/// The worker process's protocol loop: announce, then serve batches
/// and rollbacks until shutdown. Generic over the engine backend and
/// the transport (the in-crate tests drive it over channels; the
/// `dwt_partition_worker` binary runs it over a socket).
///
/// Returns `Ok(())` on a clean shutdown **or** when the supervisor
/// disappears while the worker is idle — a dead supervisor is not a
/// worker error.
///
/// # Errors
///
/// [`PartitionError::Transport`] if the supervisor goes quiet or
/// unreachable mid-protocol; engine construction/restore errors; a
/// protocol violation on the control stream.
pub fn run_worker<E, T>(
    spec: &WorkerSpec,
    transport: &mut T,
    config: &WorkerConfig,
) -> Result<(), PartitionError>
where
    E: Engine,
    E::Snapshot: PortableSnapshot,
    T: Transport,
{
    let mut worker = ProcWorker::<E>::new(spec, config)?;
    transport.send(&Frame::Hello { worker: spec.worker as u32, fingerprint: spec.fingerprint })?;
    // A control frame that preempted a batch is handled here too.
    let mut pending: Option<Frame> = None;
    loop {
        let frame = match pending.take() {
            Some(frame) => frame,
            None => match transport.recv_timeout(config.idle_timeout) {
                Ok(frame) => frame,
                Err(RecvError::Timeout) => return Err(transport_err("supervisor went quiet")),
                Err(RecvError::Disconnected) => return Ok(()),
                Err(RecvError::Protocol(e)) => return Err(e),
            },
        };
        match frame {
            Frame::Shutdown => return Ok(()),
            Frame::Rollback { generation, cycle, snapshot } => {
                worker.apply_rollback(generation, &snapshot)?;
                transport.send(&Frame::RollbackAck {
                    worker: spec.worker as u32,
                    generation,
                    cycle,
                })?;
            }
            Frame::Batch { generation, start, cycles, prologue, inputs, faults, stall } => {
                worker.generation = generation;
                match worker
                    .run_batch(transport, start, cycles, prologue, &inputs, &faults, stall)?
                {
                    BatchOutcome::Reported | BatchOutcome::Faulted => {}
                    BatchOutcome::Control(frame) => pending = Some(frame),
                }
            }
            // Stale boundary values (pre-rollback) or frames outside
            // their window: drop.
            _ => {}
        }
    }
}

// --------------------------------------------------------- supervisor

/// How to launch one worker process. The supervisor appends
/// `--shard <index> --socket <path>` to [`WorkerLauncher::args`].
#[derive(Debug, Clone)]
pub struct WorkerLauncher {
    /// Worker executable (e.g. the `dwt_partition_worker` bench
    /// binary).
    pub program: PathBuf,
    /// Base arguments identifying the design, part count and backend.
    pub args: Vec<String>,
}

/// Chaos directives for the process campaign. Each directive fires
/// once; after the recovery it provokes, the replay runs clean.
#[derive(Debug, Clone, Default)]
pub struct ProcChaos {
    /// `(worker, cycle)`: SIGKILL the worker's process when its
    /// heartbeat reaches that virtual cycle.
    pub kill9: Vec<(usize, u64)>,
    /// `(worker, cycle, millis)`: the worker sleeps that long before
    /// ticking — longer than the liveness window means the supervisor
    /// declares it wedged and respawns it.
    pub stalls: Vec<(usize, u64, u64)>,
    /// After committing this many barriers, truncate the newest
    /// durable record — a simulated torn write. The next rollback or
    /// resume must fall back one barrier, never fail.
    pub torn_after: Option<u64>,
}

/// Supervisor tuning.
#[derive(Clone)]
pub struct ProcConfig {
    /// Cycles per barrier.
    pub snapshot_interval: u64,
    /// A worker silent for longer than this (no frame of any kind,
    /// while its report is outstanding) is declared dead.
    pub liveness: Duration,
    /// Budget for process spawn + engine build + Hello.
    pub hello_timeout: Duration,
    /// Total worker-process respawns allowed per run.
    pub max_respawns: u32,
    /// Rollback-and-replay budget per run.
    pub max_recoveries: u32,
    /// Clock behind the liveness deadlines (ticks are nanoseconds on
    /// the production [`MonotonicClock`]).
    pub clock: Arc<dyn Clock>,
    /// Directory for the per-worker listening sockets. `None`: a fresh
    /// directory under the system temp dir — socket paths must stay
    /// short (`sun_path` is ~100 bytes), so the store dir is
    /// configured separately.
    pub sock_dir: Option<PathBuf>,
    /// Durable barrier store directory. `None`: in-memory barriers
    /// only (a supervisor crash then loses the run).
    pub store_dir: Option<PathBuf>,
    /// Resume from the newest consistent barrier in
    /// [`ProcConfig::store_dir`] instead of starting at cycle 0.
    pub resume: bool,
    /// Durable records kept per run (older ones are pruned).
    pub keep_barriers: usize,
    /// Stop cleanly (`completed: false`) after this many barrier
    /// commits — supervisor-restart tests use this to simulate a
    /// supervisor crash with a consistent store behind it.
    pub stop_after_barriers: Option<u64>,
    /// Fault-injection campaign.
    pub chaos: ProcChaos,
}

impl std::fmt::Debug for ProcConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcConfig")
            .field("snapshot_interval", &self.snapshot_interval)
            .field("liveness", &self.liveness)
            .field("hello_timeout", &self.hello_timeout)
            .field("max_respawns", &self.max_respawns)
            .field("max_recoveries", &self.max_recoveries)
            .field("sock_dir", &self.sock_dir)
            .field("store_dir", &self.store_dir)
            .field("resume", &self.resume)
            .field("keep_barriers", &self.keep_barriers)
            .field("stop_after_barriers", &self.stop_after_barriers)
            .field("chaos", &self.chaos)
            .finish_non_exhaustive()
    }
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            snapshot_interval: 32,
            liveness: Duration::from_secs(2),
            hello_timeout: Duration::from_secs(20),
            max_respawns: 8,
            max_recoveries: 8,
            clock: Arc::new(MonotonicClock::new()),
            sock_dir: None,
            store_dir: None,
            resume: false,
            keep_barriers: 4,
            stop_after_barriers: None,
            chaos: ProcChaos::default(),
        }
    }
}

/// Outcome of one process-mode run.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// The committed per-cycle outputs.
    pub outputs: FrameOutputs,
    /// Everything the detectors fired on.
    pub detections: Vec<Detection>,
    /// Rollback-and-replay recoveries performed.
    pub recoveries: u32,
    /// Worker processes respawned.
    pub respawns: u32,
    /// Barriers committed.
    pub barriers: u64,
    /// Cycles re-executed during replays.
    pub replayed_cycles: u64,
    /// `Some(cycle)` if the run resumed from a durable barrier.
    pub resumed_from: Option<u64>,
    /// `false` when [`ProcConfig::stop_after_barriers`] stopped the
    /// run early (outputs then cover only the committed prefix).
    pub completed: bool,
}

enum Event {
    Frame { worker: usize, conn: u64, frame: Frame },
    Closed { worker: usize, conn: u64 },
    Malformed { worker: usize, conn: u64 },
}

struct WorkerProc {
    child: Child,
    writer: SocketTransport,
    /// Connection id; events from an older connection of a respawned
    /// worker are dropped by tag.
    conn: u64,
    alive: bool,
    /// Clock tick of the last frame seen from this worker.
    last_seen: u64,
    reader: Option<JoinHandle<()>>,
}

struct Report {
    outputs: Vec<Vec<i64>>,
    out_hashes: Vec<u64>,
    in_hashes: Vec<u64>,
    snapshot: Vec<u8>,
}

/// Where a rollback restores from.
enum Target {
    Durable(BarrierRecord),
    Memory(Vec<Vec<u8>>),
    PowerOn,
}

/// Distinguishes successive supervisor runs in one process when the
/// caller does not pin [`ProcConfig::sock_dir`].
static SOCK_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Supervises one OS process per shard. See the module docs for the
/// protocol and recovery model.
pub struct ProcSupervisor<'a> {
    parts: &'a PartitionedNetlist,
    launcher: WorkerLauncher,
    config: ProcConfig,
}

impl<'a> ProcSupervisor<'a> {
    /// Creates a supervisor over an existing partition.
    #[must_use]
    pub fn new(
        parts: &'a PartitionedNetlist,
        launcher: WorkerLauncher,
        config: ProcConfig,
    ) -> Self {
        ProcSupervisor { parts, launcher, config }
    }

    /// Runs one frame across the worker processes.
    ///
    /// # Errors
    ///
    /// * [`PartitionError::Stimulus`] for incomplete stimulus.
    /// * [`PartitionError::Spawn`] if a worker cannot be launched or
    ///   fails admission.
    /// * [`PartitionError::Exhausted`] when the recovery or respawn
    ///   budget runs out (the caller decides how to degrade).
    /// * [`PartitionError::Store`] on durable-store failures.
    pub fn run(&self, stim: &Stimulus) -> Result<ProcReport, PartitionError> {
        check_stimulus(self.parts, stim)?;
        let (event_tx, event_rx) = mpsc::channel();
        let mut driver = Driver::new(self.parts, &self.launcher, &self.config, event_tx)?;
        let result = driver.run(stim, &event_rx);
        driver.shutdown();
        result
    }
}

struct Driver<'a> {
    parts: &'a PartitionedNetlist,
    launcher: &'a WorkerLauncher,
    config: &'a ProcConfig,
    fingerprint: u64,
    sock_dir: PathBuf,
    store: Option<RunStore>,
    listeners: Vec<UnixListener>,
    event_tx: Sender<Event>,
    procs: Vec<WorkerProc>,
    next_conn: u64,
    /// `out_route[w][out_idx]` → `(consumer, consumer's in_idx)`.
    out_route: Vec<Vec<(usize, u32)>>,
    /// `(producer, out_idx, consumer, in_idx)` per global link.
    crosslinks: Vec<(usize, usize, usize, usize)>,
    generation: u64,
    liveness_ticks: u64,
    fired_kills: Vec<bool>,
    fired_stalls: Vec<bool>,
    torn_fired: bool,
    respawns: u32,
    detections: Vec<Detection>,
}

impl<'a> Driver<'a> {
    fn new(
        parts: &'a PartitionedNetlist,
        launcher: &'a WorkerLauncher,
        config: &'a ProcConfig,
        event_tx: Sender<Event>,
    ) -> Result<Self, PartitionError> {
        let sock_dir = config.sock_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "dwt-proc-{}-{}",
                std::process::id(),
                SOCK_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });
        std::fs::create_dir_all(&sock_dir).map_err(|e| spawn_err(format!("socket dir: {e}")))?;
        let store = match &config.store_dir {
            Some(dir) => Some(RunStore::open(dir.clone())?),
            None => None,
        };
        let n = parts.parts();
        let mut listeners = Vec::with_capacity(n);
        for w in 0..n {
            let path = sock_dir.join(format!("worker-{w}.sock"));
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)
                .map_err(|e| spawn_err(format!("bind {}: {e}", path.display())))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| spawn_err(format!("nonblocking listener: {e}")))?;
            listeners.push(listener);
        }
        let mut out_route: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        let mut crosslinks = Vec::with_capacity(parts.links.len());
        let mut out_counts = vec![0usize; n];
        let mut in_counts = vec![0u32; n];
        for link in &parts.links {
            out_route[link.from].push((link.to, in_counts[link.to]));
            crosslinks.push((
                link.from,
                out_counts[link.from],
                link.to,
                in_counts[link.to] as usize,
            ));
            out_counts[link.from] += 1;
            in_counts[link.to] += 1;
        }
        Ok(Driver {
            parts,
            launcher,
            config,
            fingerprint: parts.fingerprint(),
            sock_dir,
            store,
            listeners,
            event_tx,
            procs: Vec::new(),
            next_conn: 0,
            out_route,
            crosslinks,
            generation: 0,
            liveness_ticks: u64::try_from(config.liveness.as_nanos()).unwrap_or(u64::MAX),
            fired_kills: vec![false; config.chaos.kill9.len()],
            fired_stalls: vec![false; config.chaos.stalls.len()],
            torn_fired: false,
            respawns: 0,
            detections: Vec::new(),
        })
    }

    fn now(&self) -> u64 {
        self.config.clock.now()
    }

    fn detect(&mut self, worker: Option<usize>, batch_start: u64, kind: DetectionKind) {
        self.detections.push(Detection { worker, batch_start, kind });
    }

    /// Spawns worker `w`'s process, accepts its connection, verifies
    /// its Hello, and starts its reader thread.
    #[allow(clippy::too_many_lines)]
    fn spawn_worker(&mut self, w: usize) -> Result<WorkerProc, PartitionError> {
        let path = self.sock_dir.join(format!("worker-{w}.sock"));
        let mut child = Command::new(&self.launcher.program)
            .args(&self.launcher.args)
            .arg("--shard")
            .arg(w.to_string())
            .arg("--socket")
            .arg(&path)
            .spawn()
            .map_err(|e| spawn_err(format!("worker {w}: {e}")))?;
        // Non-blocking accept under a wall-clock budget: process
        // startup plus engine build can be slow in debug builds.
        let deadline = Instant::now() + self.config.hello_timeout;
        let stream = loop {
            match self.listeners[w].accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(spawn_err(format!("worker {w}: no connection in time")));
                    }
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(spawn_err(format!("worker {w} exited at launch: {status}")));
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(spawn_err(format!("worker {w} accept: {e}")));
                }
            }
        };
        let _ = stream.set_nonblocking(false);
        // A wedged worker must not block the hub's writes forever.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let writer_stream =
            stream.try_clone().map_err(|e| spawn_err(format!("worker {w} clone: {e}")))?;
        let mut reader = SocketTransport::new(stream);
        // Admission: the worker proves it rebuilt the same cut. Read
        // the Hello synchronously so the reader thread starts with a
        // clean stream position.
        match reader.recv_timeout(self.config.hello_timeout) {
            Ok(Frame::Hello { worker, fingerprint })
                if worker as usize == w && fingerprint == self.fingerprint => {}
            Ok(Frame::Hello { fingerprint, .. }) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(spawn_err(format!(
                    "worker {w} admission refused: fingerprint {fingerprint:#x} != {:#x}",
                    self.fingerprint
                )));
            }
            Ok(other) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(spawn_err(format!("worker {w} sent {other:?} instead of Hello")));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(spawn_err(format!("worker {w} hello: {e}")));
            }
        }
        let conn = self.next_conn;
        self.next_conn += 1;
        let tx = self.event_tx.clone();
        let handle = thread::Builder::new()
            .name(format!("dwt-proc-reader-{w}"))
            .spawn(move || reader_main(w, conn, reader, &tx))
            .map_err(|e| spawn_err(format!("reader thread: {e}")))?;
        let last_seen = self.now();
        Ok(WorkerProc {
            child,
            writer: SocketTransport::new(writer_stream),
            conn,
            alive: true,
            last_seen,
            reader: Some(handle),
        })
    }

    /// SIGKILLs and reaps worker `w` (idempotent).
    fn kill_worker(&mut self, w: usize) {
        let proc = &mut self.procs[w];
        proc.alive = false;
        let _ = proc.child.kill();
        let _ = proc.child.wait();
        if let Some(handle) = proc.reader.take() {
            let _ = handle.join();
        }
    }

    /// Respawns worker `w` against the bounded budget.
    fn respawn_worker(&mut self, w: usize) -> Result<(), PartitionError> {
        self.kill_worker(w);
        self.respawns += 1;
        if self.respawns > self.config.max_respawns {
            return Err(PartitionError::Exhausted {
                detail: format!("respawn budget ({}) exhausted", self.config.max_respawns),
            });
        }
        let fresh = self.spawn_worker(w)?;
        self.procs[w] = fresh;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        &mut self,
        stim: &Stimulus,
        events: &Receiver<Event>,
    ) -> Result<ProcReport, PartitionError> {
        let n = self.parts.parts();
        let mut committed = FrameOutputs::default();
        for shard in &self.parts.shards {
            for out in &shard.outputs {
                committed.ports.insert(out.clone(), Vec::new());
            }
        }
        let mut cursor: u64 = 0;
        let mut snapshots: Option<Vec<Vec<u8>>> = None;
        let mut resumed_from = None;
        if self.config.resume {
            let store = self.store.as_ref().ok_or_else(|| PartitionError::Store {
                detail: "resume requested without a store directory".into(),
            })?;
            if let Some(record) = store.latest_consistent()? {
                if record.fingerprint != self.fingerprint {
                    return Err(PartitionError::Store {
                        detail: format!(
                            "store fingerprint {:#x} does not match this cut ({:#x})",
                            record.fingerprint, self.fingerprint
                        ),
                    });
                }
                cursor = record.cycle;
                committed.ports = record.outputs.clone();
                snapshots = Some(record.workers.iter().map(|b| b.snapshot.clone()).collect());
                resumed_from = Some(record.cycle);
            }
        }

        // Launch the fleet.
        for w in 0..n {
            let proc = self.spawn_worker(w)?;
            self.procs.push(proc);
        }
        // A resumed run seeds every worker from the durable barrier
        // before the first batch.
        if let Some(blobs) = snapshots.clone() {
            let blobs: Vec<Option<Vec<u8>>> = blobs.into_iter().map(Some).collect();
            self.rollback_to(cursor, &blobs, events)?;
        }

        let mut recoveries: u32 = 0;
        let mut barriers: u64 = 0;
        let mut replayed: u64 = 0;

        while cursor < stim.cycles {
            let batch_len = self.config.snapshot_interval.min(stim.cycles - cursor);
            let prologue = cursor == 0 && snapshots.is_none();
            self.send_batches(stim, cursor, batch_len, prologue);
            let reports = self.collect_batch(cursor, events);

            let mut batch_ok = reports.iter().all(Option::is_some);
            if batch_ok {
                // Barrier crosscheck: both ends of every link must
                // have hashed the same value stream.
                for &(producer, out_idx, consumer, in_idx) in &self.crosslinks {
                    let produced = reports[producer].as_ref().map(|r| r.out_hashes[out_idx]);
                    let consumed = reports[consumer].as_ref().map(|r| r.in_hashes[in_idx]);
                    if produced != consumed {
                        self.detections.push(Detection {
                            worker: Some(consumer),
                            batch_start: cursor,
                            kind: DetectionKind::LinkHashMismatch,
                        });
                        batch_ok = false;
                    }
                }
            }

            if batch_ok {
                let mut blobs = Vec::with_capacity(n);
                for (w, report) in reports.into_iter().enumerate() {
                    let report = report.expect("batch_ok implies every report present");
                    for (i, port) in self.parts.shards[w].outputs.iter().enumerate() {
                        let sink = committed.ports.get_mut(port).expect("port registered");
                        sink.extend(report.outputs.iter().map(|row| row[i]));
                    }
                    blobs.push(WorkerBlob {
                        snapshot: report.snapshot,
                        out_links: report.out_hashes.iter().map(|&h| (0, h)).collect(),
                        in_links: report.in_hashes.iter().map(|&h| (0, h)).collect(),
                    });
                }
                cursor += batch_len;
                barriers += 1;
                if let Some(store) = &self.store {
                    let record = BarrierRecord {
                        cycle: cursor,
                        fingerprint: self.fingerprint,
                        workers: blobs.clone(),
                        outputs: committed.ports.clone(),
                    };
                    let path = store.save(&record)?;
                    let _ = store.prune(self.config.keep_barriers.max(1));
                    if self.config.chaos.torn_after == Some(barriers) && !self.torn_fired {
                        self.torn_fired = true;
                        tear_record(&path)?;
                    }
                }
                snapshots = Some(blobs.into_iter().map(|b| b.snapshot).collect());
                if self.config.stop_after_barriers == Some(barriers) && cursor < stim.cycles {
                    return Ok(ProcReport {
                        outputs: committed,
                        detections: std::mem::take(&mut self.detections),
                        recoveries,
                        respawns: self.respawns,
                        barriers,
                        replayed_cycles: replayed,
                        resumed_from,
                        completed: false,
                    });
                }
            } else {
                recoveries += 1;
                replayed += batch_len;
                if recoveries > self.config.max_recoveries {
                    return Err(PartitionError::Exhausted {
                        detail: format!(
                            "recovery budget ({}) exhausted at cycle {cursor}",
                            self.config.max_recoveries
                        ),
                    });
                }
                // Restore target: the durable store is authoritative
                // when configured (a torn newest record falls back one
                // barrier); the in-memory barrier otherwise.
                let target = if let Some(store) = &self.store {
                    match store.latest_consistent()? {
                        Some(record) if record.fingerprint == self.fingerprint => {
                            Target::Durable(record)
                        }
                        _ => Target::PowerOn,
                    }
                } else {
                    match snapshots.clone() {
                        Some(blobs) => Target::Memory(blobs),
                        None => Target::PowerOn,
                    }
                };
                match target {
                    Target::Durable(record) => {
                        if record.cycle < cursor {
                            // Fell back behind the in-memory commit
                            // point: rewind the committed prefix too.
                            replayed += cursor - record.cycle;
                            committed.ports = record.outputs.clone();
                            cursor = record.cycle;
                        }
                        let blobs: Vec<Option<Vec<u8>>> =
                            record.workers.iter().map(|b| Some(b.snapshot.clone())).collect();
                        snapshots = Some(record.workers.into_iter().map(|b| b.snapshot).collect());
                        self.rollback_to(cursor, &blobs, events)?;
                    }
                    Target::Memory(blobs) => {
                        let blobs: Vec<Option<Vec<u8>>> = blobs.into_iter().map(Some).collect();
                        self.rollback_to(cursor, &blobs, events)?;
                    }
                    Target::PowerOn => {
                        replayed += cursor;
                        cursor = 0;
                        for values in committed.ports.values_mut() {
                            values.clear();
                        }
                        snapshots = None;
                        self.rollback_to(0, &vec![None; n], events)?;
                    }
                }
            }
        }
        Ok(ProcReport {
            outputs: committed,
            detections: std::mem::take(&mut self.detections),
            recoveries,
            respawns: self.respawns,
            barriers,
            replayed_cycles: replayed,
            resumed_from,
            completed: true,
        })
    }

    /// Distributes one batch to every worker.
    fn send_batches(&mut self, stim: &Stimulus, cursor: u64, batch_len: u64, prologue: bool) {
        let generation = self.generation;
        for w in 0..self.parts.parts() {
            let shard = &self.parts.shards[w];
            let inputs: Vec<Vec<i64>> = (0..batch_len)
                .map(|o| {
                    shard.inputs.iter().map(|p| stim.inputs[p][(cursor + o) as usize]).collect()
                })
                .collect();
            let mut stall = None;
            for (i, &(sw, sc, millis)) in self.config.chaos.stalls.iter().enumerate() {
                if sw == w && sc >= cursor && sc < cursor + batch_len && !self.fired_stalls[i] {
                    self.fired_stalls[i] = true;
                    stall = Some((sc - cursor, millis));
                }
            }
            let frame = Frame::Batch {
                generation,
                start: cursor,
                cycles: batch_len,
                prologue,
                inputs,
                faults: Vec::new(),
                stall,
            };
            let now = self.now();
            let proc = &mut self.procs[w];
            proc.last_seen = now;
            // A send failure means the worker died; the collect loop
            // will see the close or the silence.
            let _ = proc.writer.send(&frame);
        }
    }

    /// Collects one barrier report per worker, routing boundary
    /// traffic and policing liveness meanwhile. All-`None` means the
    /// batch failed and a rollback is due.
    #[allow(clippy::too_many_lines)]
    fn collect_batch(&mut self, cursor: u64, events: &Receiver<Event>) -> Vec<Option<Report>> {
        let n = self.parts.parts();
        let mut reports: Vec<Option<Report>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        let mut failed = false;
        while received < n && !failed {
            match events.recv_timeout(Duration::from_millis(10)) {
                Ok(Event::Frame { worker, conn, frame }) => {
                    if self.procs[worker].conn != conn {
                        continue; // stale connection
                    }
                    let now = self.now();
                    self.procs[worker].last_seen = now;
                    match frame {
                        Frame::Boundary { generation, link, msg } => {
                            if generation != self.generation {
                                continue;
                            }
                            let Some(&(consumer, in_idx)) =
                                self.out_route[worker].get(link as usize)
                            else {
                                self.detect(Some(worker), cursor, DetectionKind::Sequence);
                                failed = true;
                                continue;
                            };
                            let routed = Frame::Boundary { generation, link: in_idx, msg };
                            // A failed forward surfaces as the
                            // consumer's own silence or close.
                            let _ = self.procs[consumer].writer.send(&routed);
                        }
                        Frame::Heartbeat { generation, cycle, .. } => {
                            if generation != self.generation {
                                continue;
                            }
                            for (i, &(kw, kc)) in self.config.chaos.kill9.iter().enumerate() {
                                if kw == worker && cycle >= kc && !self.fired_kills[i] {
                                    self.fired_kills[i] = true;
                                    // SIGKILL mid-window; the reader
                                    // thread reports the close.
                                    let _ = self.procs[worker].child.kill();
                                }
                            }
                        }
                        Frame::BarrierReport {
                            generation,
                            start,
                            outputs,
                            out_hashes,
                            in_hashes,
                            snapshot,
                            ..
                        } => {
                            if generation != self.generation || start != cursor {
                                continue;
                            }
                            if reports[worker].is_none() {
                                received += 1;
                            }
                            reports[worker] =
                                Some(Report { outputs, out_hashes, in_hashes, snapshot });
                        }
                        Frame::Fault { generation, kind, .. } => {
                            if generation != self.generation {
                                continue;
                            }
                            self.detect(Some(worker), cursor, kind);
                            failed = true;
                        }
                        // Hellos/acks outside their windows: ignore.
                        _ => {}
                    }
                }
                Ok(Event::Closed { worker, conn }) => {
                    if self.procs[worker].conn != conn {
                        continue;
                    }
                    self.procs[worker].alive = false;
                    self.detect(Some(worker), cursor, DetectionKind::Crash);
                    failed = true;
                }
                Ok(Event::Malformed { worker, conn }) => {
                    if self.procs[worker].conn != conn {
                        continue;
                    }
                    // Garbage on the control stream: framing is lost,
                    // the worker cannot be trusted — treat as dead.
                    self.detect(Some(worker), cursor, DetectionKind::Checksum);
                    self.kill_worker(worker);
                    failed = true;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    failed = true;
                }
            }
            if !failed {
                // Liveness: heartbeats (or any traffic) must keep
                // every unreported worker fresh.
                let now = self.now();
                for (w, report) in reports.iter().enumerate() {
                    if report.is_none()
                        && now.saturating_sub(self.procs[w].last_seen) > self.liveness_ticks
                    {
                        self.detect(Some(w), cursor, DetectionKind::Stall);
                        self.kill_worker(w);
                        failed = true;
                    }
                }
            }
        }
        if failed {
            // Poison partial results so the caller rolls back.
            for slot in &mut reports {
                *slot = None;
            }
        }
        reports
    }

    /// Generation-bump rollback: respawn the dead, restore everyone to
    /// `cycle` (power-on where a blob is `None`), await every ack.
    fn rollback_to(
        &mut self,
        cycle: u64,
        blobs: &[Option<Vec<u8>>],
        events: &Receiver<Event>,
    ) -> Result<(), PartitionError> {
        let n = self.parts.parts();
        self.generation += 1;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > self.config.max_respawns.max(1) {
                return Err(PartitionError::Exhausted {
                    detail: "rollback could not assemble a live fleet".into(),
                });
            }
            for w in 0..n {
                if !self.procs[w].alive {
                    self.respawn_worker(w)?;
                }
            }
            let generation = self.generation;
            let mut send_failed = false;
            for (w, blob) in blobs.iter().enumerate() {
                let snapshot = blob.clone().unwrap_or_default();
                let frame = Frame::Rollback { generation, cycle, snapshot };
                if self.procs[w].writer.send(&frame).is_err() {
                    self.procs[w].alive = false;
                    send_failed = true;
                }
            }
            if send_failed {
                continue;
            }
            // Await one ack per worker under a liveness-scaled
            // deadline (restore includes an engine rebuild on
            // power-on resets).
            let deadline = Deadline::after(
                Arc::clone(&self.config.clock),
                self.liveness_ticks.saturating_mul(4),
            );
            let mut acked = vec![false; n];
            let mut acks = 0usize;
            while acks < n && !deadline.expired() {
                match events.recv_timeout(Duration::from_millis(10)) {
                    Ok(Event::Frame { worker, conn, frame }) => {
                        if self.procs[worker].conn != conn {
                            continue;
                        }
                        let now = self.now();
                        self.procs[worker].last_seen = now;
                        if let Frame::RollbackAck { generation: g, .. } = frame {
                            if g == generation && !acked[worker] {
                                acked[worker] = true;
                                acks += 1;
                            }
                        }
                        // Everything else mid-rollback is stale.
                    }
                    Ok(Event::Closed { worker, conn } | Event::Malformed { worker, conn }) => {
                        if self.procs[worker].conn == conn {
                            self.procs[worker].alive = false;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            if acks == n {
                return Ok(());
            }
            // Kill the non-ackers and go around (bounded by the
            // attempt counter and the respawn budget).
            for (w, ok) in acked.iter().enumerate() {
                if !ok {
                    self.kill_worker(w);
                }
            }
        }
    }

    /// Clean teardown: shutdown frames, a short grace period, SIGKILL
    /// stragglers, reap everything, remove the socket dir if we own
    /// it.
    fn shutdown(&mut self) {
        for proc in &mut self.procs {
            let _ = proc.writer.send(&Frame::Shutdown);
        }
        let grace = Instant::now() + Duration::from_millis(500);
        for w in 0..self.procs.len() {
            loop {
                match self.procs[w].child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < grace => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = self.procs[w].child.kill();
                        let _ = self.procs[w].child.wait();
                        break;
                    }
                }
            }
            self.procs[w].alive = false;
            if let Some(handle) = self.procs[w].reader.take() {
                let _ = handle.join();
            }
        }
        self.listeners.clear();
        if self.config.sock_dir.is_none() {
            let _ = std::fs::remove_dir_all(&self.sock_dir);
        }
    }
}

/// Reader-thread body: pump frames into the shared event queue until
/// the socket closes or the supervisor goes away.
fn reader_main(worker: usize, conn: u64, mut transport: SocketTransport, tx: &Sender<Event>) {
    loop {
        match transport.recv_timeout(Duration::from_millis(200)) {
            Ok(frame) => {
                if tx.send(Event::Frame { worker, conn, frame }).is_err() {
                    return;
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Disconnected) => {
                let _ = tx.send(Event::Closed { worker, conn });
                return;
            }
            Err(RecvError::Protocol(_)) => {
                let _ = tx.send(Event::Malformed { worker, conn });
                return;
            }
        }
    }
}

/// Simulated torn write: truncate a durable record mid-body.
fn tear_record(path: &std::path::Path) -> Result<(), PartitionError> {
    let tear = |e: std::io::Error| PartitionError::Store { detail: format!("tear: {e}") };
    let len = std::fs::metadata(path).map_err(tear)?.len();
    let file = std::fs::OpenOptions::new().write(true).open(path).map_err(tear)?;
    file.set_len(len / 2).map_err(tear)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{partition, CutOptions};
    use crate::runner::run_single;
    use crate::transport::ChannelTransport;
    use dwt_rtl::builder::NetlistBuilder;
    use dwt_rtl::sim::Simulator;
    use std::collections::BTreeMap;

    /// The same feed-forward pipeline the cut tests use: `stages`
    /// add-one registers in a row.
    fn pipeline(stages: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let one = b.constant(1, 8).unwrap();
        let mut bus = b.input("x", 8).unwrap();
        for s in 0..stages {
            let sum = b.carry_add(&format!("add{s}"), &bus, &one, 8).unwrap();
            bus = b.register(&format!("r{s}"), &sum).unwrap();
        }
        b.output("y", &bus).unwrap();
        b.finish().unwrap()
    }

    fn stimulus(cycles: u64) -> Stimulus {
        let mut inputs = BTreeMap::new();
        inputs.insert("x".to_string(), (0..cycles as i64).map(|c| (c % 17) - 8).collect());
        Stimulus { cycles, inputs }
    }

    #[test]
    fn worker_spec_mirrors_the_cut() {
        let netlist = pipeline(4);
        let parts = partition(&netlist, 2, &CutOptions::default()).unwrap();
        let spec0 = WorkerSpec::from_cut(&parts, 0).unwrap();
        let spec1 = WorkerSpec::from_cut(&parts, 1).unwrap();
        assert_eq!(spec0.fingerprint, parts.fingerprint());
        assert_eq!(spec1.fingerprint, parts.fingerprint());
        let outs = spec0.out_ports.len() + spec1.out_ports.len();
        let ins = spec0.in_ports.len() + spec1.in_ports.len();
        assert_eq!(outs, parts.links.len());
        assert_eq!(ins, parts.links.len());
        assert!(matches!(WorkerSpec::from_cut(&parts, 2), Err(PartitionError::Spawn { .. })));
    }

    /// Drives two real `run_worker` loops over channel transports with
    /// a hand-written hub: batches out, boundaries routed, reports
    /// crosschecked, then a power-on rollback and a full bit-exact
    /// replay against the single-engine oracle.
    #[test]
    fn run_worker_speaks_the_protocol_end_to_end() {
        let netlist = pipeline(4);
        let parts = partition(&netlist, 2, &CutOptions::default()).unwrap();
        let stim = stimulus(24);
        let specs: Vec<WorkerSpec> =
            (0..2).map(|w| WorkerSpec::from_cut(&parts, w).unwrap()).collect();

        // out_route[w][out_idx] = (consumer, consumer_in_idx)
        let mut out_route: Vec<Vec<(usize, u32)>> = vec![Vec::new(); 2];
        let mut in_counts = [0u32; 2];
        for link in &parts.links {
            out_route[link.from].push((link.to, in_counts[link.to]));
            in_counts[link.to] += 1;
        }

        let mut hubs = Vec::new();
        let mut handles = Vec::new();
        for spec in specs {
            let (mut worker_end, hub_end) = ChannelTransport::pair();
            hubs.push(hub_end);
            handles.push(std::thread::spawn(move || {
                run_worker::<Simulator, _>(&spec, &mut worker_end, &WorkerConfig::default())
            }));
        }
        for hub in &mut hubs {
            match hub.recv_timeout(Duration::from_secs(5)).unwrap() {
                Frame::Hello { fingerprint, .. } => {
                    assert_eq!(fingerprint, parts.fingerprint());
                }
                other => panic!("expected Hello, got {other:?}"),
            }
        }

        /// One batch across both workers: send, route, collect.
        /// Returns per-worker (outputs, out_hashes, in_hashes).
        #[allow(clippy::type_complexity, clippy::too_many_arguments)]
        fn drive_batch(
            hubs: &mut [ChannelTransport],
            out_route: &[Vec<(usize, u32)>],
            parts: &PartitionedNetlist,
            stim: &Stimulus,
            generation: u64,
            start: u64,
            cycles: u64,
            prologue: bool,
        ) -> Vec<(Vec<Vec<i64>>, Vec<u64>, Vec<u64>)> {
            for (w, hub) in hubs.iter_mut().enumerate() {
                let shard = &parts.shards[w];
                let inputs: Vec<Vec<i64>> = (0..cycles)
                    .map(|o| {
                        shard.inputs.iter().map(|p| stim.inputs[p][(start + o) as usize]).collect()
                    })
                    .collect();
                hub.send(&Frame::Batch {
                    generation,
                    start,
                    cycles,
                    prologue,
                    inputs,
                    faults: Vec::new(),
                    stall: None,
                })
                .unwrap();
            }
            // Route until both reports arrive. Per-channel FIFO order
            // means a report is always the last frame of its batch, so
            // once both reports are in, every boundary was routed.
            let mut reports: Vec<Option<(Vec<Vec<i64>>, Vec<u64>, Vec<u64>)>> = vec![None, None];
            let mut received = 0;
            while received < 2 {
                for w in 0..2 {
                    if reports[w].is_some() {
                        continue;
                    }
                    match hubs[w].recv_timeout(Duration::from_millis(50)) {
                        Ok(Frame::Boundary { generation, link, msg }) => {
                            let (consumer, in_idx) = out_route[w][link as usize];
                            hubs[consumer]
                                .send(&Frame::Boundary { generation, link: in_idx, msg })
                                .unwrap();
                        }
                        Ok(Frame::Heartbeat { .. }) => {}
                        Ok(Frame::BarrierReport {
                            start: s,
                            outputs,
                            out_hashes,
                            in_hashes,
                            ..
                        }) => {
                            assert_eq!(s, start);
                            reports[w] = Some((outputs, out_hashes, in_hashes));
                            received += 1;
                        }
                        Ok(other) => panic!("unexpected frame {other:?}"),
                        Err(RecvError::Timeout) => {}
                        Err(e) => panic!("hub recv: {e}"),
                    }
                }
            }
            reports.into_iter().map(Option::unwrap).collect()
        }

        #[allow(clippy::type_complexity)]
        fn commit(
            parts: &PartitionedNetlist,
            committed: &mut BTreeMap<String, Vec<i64>>,
            reports: &[(Vec<Vec<i64>>, Vec<u64>, Vec<u64>)],
        ) {
            for (w, (outputs, _, _)) in reports.iter().enumerate() {
                for (i, port) in parts.shards[w].outputs.iter().enumerate() {
                    committed
                        .entry(port.clone())
                        .or_default()
                        .extend(outputs.iter().map(|row| row[i]));
                }
            }
        }

        let mut first = BTreeMap::new();
        let r1 = drive_batch(&mut hubs, &out_route, &parts, &stim, 0, 0, 12, true);
        commit(&parts, &mut first, &r1);
        let r2 = drive_batch(&mut hubs, &out_route, &parts, &stim, 0, 12, 12, false);
        commit(&parts, &mut first, &r2);

        // Link hashes crosscheck after each barrier.
        let mut out_counts = [0usize; 2];
        let mut in_idx_counts = [0usize; 2];
        for link in &parts.links {
            let produced = r2[link.from].1[out_counts[link.from]];
            let consumed = r2[link.to].2[in_idx_counts[link.to]];
            assert_eq!(produced, consumed, "link hash mismatch on {:?}", link.ports);
            out_counts[link.from] += 1;
            in_idx_counts[link.to] += 1;
        }

        // Power-on rollback (generation 1), then replay everything:
        // same committed outputs, bit for bit.
        for hub in &mut hubs {
            hub.send(&Frame::Rollback { generation: 1, cycle: 0, snapshot: Vec::new() }).unwrap();
        }
        let mut acks = 0;
        while acks < 2 {
            for hub in &mut hubs {
                match hub.recv_timeout(Duration::from_millis(50)) {
                    Ok(Frame::RollbackAck { generation: 1, .. }) => acks += 1,
                    Ok(_) | Err(RecvError::Timeout) => {}
                    Err(e) => panic!("awaiting ack: {e}"),
                }
            }
        }
        let mut replay = BTreeMap::new();
        let r3 = drive_batch(&mut hubs, &out_route, &parts, &stim, 1, 0, 12, true);
        commit(&parts, &mut replay, &r3);
        let r4 = drive_batch(&mut hubs, &out_route, &parts, &stim, 1, 12, 12, false);
        commit(&parts, &mut replay, &r4);
        assert_eq!(first, replay, "replay diverged from the first pass");

        let oracle = run_single::<Simulator>(&netlist, &stim, None).unwrap();
        assert_eq!(first, oracle.ports, "partitioned run diverged from the oracle");

        for hub in &mut hubs {
            hub.send(&Frame::Shutdown).unwrap();
        }
        for handle in handles {
            handle.join().unwrap().unwrap();
        }
    }

    #[test]
    fn tear_record_truncates_in_place() {
        let dir = std::env::temp_dir().join(format!("dwt-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, vec![0xabu8; 64]).unwrap();
        tear_record(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 32);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
