//! Error type for the partitioning pass and the partition runner.

use std::error::Error as StdError;
use std::fmt;

use dwt_rtl::Error as RtlError;

/// Errors from partitioning, stitching, or distributed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// Zero-way partitions do not exist.
    BadPartCount {
        /// The requested part count.
        parts: usize,
    },
    /// The netlist's combinational clusters cannot populate the
    /// requested number of non-empty shards.
    TooFewClusters {
        /// Clusters available.
        clusters: usize,
        /// Shards requested.
        parts: usize,
    },
    /// The balance-capped chain split is infeasible even with the cap
    /// fully relaxed (degenerate cluster structure).
    UnbalancedCut {
        /// What made the split infeasible.
        detail: String,
    },
    /// Shard reassembly found the shards inconsistent with the
    /// original cell/port structure.
    StitchMismatch {
        /// What did not line up.
        detail: String,
    },
    /// A per-cycle stimulus vector does not cover the ports or cycle
    /// count the run needs.
    Stimulus {
        /// What was missing or mis-sized.
        detail: String,
    },
    /// Spawning a worker thread failed.
    Spawn {
        /// The OS error, stringified.
        detail: String,
    },
    /// A wire frame was malformed: bad magic/version, unknown type,
    /// checksum mismatch, truncation, or an unparseable payload.
    Protocol {
        /// What the decoder found malformed.
        detail: String,
    },
    /// Socket/process plumbing failed (connect, accept, send, recv,
    /// spawn of a worker process).
    Transport {
        /// The OS error, stringified.
        detail: String,
    },
    /// The durable snapshot store failed (I/O error, or no consistent
    /// barrier record where one was required).
    Store {
        /// What went wrong.
        detail: String,
    },
    /// Every rung of the degradation ladder failed — partitioned
    /// execution exhausted its recovery budget, the single-engine
    /// fallback failed, and no golden fallback was available (or it
    /// declined).
    Exhausted {
        /// The terminal failure, for the post-mortem.
        detail: String,
    },
    /// An underlying netlist/engine error.
    Rtl(RtlError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::BadPartCount { parts } => {
                write!(f, "cannot split a netlist into {parts} parts")
            }
            PartitionError::TooFewClusters { clusters, parts } => {
                write!(f, "only {clusters} combinational clusters available for {parts} shards")
            }
            PartitionError::UnbalancedCut { detail } => {
                write!(f, "no balanced cut exists: {detail}")
            }
            PartitionError::StitchMismatch { detail } => {
                write!(f, "shards do not reassemble: {detail}")
            }
            PartitionError::Stimulus { detail } => write!(f, "bad stimulus: {detail}"),
            PartitionError::Spawn { detail } => {
                write!(f, "failed to spawn a partition worker: {detail}")
            }
            PartitionError::Protocol { detail } => {
                write!(f, "malformed wire frame: {detail}")
            }
            PartitionError::Transport { detail } => {
                write!(f, "worker transport failed: {detail}")
            }
            PartitionError::Store { detail } => {
                write!(f, "snapshot store failed: {detail}")
            }
            PartitionError::Exhausted { detail } => {
                write!(f, "all degradation rungs failed: {detail}")
            }
            PartitionError::Rtl(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl StdError for PartitionError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            PartitionError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtlError> for PartitionError {
    fn from(e: RtlError) -> Self {
        PartitionError::Rtl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_its_payload() {
        let cases: Vec<(PartitionError, Vec<&str>)> = vec![
            (PartitionError::BadPartCount { parts: 0 }, vec!["0"]),
            (PartitionError::TooFewClusters { clusters: 3, parts: 8 }, vec!["3", "8"]),
            (
                PartitionError::UnbalancedCut { detail: "one giant cluster".into() },
                vec!["one giant cluster"],
            ),
            (
                PartitionError::StitchMismatch { detail: "cell 7 missing".into() },
                vec!["cell 7 missing"],
            ),
            (PartitionError::Stimulus { detail: "in_even has 3 cycles".into() }, vec!["in_even"]),
            (PartitionError::Spawn { detail: "EAGAIN".into() }, vec!["EAGAIN"]),
            (
                PartitionError::Protocol { detail: "checksum mismatch".into() },
                vec!["checksum mismatch"],
            ),
            (PartitionError::Transport { detail: "ECONNRESET".into() }, vec!["ECONNRESET"]),
            (
                PartitionError::Store { detail: "no consistent barrier".into() },
                vec!["no consistent barrier"],
            ),
            (
                PartitionError::Exhausted { detail: "golden declined".into() },
                vec!["golden declined"],
            ),
            (PartitionError::Rtl(RtlError::UnknownPort { name: "zz".into() }), vec!["zz"]),
        ];
        for (err, needles) in cases {
            let text = err.to_string();
            for needle in needles {
                assert!(text.contains(needle), "{text} missing {needle}");
            }
        }
    }
}
