//! The self-describing byte protocol between the partition supervisor
//! and its shard workers.
//!
//! Thread-mode workers exchange typed values over `mpsc` channels; the
//! process-isolation mode cannot — a worker is a separate address
//! space on the far side of a Unix socket, possibly running a
//! different build if an operator mixes binaries. Every message
//! therefore travels as a **frame** with a self-describing envelope:
//!
//! ```text
//! magic "DWTP" (4) | version (1) | frame type (1) | payload len (4, LE)
//! payload (len bytes)
//! FNV-1a checksum (8, LE) over every preceding byte
//! ```
//!
//! The checksum covers the header *and* payload, so any single-byte
//! substitution anywhere in the frame fails verification (FNV-1a
//! guarantees a one-byte change alters the hash); truncation is caught
//! by the explicit length prefix. Decoding is strict and total: a
//! malformed frame yields [`PartitionError::Protocol`], never a panic
//! — the supervisor treats a worker that sends garbage exactly like a
//! worker that crashed.
//!
//! The same codec carries the lockstep data plane ([`Frame::Boundary`]
//! wrapping the existing [`BoundaryMsg`]) and the control plane
//! (hello/batch/barrier/rollback/fault/shutdown). Thread mode now
//! round-trips boundary messages through these bytes too, so every
//! differential test exercises the wire format, not just the process
//! campaign.
//!
//! Frames after a rollback carry a **generation** counter: the
//! supervisor bumps it on every rollback, and both ends drop frames
//! from older generations, so a stale in-flight boundary value can
//! never be mistaken for its replayed successor.

use dwt_rtl::fault::FaultSpec;

use crate::channel::{fnv1a, hash_seed, BoundaryMsg};
use crate::error::PartitionError;
use crate::runner::DetectionKind;

/// Frame preamble: protocol magic.
pub const MAGIC: [u8; 4] = *b"DWTP";
/// Wire protocol version; bump on any frame/payload layout change.
pub const VERSION: u8 = 1;
/// Bytes in the fixed header (magic + version + type + payload len).
pub const HEADER_LEN: usize = 10;
/// Bytes in the trailing checksum.
pub const CHECKSUM_LEN: usize = 8;
/// Hard ceiling on a frame payload (engine snapshots dominate; even a
/// large shard's snapshot is far below this).
pub const MAX_PAYLOAD: usize = 1 << 26;

const FRAME_HELLO: u8 = 1;
const FRAME_BATCH: u8 = 2;
const FRAME_BOUNDARY: u8 = 3;
const FRAME_HEARTBEAT: u8 = 4;
const FRAME_BARRIER_REPORT: u8 = 5;
const FRAME_ROLLBACK: u8 = 6;
const FRAME_ROLLBACK_ACK: u8 = 7;
const FRAME_FAULT: u8 = 8;
const FRAME_SHUTDOWN: u8 = 9;

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → supervisor, once per connection: identity plus the
    /// FNV fingerprint of the cut it rebuilt, so a worker launched
    /// against the wrong design/part-count is rejected at admission.
    Hello {
        /// Shard index.
        worker: u32,
        /// [`cut_fingerprint`](crate::cut::PartitionedNetlist::fingerprint)
        /// of the worker's partition.
        fingerprint: u64,
    },
    /// Supervisor → worker: run one batch of lockstep cycles.
    Batch {
        /// Rollback generation this batch belongs to.
        generation: u64,
        /// First virtual cycle of the batch.
        start: u64,
        /// Batch length in cycles.
        cycles: u64,
        /// Run the power-on prologue exchange before the first tick.
        prologue: bool,
        /// `inputs[cycle][i]` feeds the worker's `i`-th primary input.
        inputs: Vec<Vec<i64>>,
        /// Transient faults due at `(offset, spec)`.
        faults: Vec<(u64, FaultSpec)>,
        /// Chaos: sleep this many milliseconds before ticking the
        /// given offset (drives heartbeat-stall campaigns).
        stall: Option<(u64, u64)>,
    },
    /// A boundary-value message for one link. Worker → supervisor the
    /// index names the producer's outgoing link; supervisor → worker
    /// it names the consumer's incoming link (the hub rewrites it
    /// while routing).
    Boundary {
        /// Rollback generation the value belongs to.
        generation: u64,
        /// Link index (direction-dependent, see above).
        link: u32,
        /// The sequence-numbered, checksummed payload.
        msg: BoundaryMsg,
    },
    /// Worker → supervisor: periodic liveness beacon while executing.
    Heartbeat {
        /// Shard index.
        worker: u32,
        /// Rollback generation being executed.
        generation: u64,
        /// Virtual cycle most recently completed.
        cycle: u64,
    },
    /// Worker → supervisor: a batch finished; everything the barrier
    /// commit needs.
    BarrierReport {
        /// Shard index.
        worker: u32,
        /// Rollback generation of the batch.
        generation: u64,
        /// First virtual cycle of the batch.
        start: u64,
        /// Batch length in cycles.
        cycles: u64,
        /// `outputs[cycle][i]` is the worker's `i`-th owned output.
        outputs: Vec<Vec<i64>>,
        /// Running hash per outgoing link, after this batch.
        out_hashes: Vec<u64>,
        /// Running hash per incoming link, after this batch.
        in_hashes: Vec<u64>,
        /// Portable engine snapshot at the barrier.
        snapshot: Vec<u8>,
    },
    /// Supervisor → worker: abandon the current generation and restore.
    Rollback {
        /// The new generation; the worker drops frames from older ones.
        generation: u64,
        /// Virtual cycle of the snapshot (0 for power-on).
        cycle: u64,
        /// Portable engine snapshot; empty means power-on reset.
        snapshot: Vec<u8>,
    },
    /// Worker → supervisor: the rollback took effect.
    RollbackAck {
        /// Shard index.
        worker: u32,
        /// Generation now live in the worker.
        generation: u64,
        /// Cycle the worker restored to.
        cycle: u64,
    },
    /// Worker → supervisor: a detection fired inside the worker.
    Fault {
        /// Shard index.
        worker: u32,
        /// Generation the fault occurred in.
        generation: u64,
        /// The detection, in its wire form.
        kind: DetectionKind,
    },
    /// Supervisor → worker: exit cleanly.
    Shutdown,
}

fn bad(detail: impl Into<String>) -> PartitionError {
    PartitionError::Protocol { detail: detail.into() }
}

// --------------------------------------------------------- primitives

/// Little-endian payload writer, shared with the durable store's
/// record codec.
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("collection fits a u32 length"));
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked payload reader, shared with the durable store's
/// record codec.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], PartitionError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("payload needs {n} bytes at offset {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PartitionError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, PartitionError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("bool byte {other}"))),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PartitionError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PartitionError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, PartitionError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length prefix, bounds-checked against the remaining payload
    /// (`min_elem` is the smallest possible encoded element).
    pub(crate) fn len(&mut self, min_elem: usize) -> Result<usize, PartitionError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.buf.len() - self.pos {
            return Err(bad(format!("length {n} exceeds remaining payload")));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, PartitionError> {
        let n = self.len(1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, PartitionError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn finish(self) -> Result<(), PartitionError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing payload bytes", self.buf.len() - self.pos)))
        }
    }
}

// ------------------------------------------------- payload components

/// Appends a [`BoundaryMsg`] to a payload under construction.
fn write_boundary_msg(w: &mut Writer, msg: &BoundaryMsg) {
    w.u64(msg.seq);
    w.u64(msg.cycle);
    w.len(msg.values.len());
    for &v in &msg.values {
        w.i64(v);
    }
    w.u64(msg.checksum);
}

fn read_boundary_msg(r: &mut Reader<'_>) -> Result<BoundaryMsg, PartitionError> {
    let seq = r.u64()?;
    let cycle = r.u64()?;
    let mut values = Vec::with_capacity(r.len(8)?);
    for _ in 0..values.capacity() {
        values.push(r.i64()?);
    }
    let checksum = r.u64()?;
    Ok(BoundaryMsg { seq, cycle, values, checksum })
}

fn write_fault_spec(w: &mut Writer, spec: &FaultSpec) {
    match spec {
        FaultSpec::StuckAt { net, bit, value } => {
            w.u8(0);
            w.str(net);
            w.u64(*bit as u64);
            w.bool(*value);
        }
        FaultSpec::BitFlip { register, bit, cycle } => {
            w.u8(1);
            w.str(register);
            w.u64(*bit as u64);
            w.u64(*cycle);
        }
        FaultSpec::RamUpset { ram, addr, bit, cycle } => {
            w.u8(2);
            w.str(ram);
            w.u64(*addr as u64);
            w.u64(*bit as u64);
            w.u64(*cycle);
        }
    }
}

fn read_fault_spec(r: &mut Reader<'_>) -> Result<FaultSpec, PartitionError> {
    match r.u8()? {
        0 => {
            let net = r.str()?;
            let bit = r.u64()? as usize;
            let value = r.bool()?;
            Ok(FaultSpec::StuckAt { net, bit, value })
        }
        1 => {
            let register = r.str()?;
            let bit = r.u64()? as usize;
            let cycle = r.u64()?;
            Ok(FaultSpec::BitFlip { register, bit, cycle })
        }
        2 => {
            let ram = r.str()?;
            let addr = r.u64()? as usize;
            let bit = r.u64()? as usize;
            let cycle = r.u64()?;
            Ok(FaultSpec::RamUpset { ram, addr, bit, cycle })
        }
        other => Err(bad(format!("bad fault-spec tag {other}"))),
    }
}

fn write_detection(w: &mut Writer, kind: &DetectionKind) {
    match kind {
        DetectionKind::Checksum => w.u8(0),
        DetectionKind::Sequence => w.u8(1),
        DetectionKind::LinkHashMismatch => w.u8(2),
        DetectionKind::OracleMismatch => w.u8(3),
        DetectionKind::Stall => w.u8(4),
        DetectionKind::Crash => w.u8(5),
        DetectionKind::Engine(detail) => {
            w.u8(6);
            w.str(detail);
        }
    }
}

fn read_detection(r: &mut Reader<'_>) -> Result<DetectionKind, PartitionError> {
    match r.u8()? {
        0 => Ok(DetectionKind::Checksum),
        1 => Ok(DetectionKind::Sequence),
        2 => Ok(DetectionKind::LinkHashMismatch),
        3 => Ok(DetectionKind::OracleMismatch),
        4 => Ok(DetectionKind::Stall),
        5 => Ok(DetectionKind::Crash),
        6 => Ok(DetectionKind::Engine(r.str()?)),
        other => Err(bad(format!("bad detection tag {other}"))),
    }
}

fn write_rows(w: &mut Writer, rows: &[Vec<i64>]) {
    w.len(rows.len());
    for row in rows {
        w.len(row.len());
        for &v in row {
            w.i64(v);
        }
    }
}

fn read_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<i64>>, PartitionError> {
    let mut rows = Vec::with_capacity(r.len(4)?);
    for _ in 0..rows.capacity() {
        let mut row = Vec::with_capacity(r.len(8)?);
        for _ in 0..row.capacity() {
            row.push(r.i64()?);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn write_hashes(w: &mut Writer, hashes: &[u64]) {
    w.len(hashes.len());
    for &h in hashes {
        w.u64(h);
    }
}

fn read_hashes(r: &mut Reader<'_>) -> Result<Vec<u64>, PartitionError> {
    let mut hashes = Vec::with_capacity(r.len(8)?);
    for _ in 0..hashes.capacity() {
        hashes.push(r.u64()?);
    }
    Ok(hashes)
}

// ------------------------------------------------------ frame codec

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FRAME_HELLO,
            Frame::Batch { .. } => FRAME_BATCH,
            Frame::Boundary { .. } => FRAME_BOUNDARY,
            Frame::Heartbeat { .. } => FRAME_HEARTBEAT,
            Frame::BarrierReport { .. } => FRAME_BARRIER_REPORT,
            Frame::Rollback { .. } => FRAME_ROLLBACK,
            Frame::RollbackAck { .. } => FRAME_ROLLBACK_ACK,
            Frame::Fault { .. } => FRAME_FAULT,
            Frame::Shutdown => FRAME_SHUTDOWN,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::Hello { worker, fingerprint } => {
                w.u32(*worker);
                w.u64(*fingerprint);
            }
            Frame::Batch { generation, start, cycles, prologue, inputs, faults, stall } => {
                w.u64(*generation);
                w.u64(*start);
                w.u64(*cycles);
                w.bool(*prologue);
                write_rows(&mut w, inputs);
                w.len(faults.len());
                for (offset, spec) in faults {
                    w.u64(*offset);
                    write_fault_spec(&mut w, spec);
                }
                match stall {
                    None => w.u8(0),
                    Some((offset, millis)) => {
                        w.u8(1);
                        w.u64(*offset);
                        w.u64(*millis);
                    }
                }
            }
            Frame::Boundary { generation, link, msg } => {
                w.u64(*generation);
                w.u32(*link);
                write_boundary_msg(&mut w, msg);
            }
            Frame::Heartbeat { worker, generation, cycle } => {
                w.u32(*worker);
                w.u64(*generation);
                w.u64(*cycle);
            }
            Frame::BarrierReport {
                worker,
                generation,
                start,
                cycles,
                outputs,
                out_hashes,
                in_hashes,
                snapshot,
            } => {
                w.u32(*worker);
                w.u64(*generation);
                w.u64(*start);
                w.u64(*cycles);
                write_rows(&mut w, outputs);
                write_hashes(&mut w, out_hashes);
                write_hashes(&mut w, in_hashes);
                w.bytes(snapshot);
            }
            Frame::Rollback { generation, cycle, snapshot } => {
                w.u64(*generation);
                w.u64(*cycle);
                w.bytes(snapshot);
            }
            Frame::RollbackAck { worker, generation, cycle } => {
                w.u32(*worker);
                w.u64(*generation);
                w.u64(*cycle);
            }
            Frame::Fault { worker, generation, kind } => {
                w.u32(*worker);
                w.u64(*generation);
                write_detection(&mut w, kind);
            }
            Frame::Shutdown => {}
        }
        w.buf
    }

    /// Encodes the frame as one self-describing byte string:
    /// header, payload, trailing FNV-1a checksum.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(self.kind());
        buf.extend_from_slice(
            &u32::try_from(payload.len()).expect("payload fits a u32 length").to_le_bytes(),
        );
        buf.extend_from_slice(&payload);
        let checksum = fnv1a(hash_seed(), &buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Decodes one complete frame, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Protocol`] for any malformation: short or
    /// over-long buffer, wrong magic/version, unknown frame type,
    /// length mismatch, checksum mismatch, or a payload that does not
    /// parse as the declared frame type.
    pub fn decode(bytes: &[u8]) -> Result<Frame, PartitionError> {
        let payload_len = header_payload_len(bytes)?;
        let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
        if bytes.len() < total {
            return Err(bad(format!("frame truncated: {} of {total} bytes", bytes.len())));
        }
        if bytes.len() > total {
            return Err(bad(format!("{} trailing bytes after frame", bytes.len() - total)));
        }
        let body = &bytes[..HEADER_LEN + payload_len];
        let declared =
            u64::from_le_bytes(bytes[HEADER_LEN + payload_len..].try_into().expect("8 bytes"));
        let fresh = fnv1a(hash_seed(), body);
        if declared != fresh {
            return Err(bad(format!(
                "frame checksum mismatch ({declared:#018x} != {fresh:#018x})"
            )));
        }
        Frame::decode_payload(bytes[5], &bytes[HEADER_LEN..HEADER_LEN + payload_len])
    }

    fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, PartitionError> {
        let mut r = Reader::new(payload);
        let frame = match kind {
            FRAME_HELLO => Frame::Hello { worker: r.u32()?, fingerprint: r.u64()? },
            FRAME_BATCH => {
                let generation = r.u64()?;
                let start = r.u64()?;
                let cycles = r.u64()?;
                let prologue = r.bool()?;
                let inputs = read_rows(&mut r)?;
                let mut faults = Vec::with_capacity(r.len(2)?);
                for _ in 0..faults.capacity() {
                    let offset = r.u64()?;
                    faults.push((offset, read_fault_spec(&mut r)?));
                }
                let stall = match r.u8()? {
                    0 => None,
                    1 => Some((r.u64()?, r.u64()?)),
                    other => return Err(bad(format!("bad stall tag {other}"))),
                };
                Frame::Batch { generation, start, cycles, prologue, inputs, faults, stall }
            }
            FRAME_BOUNDARY => Frame::Boundary {
                generation: r.u64()?,
                link: r.u32()?,
                msg: read_boundary_msg(&mut r)?,
            },
            FRAME_HEARTBEAT => {
                Frame::Heartbeat { worker: r.u32()?, generation: r.u64()?, cycle: r.u64()? }
            }
            FRAME_BARRIER_REPORT => Frame::BarrierReport {
                worker: r.u32()?,
                generation: r.u64()?,
                start: r.u64()?,
                cycles: r.u64()?,
                outputs: read_rows(&mut r)?,
                out_hashes: read_hashes(&mut r)?,
                in_hashes: read_hashes(&mut r)?,
                snapshot: r.bytes()?,
            },
            FRAME_ROLLBACK => {
                Frame::Rollback { generation: r.u64()?, cycle: r.u64()?, snapshot: r.bytes()? }
            }
            FRAME_ROLLBACK_ACK => {
                Frame::RollbackAck { worker: r.u32()?, generation: r.u64()?, cycle: r.u64()? }
            }
            FRAME_FAULT => Frame::Fault {
                worker: r.u32()?,
                generation: r.u64()?,
                kind: read_detection(&mut r)?,
            },
            FRAME_SHUTDOWN => Frame::Shutdown,
            other => return Err(bad(format!("unknown frame type {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Validates a frame header and returns the declared payload length,
/// so a stream reader knows how many more bytes (payload + checksum)
/// to pull before calling [`Frame::decode`] on the whole buffer.
///
/// # Errors
///
/// [`PartitionError::Protocol`] on a short buffer, bad magic, wrong
/// version, or an absurd payload length.
pub fn header_payload_len(header: &[u8]) -> Result<usize, PartitionError> {
    if header.len() < HEADER_LEN {
        return Err(bad(format!("frame header truncated: {} of {HEADER_LEN} bytes", header.len())));
    }
    if header[..4] != MAGIC {
        return Err(bad(format!("bad magic {:02x?}", &header[..4])));
    }
    if header[4] != VERSION {
        return Err(bad(format!("unsupported wire version {}", header[4])));
    }
    let payload_len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(bad(format!("payload length {payload_len} exceeds cap {MAX_PAYLOAD}")));
    }
    Ok(payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { worker: 3, fingerprint: 0xdead_beef_cafe },
            Frame::Batch {
                generation: 2,
                start: 64,
                cycles: 32,
                prologue: true,
                inputs: vec![vec![1, -2, 3], vec![4, 5, -6]],
                faults: vec![
                    (7, FaultSpec::StuckAt { net: "x".into(), bit: 3, value: true }),
                    (9, FaultSpec::BitFlip { register: "q".into(), bit: 1, cycle: 70 }),
                    (11, FaultSpec::RamUpset { ram: "m".into(), addr: 2, bit: 0, cycle: 71 }),
                ],
                stall: Some((5, 400)),
            },
            Frame::Boundary {
                generation: 1,
                link: 2,
                msg: BoundaryMsg::new(17, 81, vec![-1, 0, i64::MAX >> 1]),
            },
            Frame::Heartbeat { worker: 1, generation: 4, cycle: 96 },
            Frame::BarrierReport {
                worker: 0,
                generation: 4,
                start: 0,
                cycles: 8,
                outputs: vec![vec![10], vec![20]],
                out_hashes: vec![1, 2],
                in_hashes: vec![3],
                snapshot: vec![0xaa; 40],
            },
            Frame::Rollback { generation: 5, cycle: 32, snapshot: vec![1, 2, 3] },
            Frame::Rollback { generation: 6, cycle: 0, snapshot: Vec::new() },
            Frame::RollbackAck { worker: 2, generation: 5, cycle: 32 },
            Frame::Fault {
                worker: 1,
                generation: 3,
                kind: DetectionKind::Engine("diverged".into()),
            },
            Frame::Fault { worker: 0, generation: 0, kind: DetectionKind::Sequence },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            assert_eq!(
                header_payload_len(&bytes).unwrap(),
                bytes.len() - HEADER_LEN - CHECKSUM_LEN
            );
            assert_eq!(Frame::decode(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            for i in 0..bytes.len() {
                for flip in [1u8, 0x80] {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= flip;
                    assert!(
                        matches!(Frame::decode(&corrupt), Err(PartitionError::Protocol { .. })),
                        "byte {i} flipped by {flip:#x} in {frame:?} must be rejected"
                    );
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                assert!(
                    matches!(Frame::decode(&bytes[..cut]), Err(PartitionError::Protocol { .. })),
                    "truncation at {cut} of {frame:?} must be rejected"
                );
            }
            let mut long = bytes;
            long.push(0);
            assert!(matches!(Frame::decode(&long), Err(PartitionError::Protocol { .. })));
        }
    }

    #[test]
    fn header_rejects_bad_magic_version_and_absurd_lengths() {
        let good = Frame::Shutdown.encode();
        assert!(header_payload_len(&good[..4]).is_err(), "short header");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(header_payload_len(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = VERSION + 1;
        assert!(header_payload_len(&bad_version).is_err());
        let mut absurd = good;
        absurd[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(header_payload_len(&absurd).is_err());
    }
}
