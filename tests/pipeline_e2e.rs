//! End-to-end system tests: the Figure 4 memory-controller pipeline,
//! the imaging stack, and the full compression loop crossing every
//! crate.

use dwt_repro::core::lifting::IntLifting;
use dwt_repro::core::memory::{FrameMemory, MemoryController};
use dwt_repro::core::metrics::psnr_i32;
use dwt_repro::core::quant::Quantizer;
use dwt_repro::core::transform2d::{forward_2d, inverse_2d, Decomposition2d, Subband};
use dwt_repro::imaging::pgm::{read_pgm, write_pgm};
use dwt_repro::imaging::synth::{standard_tile, StillToneImage};
use dwt_repro::imaging::tiles::{assemble, tiles};

#[test]
fn memory_controller_transforms_the_standard_tile() {
    let image = standard_tile();
    let kernel = IntLifting::default();
    let mut mem = FrameMemory::new(image.clone());
    let stats = MemoryController::new(3, 8).run(&mut mem, &kernel).expect("run");

    // Same coefficients as the direct block transform.
    let direct = forward_2d(&image, 3, &kernel).expect("transform");
    assert_eq!(mem.contents(), &direct.coeffs);

    // Geometric access-count series: each octave touches 1/4 the data.
    assert_eq!(stats.reads, 2 * (128 * 128 + 64 * 64 + 32 * 32));
    assert_eq!(stats.reads, stats.writes);
    assert!(stats.samples_per_cycle(128, 128) > 0.3);
}

#[test]
fn deeper_pipelines_cost_cycles_but_not_correctness() {
    let image = StillToneImage::new(32, 32).seed(4).generate();
    let kernel = IntLifting::default();
    let run = |latency| {
        let mut mem = FrameMemory::new(image.clone());
        let stats = MemoryController::new(2, latency).run(&mut mem, &kernel).unwrap();
        (mem.into_contents(), stats.total_cycles())
    };
    let (c8, cycles8) = run(8);
    let (c21, cycles21) = run(21);
    assert_eq!(c8, c21, "latency must not change the result");
    assert!(cycles21 > cycles8);
}

#[test]
fn full_compression_loop_on_tiles() {
    // Tile the image, compress each tile independently (transform +
    // quantize + inverse), reassemble, and measure fidelity — the
    // paper's JPEG2000 application end to end.
    let image = StillToneImage::new(96, 96).seed(8).generate();
    let kernel = IntLifting::default();
    let quant = Quantizer::new(4.0).expect("step");

    let mut parts = Vec::new();
    for mut tile in tiles(&image, 32, 32) {
        let dec = forward_2d(&tile.data, 2, &kernel).expect("fwd");
        let coeffs = dec.coeffs.map(|v| quant.roundtrip(f64::from(v)).round() as i32);
        let rec = inverse_2d(&Decomposition2d { coeffs, octaves: 2 }, &kernel).expect("inv");
        tile.data = rec;
        parts.push(tile);
    }
    let back = assemble(96, 96, &parts);
    let db = psnr_i32(image.as_slice(), back.as_slice(), 255.0).expect("psnr");
    assert!(db > 30.0, "tile-compressed PSNR {db:.1} dB");
}

#[test]
fn pgm_roundtrip_preserves_the_transform_input() {
    let image = standard_tile();
    let mut buf = Vec::new();
    write_pgm(&image, &mut buf).expect("write");
    let back = read_pgm(buf.as_slice()).expect("read");
    assert_eq!(image, back);

    // And the transform of the round-tripped image is identical.
    let kernel = IntLifting::default();
    let a = forward_2d(&image, 2, &kernel).expect("fwd");
    let b = forward_2d(&back, 2, &kernel).expect("fwd");
    assert_eq!(a.coeffs, b.coeffs);
}

#[test]
fn detail_subbands_of_still_tone_images_are_sparse() {
    // The premise of the whole paper: the DWT concentrates still-tone
    // image energy away from the detail bands, so the quantizer can
    // discard most coefficients.
    let image = standard_tile();
    let dec = forward_2d(&image, 3, &IntLifting::default()).expect("fwd");
    let hh1 = dec.subband(Subband::Hh(1));
    let near_zero = hh1.iter().filter(|v| v.abs() <= 3).count();
    let fraction = near_zero as f64 / (hh1.rows() * hh1.cols()) as f64;
    assert!(fraction > 0.75, "HH1 sparsity only {fraction:.2}");
}
