//! Property-based tests over the core invariants, with randomly
//! generated signals, images and parameters.

use proptest::prelude::*;

use dwt_repro::core::boundary::mirror;
use dwt_repro::core::coeffs::FirBank;
use dwt_repro::core::fixed::{bits_for_range, Q2x8};
use dwt_repro::core::grid::Grid;
use dwt_repro::core::lifting::{forward_f64, inverse_f64, IntLifting};
use dwt_repro::core::quant::Quantizer;
use dwt_repro::core::transform1d::{decompose, max_octaves, reconstruct, LiftingF64Kernel};
use dwt_repro::core::transform2d::{forward_2d, inverse_2d};

fn signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-128.0f64..128.0, 2..300)
}

fn int_signal() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(-128i32..=127, 2..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn float_lifting_is_perfect_reconstruction(x in signal()) {
        let bands = forward_f64(&x).unwrap();
        prop_assert_eq!(bands.low.len(), x.len().div_ceil(2));
        prop_assert_eq!(bands.high.len(), x.len() / 2);
        let y = inverse_f64(&bands).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-7, "{} vs {}", a, b);
        }
    }

    #[test]
    fn multi_octave_is_perfect_reconstruction(x in signal(), octaves in 0usize..6) {
        let octaves = octaves.min(max_octaves(x.len()));
        let pyr = decompose(&x, octaves, &LiftingF64Kernel).unwrap();
        prop_assert_eq!(pyr.len(), x.len());
        let y = reconstruct(&pyr, &LiftingF64Kernel).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fir_equals_lifting(x in signal()) {
        let bank = FirBank::daubechies_9_7();
        let fir = dwt_repro::core::fir::analyze_f64(&x, &bank).unwrap();
        let lift = forward_f64(&x).unwrap();
        for (a, b) in fir.low.iter().zip(&lift.low) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        for (a, b) in fir.high.iter().zip(&lift.high) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn integer_lifting_tracks_float(x in int_signal()) {
        let xf: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        let fb = forward_f64(&xf).unwrap();
        let ib = IntLifting::default().forward(&x).unwrap();
        // Truncation noise through four stages is tightly bounded.
        for (f, i) in fb.low.iter().zip(&ib.low) {
            prop_assert!((f - f64::from(*i)).abs() < 8.0);
        }
        for (f, i) in fb.high.iter().zip(&ib.high) {
            prop_assert!((f - f64::from(*i)).abs() < 8.0);
        }
    }

    #[test]
    fn integer_roundtrip_error_is_bounded(x in int_signal()) {
        let k = IntLifting::default();
        let y = k.inverse(&k.forward(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() <= 6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn mirror_stays_in_range_and_is_periodic(i in -1000i64..1000, len in 1usize..50) {
        let m = mirror(i, len);
        prop_assert!(m < len);
        if len > 1 {
            let period = 2 * (len as i64 - 1);
            prop_assert_eq!(m, mirror(i + period, len));
            // Reflection symmetry about zero.
            prop_assert_eq!(mirror(-i, len), mirror(i, len));
        }
    }

    #[test]
    fn quantizer_roundtrip_is_idempotent_and_bounded(
        step in 0.1f64..64.0,
        c in -10_000.0f64..10_000.0,
    ) {
        let q = Quantizer::new(step).unwrap();
        let once = q.roundtrip(c);
        prop_assert_eq!(q.roundtrip(once), once);
        prop_assert!((once - c).abs() <= step);
    }

    #[test]
    fn mul_shift_equals_floor_division(raw in -512i16..=511, x in -100_000i64..100_000) {
        let c = Q2x8::from_raw(raw);
        let exact = (f64::from(raw) * x as f64 / 256.0).floor() as i64;
        prop_assert_eq!(c.mul_shift(x), exact);
    }

    #[test]
    fn bits_for_range_is_minimal(v in -100_000i64..100_000) {
        let bits = bits_for_range(v.min(0), v.max(0));
        let lo = -(1i64 << (bits - 1));
        let hi = (1i64 << (bits - 1)) - 1;
        prop_assert!(v >= lo && v <= hi);
        if bits > 1 {
            let lo2 = -(1i64 << (bits - 2));
            let hi2 = (1i64 << (bits - 2)) - 1;
            prop_assert!(v < lo2 || v > hi2, "{} fits {} bits", v, bits - 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn two_d_roundtrip_any_shape(
        rows in 2usize..40,
        cols in 2usize..40,
        octaves in 0usize..4,
        seed in 0u64..1000,
    ) {
        let octaves = octaves
            .min(dwt_repro::core::transform2d::max_octaves_2d(rows, cols));
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let h = i as u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
                ((h.wrapping_mul(2654435761) >> 16) % 256) as f64 - 128.0
            })
            .collect();
        let img = Grid::from_vec(rows, cols, data).unwrap();
        let dec = forward_2d(&img, octaves, &LiftingF64Kernel).unwrap();
        let back = inverse_2d(&dec, &LiftingF64Kernel).unwrap();
        for (a, b) in img.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn energy_is_preserved_within_frame_bounds(x in signal()) {
        // The 9/7 transform is a bounded-frame expansion: subband energy
        // is within a constant factor of signal energy.
        let bands = forward_f64(&x).unwrap();
        let e_sig: f64 = x.iter().map(|v| v * v).sum();
        let e_sub: f64 = bands.low.iter().chain(&bands.high).map(|v| v * v).sum();
        if e_sig > 1.0 {
            let ratio = e_sub / e_sig;
            prop_assert!(ratio > 0.2 && ratio < 5.0, "energy ratio {}", ratio);
        }
    }
}
