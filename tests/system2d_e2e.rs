//! Figure 4 end to end: the hardware line engine, sequenced over rows,
//! columns and octaves by the host, must produce exactly the
//! coefficients of the equivalent all-software orchestration.

use dwt_repro::arch::designs::Design;
use dwt_repro::arch::system2d::{build_line_engine, golden_line, run_line, LineEngine};
use dwt_repro::core::grid::Grid;
use dwt_repro::imaging::synth::StillToneImage;
use dwt_repro::rtl::sim::Simulator;

/// One octave of the 2-D transform over the top-left region, with the
/// line transform provided by `f` — so hardware and golden runs share
/// the identical sequencing code.
fn octave_2d<F>(grid: &mut Grid<i64>, rows: usize, cols: usize, mut f: F)
where
    F: FnMut(&[(i64, i64)]) -> (Vec<i64>, Vec<i64>),
{
    // Row pass.
    for r in 0..rows {
        let row = grid.row(r);
        let pairs: Vec<(i64, i64)> = (0..cols / 2).map(|i| (row[2 * i], row[2 * i + 1])).collect();
        let (low, high) = f(&pairs);
        let row = grid.row_mut(r);
        for (i, &v) in low.iter().enumerate() {
            row[i] = v;
        }
        for (i, &v) in high.iter().enumerate() {
            row[cols / 2 + i] = v;
        }
    }
    // Column pass.
    for c in 0..cols {
        let col: Vec<i64> = (0..rows).map(|r| grid[(r, c)]).collect();
        let pairs: Vec<(i64, i64)> = (0..rows / 2).map(|i| (col[2 * i], col[2 * i + 1])).collect();
        let (low, high) = f(&pairs);
        for (i, &v) in low.iter().enumerate() {
            grid[(i, c)] = v;
        }
        for (i, &v) in high.iter().enumerate() {
            grid[(rows / 2 + i, c)] = v;
        }
    }
}

fn transform_2d<F>(image: &Grid<i32>, octaves: usize, mut f: F) -> Grid<i64>
where
    F: FnMut(&[(i64, i64)]) -> (Vec<i64>, Vec<i64>),
{
    let (mut rows, mut cols) = image.dims();
    let mut grid = image.map(i64::from);
    for _ in 0..octaves {
        octave_2d(&mut grid, rows, cols, &mut f);
        rows /= 2;
        cols /= 2;
    }
    grid
}

#[test]
fn hardware_engine_2d_equals_golden_orchestration() {
    let image = StillToneImage::new(16, 16).seed(6).texture_amplitude(1.0).generate();
    let engine: LineEngine = build_line_engine(Design::D2).expect("engine");
    let mut sim = Simulator::new(engine.netlist.clone()).expect("sim");

    let by_hardware =
        transform_2d(&image, 2, |pairs| run_line(&mut sim, &engine, pairs).expect("hardware line"));
    let by_golden = transform_2d(&image, 2, golden_line);

    assert_eq!(by_hardware, by_golden);
}

#[test]
fn hardware_2d_concentrates_energy_like_the_software_transform() {
    // Sanity on the result itself: the LL quadrant of the hardware
    // transform must carry most of the energy.
    // Halve the pixels: the column pass feeds row-pass low coefficients
    // (gain > 1) back through the engine's hard 8-bit input, so full-range
    // pixels can overflow it for unlucky images.
    let image = StillToneImage::new(16, 16).seed(2).generate().map(|v| v / 2);
    let engine = build_line_engine(Design::D2).expect("engine");
    let mut sim = Simulator::new(engine.netlist.clone()).expect("sim");
    let dec =
        transform_2d(&image, 1, |pairs| run_line(&mut sim, &engine, pairs).expect("hardware line"));
    let energy = |vals: &[i64]| -> f64 { vals.iter().map(|&v| (v * v) as f64).sum() };
    let total = energy(dec.as_slice());
    let mut ll = 0.0;
    for r in 0..8 {
        ll += energy(&dec.row(r)[..8]);
    }
    assert!(ll / total > 0.5, "LL fraction {}", ll / total);
}

#[test]
fn pass_engine_does_whole_passes_with_host_corner_turns_only() {
    use dwt_repro::arch::system2d::{build_pass_engine, run_pass};

    let image = StillToneImage::new(16, 16).seed(12).texture_amplitude(1.0).generate();
    let engine = build_pass_engine(Design::D2).expect("engine");
    let mut sim = Simulator::new(engine.netlist.clone()).expect("sim");
    let (rows, cols) = (16usize, 16usize);

    // One octave by two hardware passes; the host only loads memories
    // and corner-turns between them.

    // Row pass: line r holds row r's pairs at stride cols/2.
    for r in 0..rows {
        for i in 0..cols / 2 {
            let (e, o) = (image[(r, 2 * i)], image[(r, 2 * i + 1)]);
            sim.poke_ram("src_even", r * (cols / 2) + i, i64::from(e)).unwrap();
            sim.poke_ram("src_odd", r * (cols / 2) + i, i64::from(o)).unwrap();
        }
    }
    run_pass(&mut sim, &engine, rows, cols / 2, cols / 2).expect("row pass");
    // Collect the row-transformed image (Mallat within each row).
    let mut inter = vec![vec![0i64; cols]; rows];
    for (r, row) in inter.iter_mut().enumerate() {
        for i in 0..cols / 2 {
            row[i] = sim.peek_ram("dst_low", r * (cols / 2) + i).unwrap();
            row[cols / 2 + i] = sim.peek_ram("dst_high", r * (cols / 2) + i).unwrap();
        }
    }

    // Corner turn: load columns as lines.
    #[allow(clippy::needless_range_loop)] // addresses row-major and col-major views together
    for c in 0..cols {
        for i in 0..rows / 2 {
            sim.poke_ram("src_even", c * (rows / 2) + i, inter[2 * i][c]).unwrap();
            sim.poke_ram("src_odd", c * (rows / 2) + i, inter[2 * i + 1][c]).unwrap();
        }
    }
    run_pass(&mut sim, &engine, cols, rows / 2, rows / 2).expect("column pass");
    let mut hw = Grid::filled(rows, cols, 0i64);
    for c in 0..cols {
        for i in 0..rows / 2 {
            hw[(i, c)] = sim.peek_ram("dst_low", c * (rows / 2) + i).unwrap();
            hw[(rows / 2 + i, c)] = sim.peek_ram("dst_high", c * (rows / 2) + i).unwrap();
        }
    }

    // Reference: the same two passes through the golden line transform.
    let golden = transform_2d(&image, 1, golden_line);
    assert_eq!(hw, golden);
}
