//! Cross-crate equivalence: every generated architecture must compute
//! exactly what the paper's transform computes, bit for bit, on
//! still-tone stimuli.

use dwt_repro::arch::designs::Design;
use dwt_repro::arch::filterbank::{build_filterbank, golden_filterbank, FilterbankPipelining};
use dwt_repro::arch::golden::{still_tone_pairs, GoldenStream};
use dwt_repro::arch::verify::verify_datapath;
use dwt_repro::core::lifting::IntLifting;
use dwt_repro::rtl::sim::Simulator;

#[test]
fn all_designs_match_golden_on_many_seeds() {
    for design in Design::all() {
        let built = design.build().expect("build");
        for seed in 0..5 {
            let pairs = still_tone_pairs(80, seed * 31 + 1);
            let report = verify_datapath(&built, &pairs)
                .unwrap_or_else(|e| panic!("{design} seed {seed}: {e}"));
            assert_eq!(report.coefficients_checked, 80);
        }
    }
}

#[test]
fn golden_stream_interior_equals_block_transform_many_seeds() {
    let kernel = IntLifting::default();
    for seed in 0..10 {
        let pairs = still_tone_pairs(128, seed);
        let mut golden = GoldenStream::default();
        for &(e, o) in &pairs {
            golden.push(e, o);
        }
        let flat: Vec<i32> = pairs.iter().flat_map(|&(e, o)| [e as i32, o as i32]).collect();
        let block = kernel.forward(&flat).expect("transform");
        for m in 4..golden.low().len().min(block.low.len() - 4) {
            assert_eq!(golden.low()[m], i64::from(block.low[m]), "seed {seed} low[{m}]");
            assert_eq!(golden.high()[m], i64::from(block.high[m]), "seed {seed} high[{m}]");
        }
    }
}

#[test]
fn filterbank_and_lifting_designs_agree_in_the_interior() {
    // Two totally different architectures (convolution vs lifting) must
    // produce near-identical subbands: the filter bank computes with
    // rounded FIR taps, the lifting designs with rounded factorized
    // constants, so interior coefficients match within a small bound.
    let pairs = still_tone_pairs(64, 77);
    let (fb_low, fb_high) = golden_filterbank(&pairs);

    let mut lift = GoldenStream::default();
    for &(e, o) in &pairs {
        lift.push(e, o);
    }
    for m in 4..60 {
        let dl = (fb_low[m] - lift.low()[m]).abs();
        let dh = (fb_high[m] - lift.high()[m]).abs();
        assert!(dl <= 6, "low[{m}]: fir {} vs lifting {}", fb_low[m], lift.low()[m]);
        assert!(dh <= 6, "high[{m}]: fir {} vs lifting {}", fb_high[m], lift.high()[m]);
    }
}

#[test]
fn simulation_is_deterministic() {
    let built = Design::D3.build().expect("build");
    let pairs = still_tone_pairs(50, 3);
    let run = || {
        let mut sim = Simulator::new(built.netlist.clone()).expect("sim");
        let mut outs = Vec::new();
        for &(e, o) in &pairs {
            sim.set_input("in_even", e).unwrap();
            sim.set_input("in_odd", o).unwrap();
            sim.tick();
            outs.push((sim.peek("low").unwrap(), sim.peek("high").unwrap()));
        }
        (outs, sim.stats().total_cell_toggles())
    };
    assert_eq!(run(), run());
}

#[test]
fn filterbank_matches_its_golden_model() {
    let built = build_filterbank(FilterbankPipelining::EveryTwoLevels).expect("build");
    let pairs = still_tone_pairs(96, 5);
    let (gold_low, gold_high) = golden_filterbank(&pairs);
    let mut sim = Simulator::new(built.netlist.clone()).expect("sim");
    let mut hw = Vec::new();
    for t in 0..pairs.len() + built.latency {
        let (e, o) = if t < pairs.len() { pairs[t] } else { (0, 0) };
        sim.set_input("in_even", e).unwrap();
        sim.set_input("in_odd", o).unwrap();
        sim.tick();
        if t + 1 > built.latency && hw.len() < pairs.len() {
            hw.push((sim.peek("low").unwrap(), sim.peek("high").unwrap()));
        }
    }
    for (m, &(l, h)) in hw.iter().enumerate() {
        assert_eq!(l, gold_low[m], "low[{m}]");
        assert_eq!(h, gold_high[m], "high[{m}]");
    }
}

#[test]
fn entire_design_space_is_bit_exact() {
    // Not just the paper's five points: every multiplier/adder/pipelining
    // combination the generator supports must match the golden model.
    use dwt_repro::arch::datapath::{build_datapath, AdderStyle, DatapathSpec, MultiplierImpl};
    use dwt_repro::arch::shift_add::Recoding;
    use dwt_repro::core::coeffs::LiftingConstants;

    let pairs = still_tone_pairs(40, 19);
    for multiplier in [
        MultiplierImpl::GenericArray,
        MultiplierImpl::ShiftAdd(Recoding::Binary),
        MultiplierImpl::ShiftAdd(Recoding::BinaryReuse),
        MultiplierImpl::ShiftAdd(Recoding::Csd),
    ] {
        for adder_style in [AdderStyle::CarryChain, AdderStyle::Ripple] {
            for pipelined_operators in [false, true] {
                let spec = DatapathSpec {
                    multiplier,
                    adder_style,
                    pipelined_operators,
                    constants: LiftingConstants::default(),
                    input_bits: 8,
                };
                let built = build_datapath(&spec).expect("build");
                verify_datapath(&built, &pairs).unwrap_or_else(|e| {
                    panic!("{multiplier:?}/{adder_style:?}/pipe={pipelined_operators}: {e}")
                });
            }
        }
    }
}

#[test]
fn widened_datapaths_are_bit_exact() {
    // The input_bits parameter scales every register class; the golden
    // arithmetic is width-independent, so equivalence must hold at any
    // precision.
    use dwt_repro::arch::datapath::build_datapath;
    use dwt_repro::arch::designs::Design;
    use dwt_repro::arch::golden::still_tone_pairs_scaled;
    use dwt_repro::core::coeffs::LiftingConstants;

    for bits in [9u32, 11, 12] {
        let mut spec = Design::D2.spec(LiftingConstants::default());
        spec.input_bits = bits;
        let built = build_datapath(&spec).expect("build");
        let pairs = still_tone_pairs_scaled(48, u64::from(bits), bits);
        verify_datapath(&built, &pairs).unwrap_or_else(|e| panic!("{bits} bits: {e}"));
        assert_eq!(built.netlist.port("in_even").unwrap().bus.width(), bits as usize);
    }
}

#[test]
fn optimizer_passes_preserve_design_behaviour() {
    // Dead-cell elimination + constant folding on a real design netlist
    // must not change a single output bit.
    use dwt_repro::arch::verify::run_stream;
    use dwt_repro::rtl::opt::{eliminate_dead_cells, fold_constants};

    let built = Design::D2.build().expect("build");
    let pairs = still_tone_pairs(64, 55);
    let reference = run_stream(&built.netlist, built.latency, &pairs).expect("run");

    let (folded, _) = fold_constants(&built.netlist).expect("fold");
    let (optimized, stats) = eliminate_dead_cells(&folded).expect("dce");
    let after = run_stream(&optimized, built.latency, &pairs).expect("run");
    assert_eq!(reference, after);
    // The generator emits no dead logic, so DCE should find nothing.
    assert_eq!(stats.dead_cells_removed, 0, "generator left dead cells");
}
