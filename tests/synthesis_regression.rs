//! Regression pins on the synthesis model: the reproduced Table 3 must
//! keep the paper's orderings and stay within the documented error
//! bands. These tests freeze the calibration — if a model change moves
//! a number outside its band, the reproduction has regressed.

use dwt_repro::arch::designs::Design;
use dwt_repro::arch::golden::still_tone_pairs;
use dwt_repro::arch::verify::measure_activity;
use dwt_repro::fpga::device::Device;
use dwt_repro::fpga::map::map_netlist;
use dwt_repro::fpga::power::estimate;
use dwt_repro::fpga::timing::analyze;

struct Row {
    les: usize,
    fmax: f64,
    power15: f64,
    stages: usize,
}

fn synthesize(design: Design) -> Row {
    let device = Device::apex20ke();
    let built = design.build().expect("build");
    let mapped = map_netlist(&built.netlist);
    let timing = analyze(&built.netlist, &device.timing);
    let pairs = still_tone_pairs(512, 2005);
    let activity = measure_activity(&built, &pairs).expect("sim");
    let power = estimate(&activity, mapped.ff_bits, &device.energy, 15.0);
    Row {
        les: mapped.le_count(),
        fmax: timing.fmax_mhz,
        power15: power.total_mw(),
        stages: built.latency,
    }
}

fn all_rows() -> &'static [Row; 5] {
    static ROWS: std::sync::OnceLock<[Row; 5]> = std::sync::OnceLock::new();
    ROWS.get_or_init(|| Design::all().map(synthesize))
}

#[test]
fn pipeline_stage_counts_are_exact() {
    let expected = [8, 8, 21, 8, 21];
    for ((design, stages), row) in Design::all().iter().zip(expected).zip(all_rows()) {
        assert_eq!(row.stages, stages, "{design}");
    }
}

#[test]
fn area_within_fifteen_percent_of_paper() {
    for (design, row) in Design::all().iter().zip(all_rows()) {
        let paper = design.paper_row().les as f64;
        let err = (row.les as f64 - paper).abs() / paper;
        assert!(err < 0.15, "{design}: {} LEs vs paper {paper} ({err:.2})", row.les);
    }
}

#[test]
fn fmax_within_twenty_percent_of_paper() {
    for (design, row) in Design::all().iter().zip(all_rows()) {
        let paper = design.paper_row().fmax_mhz;
        let err = (row.fmax - paper).abs() / paper;
        assert!(err < 0.20, "{design}: {:.1} MHz vs paper {paper} ({err:.2})", row.fmax);
    }
}

#[test]
fn fmax_ordering_matches_table3() {
    let r = all_rows();
    // Paper: D1 (16.6) < D2 (44) < D4 (54.4) < D5 (105) < D3 (157).
    assert!(r[0].fmax < r[1].fmax, "D1 < D2");
    assert!(r[1].fmax < r[3].fmax, "D2 < D4");
    assert!(r[3].fmax < r[4].fmax, "D4 < D5");
    assert!(r[4].fmax < r[2].fmax, "D5 < D3");
}

#[test]
fn area_ordering_matches_table3() {
    let r = all_rows();
    // Paper: D2 (480) < D4 (701) < D3 (766) ~ D1 (781) < D5 (1002).
    assert!(r[1].les < r[3].les, "D2 < D4");
    assert!(r[3].les.max(r[2].les) < r[4].les, "D4, D3 < D5");
    assert!(r[1].les < r[0].les, "D2 < D1");
}

#[test]
fn pipelined_designs_halve_power_at_iso_frequency() {
    // The paper's headline: "the designs with pipelined operators
    // reduced power consumption around 40%" (vs their unpipelined
    // counterparts, at the 15 MHz reference).
    let r = all_rows();
    assert!(
        r[2].power15 < 0.65 * r[1].power15,
        "D3 {:.0} mW !<< D2 {:.0} mW",
        r[2].power15,
        r[1].power15
    );
    assert!(
        r[4].power15 < 0.75 * r[3].power15,
        "D5 {:.0} mW !<< D4 {:.0} mW",
        r[4].power15,
        r[3].power15
    );
}

#[test]
fn design1_is_slowest_and_most_power_hungry() {
    let r = all_rows();
    for (i, row) in r.iter().enumerate() {
        if i != 0 {
            assert!(r[0].fmax < row.fmax, "D1 must be slowest");
            assert!(r[0].power15 > row.power15, "D1 must burn the most");
        }
    }
}

#[test]
fn behavioral_wins_the_area_frequency_product() {
    // Section 5: structural descriptions have a worse area x fmax
    // trade-off than behavioral ones.
    let r = all_rows();
    let product = |row: &Row| row.fmax / row.les as f64;
    assert!(product(&r[2]) > product(&r[4]), "D3 beats D5 on MHz/LE");
    assert!(product(&r[1]) > product(&r[3]), "D2 beats D4 on MHz/LE");
}

#[test]
fn power_scales_linearly_with_frequency() {
    let device = Device::apex20ke();
    let built = Design::D3.build().expect("build");
    let mapped = map_netlist(&built.netlist);
    let pairs = still_tone_pairs(256, 2005);
    let activity = measure_activity(&built, &pairs).expect("sim");
    let p15 = estimate(&activity, mapped.ff_bits, &device.energy, 15.0);
    let p120 = estimate(&activity, mapped.ff_bits, &device.energy, 120.0);
    let dyn15 = p15.total_mw() - p15.static_mw;
    let dyn120 = p120.total_mw() - p120.static_mw;
    assert!((dyn120 / dyn15 - 8.0).abs() < 1e-9);
}

#[test]
fn every_design_fits_the_target_device() {
    use dwt_repro::fpga::floorplan::pack;
    let capacity = Device::apex20ke().le_capacity;
    for design in Design::all() {
        let built = design.build().expect("build");
        let mapped = map_netlist(&built.netlist);
        let plan = pack(&built.netlist, &mapped);
        assert!(
            plan.labs * dwt_repro::fpga::floorplan::LES_PER_LAB <= capacity,
            "{design}: {} LABs exceed the device",
            plan.labs
        );
        assert!(
            plan.utilization() > 0.5,
            "{design}: utilization {:.2} suspiciously low",
            plan.utilization()
        );
        // No carry chain longer than the datapath's widest word.
        assert!(plan.longest_chain <= 24, "{design}: chain {}", plan.longest_chain);
    }
}

#[test]
fn power_vectors_are_seed_robust() {
    // The power column must not hinge on the particular stimulus: the
    // per-cycle transition count of Design 2 varies by less than 20%
    // across independent still-tone vector sets.
    let built = Design::D2.build().expect("build");
    let mut rates = Vec::new();
    for seed in [1u64, 77, 2005, 9999] {
        let pairs = still_tone_pairs(512, seed);
        let stats = measure_activity(&built, &pairs).expect("sim");
        rates.push(stats.toggles_per_cycle());
    }
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    assert!(max / min < 1.2, "toggle rate spread too wide: {min:.1}..{max:.1}");
}
