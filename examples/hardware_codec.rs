//! Hardware-in-the-loop compression: the transform stage of the codec
//! runs on the gate-level pass engine (Figure 4 in hardware — memories,
//! controller, Design 2 datapath), while the host performs the corner
//! turns, quantization and entropy coding.
//!
//! Run with: `cargo run --release --example hardware_codec`

use dwt_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rows, cols) = (32usize, 32usize);
    let image = StillToneImage::new(rows, cols).seed(9).generate();

    println!("building the pass engine around Design 2...");
    let engine = build_pass_engine(Design::D2)?;
    let mut sim = Simulator::new(engine.netlist.clone())?;

    // --- Row pass in hardware -----------------------------------------
    for r in 0..rows {
        for i in 0..cols / 2 {
            sim.poke_ram("src_even", r * (cols / 2) + i, i64::from(image[(r, 2 * i)]))?;
            sim.poke_ram("src_odd", r * (cols / 2) + i, i64::from(image[(r, 2 * i + 1)]))?;
        }
    }
    run_pass(&mut sim, &engine, rows, cols / 2, cols / 2)?;
    let mut inter = Grid::filled(rows, cols, 0i64);
    for r in 0..rows {
        for i in 0..cols / 2 {
            inter[(r, i)] = sim.peek_ram("dst_low", r * (cols / 2) + i)?;
            inter[(r, cols / 2 + i)] = sim.peek_ram("dst_high", r * (cols / 2) + i)?;
        }
    }

    // --- Corner turn + column pass in hardware --------------------------
    for c in 0..cols {
        for i in 0..rows / 2 {
            sim.poke_ram("src_even", c * (rows / 2) + i, inter[(2 * i, c)])?;
            sim.poke_ram("src_odd", c * (rows / 2) + i, inter[(2 * i + 1, c)])?;
        }
    }
    run_pass(&mut sim, &engine, cols, rows / 2, rows / 2)?;
    let mut coeffs = Grid::filled(rows, cols, 0i64);
    for c in 0..cols {
        for i in 0..rows / 2 {
            coeffs[(i, c)] = sim.peek_ram("dst_low", c * (rows / 2) + i)?;
            coeffs[(rows / 2 + i, c)] = sim.peek_ram("dst_high", c * (rows / 2) + i)?;
        }
    }
    let cycles = sim.stats().cycles;
    println!("one 2-D octave transformed in hardware ({cycles} simulated cycles)");

    // --- Host back end: quantize + entropy-code -------------------------
    let quant = Quantizer::new(8.0)?;
    let indices: Vec<i64> = coeffs.iter().map(|&c| quant.quantize(c as f64)).collect();
    let bytes = rice::encode(&indices);
    println!(
        "quantized + Rice-coded: {} bytes = {:.3} bits/pixel",
        bytes.len(),
        bytes.len() as f64 * 8.0 / (rows * cols) as f64
    );

    // Decode side sanity: the stream reproduces the indices.
    let decoded = rice::decode(&bytes, indices.len())?;
    assert_eq!(decoded, indices);
    println!("bitstream decodes losslessly back to the quantizer indices");
    Ok(())
}
