//! Quickstart: transform an image with the paper's integer lifting
//! datapath arithmetic, reconstruct it, and measure the fidelity.
//!
//! Run with: `cargo run --example quickstart`

use dwt_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 128x128 still-tone tile (the repo's stand-in for the paper's
    // Lena tile).
    let image = standard_tile();

    // Three-octave 2-D DWT in the exact fixed-point arithmetic of the
    // paper's hardware (Q2.8 constants, truncating 8-bit shifts).
    let kernel = IntLifting::default();
    let dec = forward_2d(&image, 3, &kernel)?;

    // Energy concentrates in the LL quadrant — the property JPEG2000
    // compression exploits.
    let energy = |vals: &[i32]| -> f64 { vals.iter().map(|&v| f64::from(v) * f64::from(v)).sum() };
    let total = energy(dec.coeffs.as_slice());
    let ll = energy(dec.subband(Subband::Ll).as_slice());
    println!(
        "LL quadrant holds {:.1}% of the energy in {:.1}% of the samples",
        100.0 * ll / total,
        100.0 / 64.0
    );

    // Reconstruct and measure the fixed-point round-trip fidelity.
    let back = inverse_2d(&dec, &kernel)?;
    let db = psnr_i32(image.as_slice(), back.as_slice(), 255.0)?;
    println!("fixed-point round-trip PSNR: {db:.2} dB");
    Ok(())
}
