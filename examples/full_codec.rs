//! The complete compression pipeline of the paper's introduction, with
//! real bits: 9/7 DWT + deadzone quantizer + adaptive Rice entropy
//! coding (lossy), and the reversible 5/3 path (lossless).
//!
//! Run with: `cargo run --release --example full_codec`

use dwt_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = standard_tile();
    let (rows, cols) = image.dims();

    println!("{:>10} {:>10} {:>12} {:>12}", "mode", "step", "bits/pixel", "PSNR (dB)");
    // Lossless 5/3 path.
    let cfg = CodecConfig { lossless: true, ..CodecConfig::default() };
    let bytes = compress(&image, &cfg)?;
    let back = decompress(&bytes)?;
    assert_eq!(back, image, "lossless mode must reconstruct exactly");
    println!(
        "{:>10} {:>10} {:>12.3} {:>12}",
        "lossless",
        "-",
        bits_per_pixel(&bytes, rows, cols),
        "exact"
    );

    // Lossy 9/7 path across quantizer steps.
    for step in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let cfg = CodecConfig { octaves: 3, step, lossless: false };
        let bytes = compress(&image, &cfg)?;
        let back = decompress(&bytes)?;
        let db = psnr_i32(image.as_slice(), back.as_slice(), 255.0)?;
        println!(
            "{:>10} {:>10.0} {:>12.3} {:>12.2}",
            "lossy",
            step,
            bits_per_pixel(&bytes, rows, cols),
            db
        );
    }
    Ok(())
}
