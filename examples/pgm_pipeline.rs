//! File-level pipeline: read a PGM image (or synthesize one), compress
//! it with the full codec, report the rate/distortion, and write both
//! the reconstruction and a subband visualisation as PGM files.
//!
//! Run with: `cargo run --release --example pgm_pipeline [input.pgm]`

use std::fs::File;
use std::io::BufWriter;

use dwt_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            read_pgm(File::open(path)?)?
        }
        None => {
            println!("no input given; using the synthetic standard tile");
            standard_tile()
        }
    };
    let (rows, cols) = image.dims();
    println!("image: {rows}x{cols}");

    // Compress / decompress.
    let cfg = CodecConfig { octaves: 3, step: 8.0, lossless: false };
    let bytes = compress(&image, &cfg)?;
    let back = decompress(&bytes)?;
    let db = psnr_i32(image.as_slice(), back.as_slice(), 255.0)?;
    println!(
        "lossy step {}: {:.3} bits/pixel ({:.1}x smaller), PSNR {db:.2} dB",
        cfg.step,
        bits_per_pixel(&bytes, rows, cols),
        (rows * cols) as f64 / bytes.len() as f64,
    );

    let out_dir = std::env::temp_dir();
    let rec_path = out_dir.join("reconstructed.pgm");
    write_pgm(&back, BufWriter::new(File::create(&rec_path)?))?;
    println!("wrote {}", rec_path.display());

    // Subband visualisation: amplitude-compressed Mallat layout.
    let dec = forward_2d(&image, 3, &IntLifting::default())?;
    let vis = dec.coeffs.map(|v| {
        let a = f64::from(v.abs());
        ((a + 1.0).ln() * 28.0).min(255.0) as i32 - 128
    });
    let vis_path = out_dir.join("subbands.pgm");
    write_pgm(&vis, BufWriter::new(File::create(&vis_path)?))?;
    println!("wrote {}", vis_path.display());
    Ok(())
}
