//! Synthesize all five designs of the paper plus the filter-bank
//! baseline and print the full trade-off table — the repository's
//! one-command version of the paper's evaluation.
//!
//! Run with: `cargo run --release --example explore_architectures`

use dwt_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::apex20ke();
    let pairs = still_tone_pairs(512, 2005);

    println!(
        "{:<46} {:>6} {:>9} {:>8} {:>7}",
        "architecture", "LEs", "Fmax MHz", "mW@15", "stages"
    );
    for design in Design::all() {
        let built = design.build()?;
        // Every architecture is proven bit-exact against the golden
        // software model before being reported.
        verify_datapath(&built, &still_tone_pairs(64, 9))?;

        let mapped = map_netlist(&built.netlist);
        let timing = analyze(&built.netlist, &device.timing);
        let activity = measure_activity(&built, &pairs)?;
        let power = estimate(&activity, mapped.ff_bits, &device.energy, 15.0);
        println!(
            "{:<46} {:>6} {:>9.1} {:>8.1} {:>7}",
            format!("{} ({})", design.name(), design.description()),
            mapped.le_count(),
            timing.fmax_mhz,
            power.total_mw(),
            built.latency,
        );
    }

    let fb = build_filterbank(FilterbankPipelining::EveryTwoLevels)?;
    let mapped = map_netlist(&fb.netlist);
    let timing = analyze(&fb.netlist, &device.timing);
    println!(
        "{:<46} {:>6} {:>9.1} {:>8} {:>7}",
        "filter bank (Masud & McCanny style baseline)",
        mapped.le_count(),
        timing.fmax_mhz,
        "-",
        fb.latency,
    );

    println!("\nHeadline trade-offs (the paper's conclusions):");
    println!("  * pipelined operators (D3/D5): ~2-3x the frequency for ~40-60% more LEs");
    println!("  * pipelined operators cut power roughly in half at iso-frequency");
    println!("  * behavioral beats structural on area x frequency (carry chains)");
    Ok(())
}
