//! The paper's motivating application: lossy still-image compression.
//! Forward 9/7 DWT, deadzone quantization, (entropy estimate), inverse
//! DWT — the JPEG2000 irreversible path of the paper's introduction.
//!
//! Run with: `cargo run --example compress_tile`

use dwt_repro::prelude::*;

/// Zeroth-order entropy of the quantizer indices, in bits per sample —
/// a lower bound on what an entropy coder would spend.
fn entropy_bits(indices: &[i64]) -> f64 {
    let mut counts = std::collections::HashMap::new();
    for &q in indices {
        *counts.entry(q).or_insert(0u64) += 1;
    }
    let n = indices.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = standard_tile();
    let reference: Vec<f64> = image.iter().map(|&v| f64::from(v)).collect();
    let img = image.map(f64::from);

    println!("{:>6} {:>12} {:>10} {:>12}", "step", "PSNR (dB)", "bits/px", "compression");
    for step in [2.0, 4.0, 8.0, 16.0, 32.0] {
        let quant = Quantizer::new(step)?;
        let dec = forward_2d(&img, 3, &LiftingF64Kernel)?;

        // Quantize every subband coefficient.
        let indices: Vec<i64> = dec.coeffs.iter().map(|&c| quant.quantize(c)).collect();
        let bpp = entropy_bits(&indices);

        // Decode.
        let mut rec = dec.clone();
        for (slot, &q) in rec.coeffs.iter_mut().zip(&indices) {
            *slot = quant.dequantize(q);
        }
        let out = inverse_2d(&rec, &LiftingF64Kernel)?;
        let out: Vec<f64> = out.iter().copied().collect();
        let db = psnr(&reference, &out, 255.0)?;
        println!("{:>6.0} {:>12.2} {:>10.3} {:>11.1}x", step, db, bpp, 8.0 / bpp);
    }
    Ok(())
}
