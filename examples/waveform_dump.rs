//! Simulate Design 3's netlist on an image row and dump a VCD waveform
//! of its ports — open `design3.vcd` in GTKWave to watch the 21-stage
//! pipeline fill and stream.
//!
//! Run with: `cargo run --example waveform_dump`

use dwt_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let built = Design::D3.build()?;
    let mut sim = Simulator::new(built.netlist.clone())?;

    let mut recorder = VcdRecorder::new();
    recorder.watch_ports(&sim);

    for &(e, o) in &still_tone_pairs(64, 42) {
        sim.set_input("in_even", e)?;
        sim.set_input("in_odd", o)?;
        sim.tick();
        recorder.sample(&sim);
    }

    let path = std::env::temp_dir().join("design3.vcd");
    let file = std::fs::File::create(&path)?;
    recorder.write(std::io::BufWriter::new(file))?;
    println!("wrote {} cycles of waveform to {}", recorder.len(), path.display());
    println!(
        "pipeline latency {} cycles; switching activity {:.1} transitions/cycle",
        built.latency,
        sim.stats().toggles_per_cycle()
    );
    Ok(())
}
